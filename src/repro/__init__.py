"""repro — User-Perceived Service Infrastructure Models (UPSIM).

A from-scratch Python reproduction of *A Model for Evaluation of
User-Perceived Service Properties* (Dittrich, Kaitovic, Murillo, Rezende;
IPDPS Workshops 2013): UML-based modeling of ICT infrastructures and
services, automatic generation of user-perceived service infrastructure
models for a given requester/provider pair, and the downstream
dependability analysis (availability, responsiveness, performability).

Quick start::

    from repro.casestudy import usi_topology, printing_service, table1_mapping
    from repro.core import generate_upsim
    from repro.analysis import analyze_upsim

    upsim = generate_upsim(usi_topology(), printing_service(), table1_mapping())
    print(analyze_upsim(upsim).to_text())

Subpackages
-----------
``repro.uml``
    UML subset: class/object/activity diagrams, profiles, constraints, XML.
``repro.vpm``
    VIATRA2-style model space, graph patterns, transformations, importers.
``repro.network``
    ICT components, standard profiles, topologies, synthetic generators.
``repro.services``
    Atomic/composite services and the service catalog.
``repro.core``
    Service mapping, path discovery, UPSIM generation, the 8-step pipeline.
``repro.dependability``
    Availability, RBDs, fault trees, cut sets, Monte Carlo, importance,
    responsiveness, performability.
``repro.analysis``
    UPSIM → dependability-model transformations and reports.
``repro.resilience``
    Fault injection (copy-on-write topology overlays), the
    degradation-tolerant pipeline runner, and fault campaigns.
``repro.casestudy``
    The USI campus network and printing service of Section VI.
``repro.viz``
    DOT / text / Mermaid renderers for all diagram kinds.
"""

from repro.errors import (
    AnalysisError,
    ConstraintViolationError,
    FaultPlanError,
    MappingError,
    ModelError,
    ModelSpaceError,
    PathDiscoveryError,
    PathDiscoveryTimeout,
    ReproError,
    SerializationError,
    ServiceError,
    StereotypeError,
    TopologyError,
    UnreachablePairError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ModelError",
    "ConstraintViolationError",
    "StereotypeError",
    "SerializationError",
    "ModelSpaceError",
    "MappingError",
    "ServiceError",
    "TopologyError",
    "PathDiscoveryError",
    "PathDiscoveryTimeout",
    "UnreachablePairError",
    "AnalysisError",
    "FaultPlanError",
]
