"""The user-perceived dimension registry.

A :class:`Dimension` bundles everything the engine needs to evaluate one
user-perceived property over the compiled path-set structure:

* a **name** and formatting metadata (unit, format string, polarity);
* **annotation specs** — which per-component values it consumes, how to
  resolve them from a UPSIM (Formula 1, a model attribute, or a flat
  default) and how to validate them;
* an **evaluation rule** — a fold :class:`~repro.dimensions.semiring.Semiring`
  plus a *mode* selecting how the fold is applied:

  - ``"bdd-prob"`` — exact under component sharing: the annotation is a
    probability table evaluated through the shared
    :class:`~repro.dependability.bdd.AvailabilityKernel` (one linearized
    bottom-up pass serves every probability-valued dimension at once via
    ``evaluate_many_all``); ``prob_rule`` picks the reported scalar —
    the system root (``"root"``, availability-like) or the mean of the
    pair roots (``"mean-groups"``, performability-like);
  - ``"semiring"`` — the series–parallel fold itself is exact for the
    dimension's algebra (tropical latency, set-union cost);
  - ``"custom"`` — an arbitrary callable ``evaluate(ctx, dim)`` over the
    shared :class:`~repro.dimensions.evaluate.EvaluationContext`
    (responsiveness's availability-weighted hypoexponential race).

The registry itself follows sotopia's ``CustomEvaluationDimension`` /
``EvaluationDimensionBuilder`` pattern: dimensions are plain validated
records registered by name, user-defined ones load from dicts
(:func:`dimension_from_dict`) without touching core, and a *dimension-set
fingerprint* (blake2b over the :meth:`Dimension.signature` of every
selected dimension) keys dimension-aware kernel artifacts in the store.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import AnalysisError

from repro.dimensions.semiring import Semiring, named_semiring

__all__ = [
    "AnnotationSpec",
    "Dimension",
    "DimensionRegistry",
    "MODES",
    "PROB_RULES",
    "dimension_from_dict",
    "default_registry",
    "register_dimension",
    "get_dimension",
    "dimension_names",
]

#: Evaluation modes a dimension may declare (see module docstring).
MODES = ("bdd-prob", "semiring", "custom")

#: Scalar rules for ``bdd-prob`` dimensions: the system root (probability
#: that *every* pair is served) or the mean over pair roots (expected
#: fraction of pairs served — the connectivity-reward performability).
PROB_RULES = ("root", "mean-groups")


@dataclass(frozen=True)
class AnnotationSpec:
    """One per-component annotation a dimension consumes.

    ``resolver(model, include_links=..., formula=...)`` produces the
    component→value table from a UPSIM/object model (e.g. Formula 1 for
    availability).  Without a resolver, ``default`` is used for every
    component; without either, the table must be supplied explicitly via
    ``evaluate_dimensions(annotations={key: ...})``.  ``lower``/``upper``
    bound the values (``exclusive_lower`` makes the lower bound strict —
    mean latencies must be > 0).
    """

    key: str
    description: str = ""
    lower: float = -math.inf
    upper: float = math.inf
    exclusive_lower: bool = False
    default: Optional[float] = None
    resolver: Optional[Callable[..., Dict[str, float]]] = None

    def __post_init__(self) -> None:
        if not self.key or not self.key.replace("_", "").isalnum():
            raise AnalysisError(
                f"annotation key must be a non-empty [a-z0-9_] name, "
                f"got {self.key!r}"
            )
        if self.lower > self.upper:
            raise AnalysisError(
                f"annotation {self.key!r} bounds are empty: "
                f"[{self.lower}, {self.upper}]"
            )
        if self.default is not None:
            try:
                self.check(self.key, float(self.default))
            except AnalysisError as exc:
                raise AnalysisError(
                    f"annotation {self.key!r} default violates its own "
                    f"bounds: {exc}"
                ) from None

    def check(self, component: str, value: float) -> float:
        """Validate one component's value against the declared bounds."""
        value = float(value)
        if not math.isfinite(value):
            raise AnalysisError(
                f"{self.key} of {component!r} must be finite, got {value}"
            )
        below = (
            value <= self.lower if self.exclusive_lower else value < self.lower
        )
        if below or value > self.upper:
            bracket = "(" if self.exclusive_lower else "["
            raise AnalysisError(
                f"{self.key} of {component!r} must be in "
                f"{bracket}{self.lower}, {self.upper}], got {value}"
            )
        return value

    def resolve(
        self,
        model: Any,
        components: Sequence[str],
        *,
        include_links: bool = True,
        formula: str = "paper",
    ) -> Dict[str, float]:
        """The validated component→value table for *components*."""
        if self.resolver is not None:
            if model is None:
                raise AnalysisError(
                    f"annotation {self.key!r} resolves from a model; "
                    f"pass a UPSIM or supply annotations={{{self.key!r}: ...}}"
                )
            table = self.resolver(
                model, include_links=include_links, formula=formula
            )
        elif self.default is not None:
            table = {component: self.default for component in components}
        else:
            raise AnalysisError(
                f"annotation {self.key!r} has no resolver and no default; "
                f"supply annotations={{{self.key!r}: ...}}"
            )
        missing = [c for c in components if c not in table]
        if missing:
            if self.default is None:
                raise AnalysisError(
                    f"no {self.key} annotation for components {missing}"
                )
            table = dict(table)
            for component in missing:
                table[component] = self.default
        return {c: self.check(c, table[c]) for c in components}

    def validate_table(
        self, table: Mapping[str, float], components: Sequence[str]
    ) -> Dict[str, float]:
        """Validate an explicitly supplied table (annotation overrides)."""
        missing = [c for c in components if c not in table]
        if missing:
            raise AnalysisError(
                f"no {self.key} annotation for components {missing}"
            )
        return {c: self.check(c, table[c]) for c in components}

    def signature(self) -> str:
        resolver = (
            getattr(self.resolver, "__qualname__", repr(self.resolver))
            if self.resolver is not None
            else "-"
        )
        return (
            f"{self.key}|{self.lower}|{self.upper}|{self.exclusive_lower}"
            f"|{self.default}|{resolver}"
        )


@dataclass(frozen=True)
class Dimension:
    """One registered user-perceived dimension (see module docstring)."""

    name: str
    description: str
    semiring: Semiring
    annotations: Tuple[AnnotationSpec, ...]
    mode: str = "semiring"
    prob_rule: str = "root"
    evaluate: Optional[Callable[..., Tuple[float, Tuple[float, ...]]]] = None
    params: Tuple[Tuple[str, float], ...] = ()
    unit: str = ""
    fmt: str = "{:.6f}"
    higher_is_better: bool = True

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or "," in self.name:
            raise AnalysisError(
                f"dimension name must be non-empty without '/' or ',', "
                f"got {self.name!r}"
            )
        if self.mode not in MODES:
            raise AnalysisError(
                f"dimension {self.name!r} has unknown mode {self.mode!r}; "
                f"expected one of {MODES}"
            )
        if self.prob_rule not in PROB_RULES:
            raise AnalysisError(
                f"dimension {self.name!r} has unknown prob_rule "
                f"{self.prob_rule!r}; expected one of {PROB_RULES}"
            )
        if not self.annotations:
            raise AnalysisError(
                f"dimension {self.name!r} declares no annotation specs"
            )
        keys = [spec.key for spec in self.annotations]
        if len(set(keys)) != len(keys):
            raise AnalysisError(
                f"dimension {self.name!r} has duplicate annotation keys {keys}"
            )
        if self.mode == "custom" and self.evaluate is None:
            raise AnalysisError(
                f"custom dimension {self.name!r} needs an evaluate callable"
            )
        if self.mode != "custom" and self.evaluate is not None:
            raise AnalysisError(
                f"dimension {self.name!r} is {self.mode!r} but supplies an "
                f"evaluate callable (only mode='custom' uses one)"
            )

    @property
    def primary(self) -> AnnotationSpec:
        """The annotation the fold consumes (first declared spec)."""
        return self.annotations[0]

    def annotation(self, key: str) -> AnnotationSpec:
        for spec in self.annotations:
            if spec.key == key:
                return spec
        raise AnalysisError(
            f"dimension {self.name!r} has no annotation {key!r} "
            f"(declares {[s.key for s in self.annotations]})"
        )

    def param(self, key: str, overrides: Optional[Mapping[str, float]] = None) -> float:
        """One evaluation parameter, with per-call overrides applied."""
        if overrides and key in overrides:
            return float(overrides[key])
        for name, value in self.params:
            if name == key:
                return value
        raise AnalysisError(
            f"dimension {self.name!r} has no parameter {key!r} "
            f"(declares {[name for name, _ in self.params]})"
        )

    def signature(self) -> str:
        """Stable identity string — the unit of the dimension-set
        fingerprint that keys dimension-aware kernel artifacts.  Two
        dimensions with different math never share a signature (custom
        evaluate callables contribute their qualified name)."""
        evaluate = (
            getattr(self.evaluate, "__qualname__", repr(self.evaluate))
            if self.evaluate is not None
            else "-"
        )
        annotations = ";".join(spec.signature() for spec in self.annotations)
        params = ";".join(f"{k}={v}" for k, v in self.params)
        return (
            f"{self.name}|{self.mode}|{self.prob_rule}|{self.semiring.name}"
            f"|{annotations}|{params}|{evaluate}|{self.unit}"
        )


class DimensionRegistry:
    """Named dimensions in registration order (sotopia's builder-registry
    shape: plain records in a dict, validated on the way in)."""

    def __init__(self, dimensions: Sequence[Dimension] = ()):
        self._dimensions: Dict[str, Dimension] = {}
        for dimension in dimensions:
            self.register(dimension)

    def register(
        self, dimension: Dimension, *, replace: bool = False
    ) -> Dimension:
        if not isinstance(dimension, Dimension):
            raise AnalysisError(
                f"expected a Dimension, got {type(dimension).__name__}"
            )
        if dimension.name in self._dimensions and not replace:
            raise AnalysisError(
                f"dimension {dimension.name!r} is already registered "
                f"(pass replace=True to override)"
            )
        self._dimensions[dimension.name] = dimension
        return dimension

    def unregister(self, name: str) -> None:
        if name not in self._dimensions:
            raise AnalysisError(f"dimension {name!r} is not registered")
        del self._dimensions[name]

    def get(self, name: str) -> Dimension:
        try:
            return self._dimensions[name]
        except KeyError:
            raise AnalysisError(
                f"unknown dimension {name!r}; registered: {list(self.names())}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._dimensions)

    def select(self, names: Optional[Sequence[str]] = None) -> Tuple[Dimension, ...]:
        """The dimensions to evaluate: all registered (registration
        order) when *names* is None, else the named ones in given order."""
        if names is None:
            return tuple(self._dimensions.values())
        if not names:
            raise AnalysisError("select at least one dimension")
        return tuple(self.get(name) for name in names)

    def fingerprint(self, names: Optional[Sequence[str]] = None) -> str:
        """blake2b digest over the selected dimensions' signatures — the
        dimension half of the dimension-aware kernel artifact key.  Any
        change to a dimension's math (mode, semiring, annotations,
        params, custom callable) changes the digest, so stored artifacts
        can never be served to a dimension set they weren't built for."""
        digest = hashlib.blake2b(digest_size=16)
        for dimension in self.select(names):
            digest.update(dimension.signature().encode("utf-8"))
            digest.update(b"\x1e")
        return digest.hexdigest()

    def __contains__(self, name: object) -> bool:
        return name in self._dimensions

    def __iter__(self) -> Iterator[Dimension]:
        return iter(self._dimensions.values())

    def __len__(self) -> int:
        return len(self._dimensions)


def dimension_from_dict(spec: Mapping[str, Any]) -> Dimension:
    """Build a :class:`Dimension` from a plain dict — the sotopia
    ``EvaluationDimensionBuilder.build_dimension_model`` path, letting
    users declare custom dimensions in JSON/YAML without touching core.

    Recognized keys: ``name`` (required), ``semiring`` (named algebra,
    required), ``annotation`` (dict: ``key`` required, plus ``default``,
    ``lower``, ``upper``, ``exclusive_lower``, ``description``),
    ``prob_rule``, ``mode`` (``"semiring"`` or ``"bdd-prob"`` — custom
    callables can't be expressed in data), ``description``, ``unit``,
    ``fmt``, ``params``, ``higher_is_better``.
    """
    if not isinstance(spec, Mapping):
        raise AnalysisError(
            f"dimension spec must be a mapping, got {type(spec).__name__}"
        )
    unknown = set(spec) - {
        "name",
        "description",
        "semiring",
        "annotation",
        "mode",
        "prob_rule",
        "params",
        "unit",
        "fmt",
        "higher_is_better",
    }
    if unknown:
        raise AnalysisError(
            f"unknown dimension spec keys {sorted(unknown)}"
        )
    for required in ("name", "semiring"):
        if required not in spec:
            raise AnalysisError(f"dimension spec needs a {required!r} key")
    mode = spec.get("mode", "semiring")
    if mode == "custom":
        raise AnalysisError(
            "custom dimensions need a python evaluate callable; build a "
            "Dimension directly instead of dimension_from_dict"
        )
    annotation = dict(spec.get("annotation", {}))
    annotation.setdefault("key", "value")
    annotation_kwargs = {
        "key": annotation.pop("key"),
        "description": annotation.pop("description", ""),
    }
    for bound in ("lower", "upper", "default"):
        if bound in annotation:
            annotation_kwargs[bound] = float(annotation.pop(bound))
    if "exclusive_lower" in annotation:
        annotation_kwargs["exclusive_lower"] = bool(
            annotation.pop("exclusive_lower")
        )
    if annotation:
        raise AnalysisError(
            f"unknown annotation spec keys {sorted(annotation)}"
        )
    params = tuple(
        sorted((str(k), float(v)) for k, v in dict(spec.get("params", {})).items())
    )
    return Dimension(
        name=str(spec["name"]),
        description=str(spec.get("description", "")),
        semiring=named_semiring(str(spec["semiring"])),
        annotations=(AnnotationSpec(**annotation_kwargs),),
        mode=str(mode),
        prob_rule=str(spec.get("prob_rule", "root")),
        params=params,
        unit=str(spec.get("unit", "")),
        fmt=str(spec.get("fmt", "{:.6f}")),
        higher_is_better=bool(spec.get("higher_is_better", True)),
    )


_DEFAULT: Optional[DimensionRegistry] = None


def default_registry() -> DimensionRegistry:
    """The process-wide registry, created on first use with the five
    built-in dimensions registered (availability, responsiveness,
    performability, latency, cost)."""
    global _DEFAULT
    if _DEFAULT is None:
        from repro.dimensions.builtins import builtin_dimensions

        _DEFAULT = DimensionRegistry(builtin_dimensions())
    return _DEFAULT


def register_dimension(
    dimension: Dimension, *, replace: bool = False
) -> Dimension:
    """Register into the default registry (user-defined dimensions)."""
    return default_registry().register(dimension, replace=replace)


def get_dimension(name: str) -> Dimension:
    return default_registry().get(name)


def dimension_names() -> Tuple[str, ...]:
    return default_registry().names()
