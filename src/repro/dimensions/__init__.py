"""Pluggable user-perceived dimensions over one compiled structure.

The paper evaluates several user-perceived properties — availability,
responsiveness, performability — over the *same* user–service path
structure.  This package makes that literal: a dimension is a named
(annotation schema, fold semiring / evaluation rule, formatting) record
in a registry, and :func:`evaluate_dimensions` evaluates any set of
registered dimensions with one structure build, one annotation
resolution per spec, and one vectorized kernel pass.

See ``docs/dimensions.md`` for the registry API, the semiring contract,
and a custom-dimension walkthrough.
"""

from repro.dimensions.builtins import (
    AVAILABILITY_SPEC,
    MEAN_LATENCY_SPEC,
    UNIT_COST_SPEC,
    builtin_dimensions,
    pair_responsiveness_fold,
    resolve_availability,
)
from repro.dimensions.evaluate import (
    KIND_DIMENSION_KERNEL,
    DimensionReport,
    DimensionValue,
    EvaluationContext,
    evaluate_dimensions,
)
from repro.dimensions.registry import (
    MODES,
    PROB_RULES,
    AnnotationSpec,
    Dimension,
    DimensionRegistry,
    default_registry,
    dimension_from_dict,
    dimension_names,
    get_dimension,
    register_dimension,
)
from repro.dimensions.semiring import (
    LAWS,
    PROBABILITY,
    SET_UNION,
    TROPICAL_MIN_SUM,
    Semiring,
    fold_group,
    fold_path,
    fold_structure,
    named_semiring,
)

__all__ = [
    "AnnotationSpec",
    "Dimension",
    "DimensionRegistry",
    "DimensionReport",
    "DimensionValue",
    "EvaluationContext",
    "KIND_DIMENSION_KERNEL",
    "LAWS",
    "MODES",
    "PROB_RULES",
    "PROBABILITY",
    "SET_UNION",
    "TROPICAL_MIN_SUM",
    "Semiring",
    "AVAILABILITY_SPEC",
    "MEAN_LATENCY_SPEC",
    "UNIT_COST_SPEC",
    "builtin_dimensions",
    "default_registry",
    "dimension_from_dict",
    "dimension_names",
    "evaluate_dimensions",
    "fold_group",
    "fold_path",
    "fold_structure",
    "get_dimension",
    "named_semiring",
    "pair_responsiveness_fold",
    "register_dimension",
    "resolve_availability",
]
