"""One-pass multi-dimension evaluation over the compiled structure.

:func:`evaluate_dimensions` is the registry's engine: it builds the
path-set structure **once** (distinct requester/provider pairs), resolves
and validates every needed annotation table **once** (specs shared
between dimensions — availability feeds availability, performability and
responsiveness — resolve a single time), compiles (or warm-starts from
the store) **one** BDD kernel, and evaluates every probability-valued
dimension in **one** vectorized bottom-up pass
(:meth:`~repro.dependability.bdd.AvailabilityKernel.evaluate_many_all`
over a (k_tables, n_variables) matrix).  Semiring dimensions fold the
canonical groups directly; custom dimensions receive the shared
:class:`EvaluationContext`.

Store interaction: with an artifact store active, the dimension plane
persists its own ``"dimkernel"`` artifacts keyed by *(structure
fingerprint, dimension-set fingerprint)* — the registry's
:meth:`~repro.dimensions.registry.DimensionRegistry.fingerprint` over the
selected dimensions' signatures.  Registering a custom dimension (or
changing any dimension's math) therefore changes the key: a fresh
process with a different dimension set can never warm-start from an
artifact built for another set, and the stored signatures are
re-verified at load time as a second guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import AnalysisError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
import repro.store as _store
from repro.store import StoreError

from repro.dimensions.registry import (
    AnnotationSpec,
    Dimension,
    DimensionRegistry,
    default_registry,
)
from repro.dimensions.semiring import fold_structure

__all__ = [
    "EvaluationContext",
    "DimensionValue",
    "DimensionReport",
    "evaluate_dimensions",
    "KIND_DIMENSION_KERNEL",
]

#: Artifact kind of the dimension plane's kernel tier.  Distinct from the
#: plain ``"kernel"`` kind: these keys include the dimension-set
#: fingerprint, so artifacts are never shared across dimension sets.
KIND_DIMENSION_KERNEL = "dimkernel"

_M_EVALUATIONS = _metrics.counter(
    "repro_dimensions_evaluations_total",
    "dimension evaluations by dimension name",
    labelnames=("dimension",),
)
_M_PASSES = _metrics.counter(
    "repro_dimensions_kernel_passes_total",
    "vectorized kernel passes performed by the dimension plane",
)


def _as_groups(
    structure: Any, *, include_links: bool
) -> Tuple[Tuple[Tuple[FrozenSet[str], ...], ...], Any, Optional[Sequence[str]]]:
    """Normalize *structure* (UPSIM or raw path-set groups) to canonical
    groups plus the originating model (if any) and a variable order."""
    if hasattr(structure, "path_sets") and hasattr(structure, "model"):
        from repro.analysis.transformations import service_path_set_groups
        from repro.dependability.bdd import order_from_topology
        from repro.network.topology import Topology

        raw = service_path_set_groups(structure, include_links=include_links)
        components = {c for group in raw for path in group for c in path}
        order = order_from_topology(Topology(structure.model), components)
        model: Any = structure.model
    else:
        raw = structure
        order = None
        model = None
    if not raw:
        raise AnalysisError("dimension evaluation requires at least one group")
    groups: List[Tuple[FrozenSet[str], ...]] = []
    for group in raw:
        if not group:
            raise AnalysisError("a pair with no path sets is never connected")
        groups.append(
            tuple(
                sorted(
                    {frozenset(path) for path in group},
                    key=lambda path: tuple(sorted(path)),
                )
            )
        )
    return tuple(groups), model, order


class EvaluationContext:
    """The state one :func:`evaluate_dimensions` call shares between all
    selected dimensions: canonical groups, memoized annotation tables,
    and the (lazily compiled, store-aware) BDD kernel.

    Custom dimensions receive this object; its public surface is
    :attr:`groups` (canonical per-pair path tuples, each path a sorted
    component tuple), :attr:`components`, :attr:`model`, and
    :meth:`table`.
    """

    def __init__(
        self,
        structure: Any,
        *,
        include_links: bool = True,
        formula: str = "paper",
        annotations: Optional[Mapping[str, Mapping[str, float]]] = None,
        use_store: bool = True,
    ):
        path_groups, model, order = _as_groups(
            structure, include_links=include_links
        )
        self.path_groups = path_groups
        #: per pair, the redundant paths as sorted component tuples — the
        #: shape custom fold evaluators iterate.
        self.groups: Tuple[Tuple[Tuple[str, ...], ...], ...] = tuple(
            tuple(tuple(sorted(path)) for path in group)
            for group in path_groups
        )
        self.components: Tuple[str, ...] = tuple(
            sorted({c for group in path_groups for path in group for c in path})
        )
        if not self.components:
            raise AnalysisError(
                "dimension evaluation requires at least one component"
            )
        self.model = model
        self.include_links = include_links
        self.formula = formula
        self._order = order
        self._overrides = {
            key: dict(table) for key, table in (annotations or {}).items()
        }
        self._tables: Dict[str, Dict[str, float]] = {}
        self._kernel = None
        self.use_store = use_store
        #: ``"hit"``/``"miss"`` when an artifact store served/recorded the
        #: dimension kernel, else ``None`` (no store, or kernel unused).
        self.store_event: Optional[str] = None

    def table(self, spec: AnnotationSpec) -> Dict[str, float]:
        """The validated component table for one annotation spec,
        memoized by key — specs shared across dimensions resolve once."""
        cached = self._tables.get(spec.key)
        if cached is not None:
            return cached
        if spec.key in self._overrides:
            table = spec.validate_table(
                self._overrides[spec.key], self.components
            )
        else:
            table = spec.resolve(
                self.model,
                self.components,
                include_links=self.include_links,
                formula=self.formula,
            )
        self._tables[spec.key] = table
        return table

    def kernel(self, dimension_fingerprint: str):
        """The compiled kernel of :attr:`path_groups`, warm-started from
        the store's dimension-aware tier when possible."""
        if self._kernel is not None:
            return self._kernel
        from repro.dependability.bdd import (
            AvailabilityKernel,
            compile_structure,
            frequency_order,
            structure_fingerprint,
        )

        order = tuple(self._order) if self._order else frequency_order(
            self.path_groups
        )
        structure_fp = structure_fingerprint(self.path_groups, order)
        store = _store.active_store() if self.use_store else None
        if store is not None:
            artifact = store.get(
                KIND_DIMENSION_KERNEL, (structure_fp, dimension_fingerprint)
            )
            if artifact is not None and artifact.meta.get(
                "dimension_fingerprint"
            ) == dimension_fingerprint:
                try:
                    self._kernel = AvailabilityKernel.from_flat(
                        artifact.arrays["var"],
                        artifact.arrays["low"],
                        artifact.arrays["high"],
                        int(artifact.meta["root_pos"]),
                        artifact.arrays["group_pos"],
                        artifact.meta["variables"],
                        structure_fp,
                    )
                except (KeyError, TypeError, ValueError, AnalysisError):
                    self._kernel = None
                if self._kernel is not None:
                    self.store_event = "hit"
                    return self._kernel
        self._kernel = compile_structure(self.path_groups, order=order)
        if store is not None:
            var, low, high, root_pos = self._kernel.flat_arrays()
            try:
                store.put(
                    KIND_DIMENSION_KERNEL,
                    (structure_fp, dimension_fingerprint),
                    {
                        "var": np.asarray(var, dtype=np.int64),
                        "low": np.asarray(low, dtype=np.int64),
                        "high": np.asarray(high, dtype=np.int64),
                        "group_pos": np.asarray(
                            self._kernel._group_pos, dtype=np.int64
                        ),
                    },
                    {
                        "root_pos": int(root_pos),
                        "variables": list(self._kernel.variables),
                        "dimension_fingerprint": dimension_fingerprint,
                    },
                )
            except StoreError:
                pass
            self.store_event = "miss"
        return self._kernel


@dataclass(frozen=True)
class DimensionValue:
    """One evaluated dimension: the service-level value plus the
    per-distinct-pair breakdown (same order as the structure's groups)."""

    name: str
    value: float
    per_pair: Tuple[float, ...]
    unit: str = ""
    fmt: str = "{:.6f}"
    higher_is_better: bool = True
    description: str = ""

    def formatted(self) -> str:
        text = self.fmt.format(self.value)
        return f"{text} {self.unit}".rstrip()


class DimensionReport:
    """Evaluated dimensions in selection order, with the fingerprints
    that identify the evaluation (structure + dimension set)."""

    def __init__(
        self,
        values: Sequence[DimensionValue],
        *,
        dimension_fingerprint: str,
        kernel_fingerprint: Optional[str] = None,
        store_event: Optional[str] = None,
    ):
        self._values: Dict[str, DimensionValue] = {
            value.name: value for value in values
        }
        self.dimension_fingerprint = dimension_fingerprint
        self.kernel_fingerprint = kernel_fingerprint
        self.store_event = store_event

    def names(self) -> Tuple[str, ...]:
        return tuple(self._values)

    def __getitem__(self, name: str) -> DimensionValue:
        try:
            return self._values[name]
        except KeyError:
            raise AnalysisError(
                f"report has no dimension {name!r}; "
                f"evaluated: {list(self._values)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def __iter__(self):
        return iter(self._values.values())

    def __len__(self) -> int:
        return len(self._values)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            value.name: {
                "value": value.value,
                "per_pair": list(value.per_pair),
                "unit": value.unit,
                "higher_is_better": value.higher_is_better,
            }
            for value in self
        }

    def to_text(self) -> str:
        """Aligned dimension table (the report/CLI rendering the golden
        snapshot tests pin)."""
        rows = [
            (
                value.name,
                value.formatted(),
                value.fmt.format(min(value.per_pair)),
                value.fmt.format(max(value.per_pair)),
            )
            for value in self
        ]
        headers = ("dimension", "value", "pair min", "pair max")
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(4)
        ]
        lines = [f"User-perceived dimensions ({len(next(iter(self)).per_pair)} pairs)"]
        lines.append(
            "  "
            + "  ".join(
                header.ljust(widths[i]) for i, header in enumerate(headers)
            ).rstrip()
        )
        for row in rows:
            lines.append(
                "  "
                + "  ".join(
                    cell.ljust(widths[i]) for i, cell in enumerate(row)
                ).rstrip()
            )
        return "\n".join(lines)


def evaluate_dimensions(
    structure: Any,
    names: Optional[Sequence[str]] = None,
    *,
    annotations: Optional[Mapping[str, Mapping[str, float]]] = None,
    params: Optional[Mapping[str, Mapping[str, float]]] = None,
    include_links: bool = True,
    formula: str = "paper",
    registry: Optional[DimensionRegistry] = None,
    use_store: bool = True,
) -> DimensionReport:
    """Evaluate registered dimensions over one compiled structure.

    Parameters
    ----------
    structure:
        A :class:`repro.core.upsim.UPSIM` (annotations resolve from the
        model) or raw path-set groups (annotation tables for specs
        without defaults must then come via *annotations*).
    names:
        Dimension names to evaluate, in report order; ``None`` evaluates
        every registered dimension.
    annotations:
        Per-annotation-key overrides: ``{"availability": {comp: value}}``.
        Overrides replace resolution entirely for that key and are
        validated against the spec's bounds.
    params:
        Per-dimension parameter overrides:
        ``{"responsiveness": {"deadline": 5.0}}``.
    registry:
        Defaults to the process-wide registry (built-ins plus anything
        the caller registered).
    """
    registry = registry if registry is not None else default_registry()
    dimensions = registry.select(names)
    dimension_fp = registry.fingerprint([d.name for d in dimensions])
    context = EvaluationContext(
        structure,
        include_links=include_links,
        formula=formula,
        annotations=annotations,
        use_store=use_store,
    )
    with _trace.span(
        "dimensions.evaluate",
        dimensions=[d.name for d in dimensions],
        groups=len(context.groups),
        fingerprint=dimension_fp,
    ):
        # One vectorized kernel pass covers every bdd-prob dimension:
        # distinct probability tables stack into a (k, n) matrix.
        prob_dimensions = [d for d in dimensions if d.mode == "bdd-prob"]
        prob_results: Dict[str, Tuple[float, np.ndarray]] = {}
        kernel = None
        if prob_dimensions:
            kernel = context.kernel(dimension_fp)
            table_keys: List[str] = []
            for dimension in prob_dimensions:
                if dimension.primary.key not in table_keys:
                    table_keys.append(dimension.primary.key)
            matrix = np.stack(
                [
                    kernel.probability_vector(
                        context.table(
                            next(
                                d.primary
                                for d in prob_dimensions
                                if d.primary.key == key
                            )
                        )
                    )
                    for key in table_keys
                ]
            )
            _M_PASSES.inc()
            roots, group_values = kernel.evaluate_many_all(matrix)
            for row, key in enumerate(table_keys):
                prob_results[key] = (float(roots[row]), group_values[row])

        values: List[DimensionValue] = []
        for dimension in dimensions:
            _M_EVALUATIONS.labels(dimension=dimension.name).inc()
            merged_params = dict(dimension.params)
            if params and dimension.name in params:
                merged_params.update(params[dimension.name])
            if dimension.mode == "bdd-prob":
                root, per_group = prob_results[dimension.primary.key]
                per_pair = tuple(float(v) for v in per_group)
                if dimension.prob_rule == "root":
                    value = root
                else:
                    value = float(np.mean(per_group))
            elif dimension.mode == "semiring":
                value, per_pair = fold_structure(
                    dimension.semiring,
                    context.path_groups,
                    context.table(dimension.primary),
                )
            else:
                value, per_pair = dimension.evaluate(
                    context, dimension, merged_params
                )
                per_pair = tuple(float(v) for v in per_pair)
                if len(per_pair) != len(context.groups):
                    raise AnalysisError(
                        f"custom dimension {dimension.name!r} returned "
                        f"{len(per_pair)} per-pair values for "
                        f"{len(context.groups)} groups"
                    )
            values.append(
                DimensionValue(
                    name=dimension.name,
                    value=float(value),
                    per_pair=per_pair,
                    unit=dimension.unit,
                    fmt=dimension.fmt,
                    higher_is_better=dimension.higher_is_better,
                    description=dimension.description,
                )
            )
    return DimensionReport(
        values,
        dimension_fingerprint=dimension_fp,
        kernel_fingerprint=kernel.fingerprint if kernel is not None else None,
        store_event=context.store_event,
    )
