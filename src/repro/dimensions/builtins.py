"""The five built-in user-perceived dimensions.

Registered out of the box (Section VII of the paper names availability,
responsiveness and performability as the properties the UPSIM enables;
latency and cost are the two classic annotated-path measures the same
structure supports):

* **availability** — P(every distinct requester/provider pair is
  connected).  Mode ``bdd-prob``/``root``: the Formula-1 component table
  evaluated exactly through the shared BDD kernel.
* **performability** — expected fraction of connected pairs (the
  connectivity-reward of :mod:`repro.dependability.performability`).
  Mode ``bdd-prob``/``mean-groups``; shares both the annotation table
  and the kernel pass with availability.
* **responsiveness** — P(some path of every pair is up *and* completes
  within the deadline), the independence method of
  :func:`repro.dependability.responsiveness.pair_responsiveness`
  (availability-weighted hypoexponential race over redundant paths).
  Mode ``custom``.
* **latency** — best-path mean latency per pair, summed across the
  pairs traversed in series.  Tropical (min, +) fold; exact under
  component sharing.
* **cost** — total cost of the distinct components supporting the
  structure (each shared component paid once).  Set-union fold.

USI case-study models only annotate MTBF/MTTR, so ``mean_latency_ms``
and ``unit_cost`` default to 1.0 per component: out of the box, latency
reads as best-path *hop count* and cost as the *component footprint* —
meaningful graph measures on their own, and overridable per component
via ``evaluate_dimensions(annotations={...})``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import AnalysisError

from repro.dimensions.registry import AnnotationSpec, Dimension
from repro.dimensions.semiring import PROBABILITY, SET_UNION, TROPICAL_MIN_SUM

__all__ = [
    "AVAILABILITY_SPEC",
    "MEAN_LATENCY_SPEC",
    "UNIT_COST_SPEC",
    "builtin_dimensions",
    "pair_responsiveness_fold",
    "resolve_availability",
]

#: Default deadline (same unit as ``mean_latency_ms``) for the built-in
#: responsiveness dimension; override per call with
#: ``params={"responsiveness": {"deadline": ...}}``.
DEFAULT_DEADLINE_MS = 10.0


def resolve_availability(
    model: Any, *, include_links: bool = True, formula: str = "paper"
) -> Dict[str, float]:
    """Formula (1) over every instance and link — the availability
    annotation resolver (thin alias of
    :func:`repro.analysis.transformations.component_availabilities`)."""
    from repro.analysis.transformations import component_availabilities

    return component_availabilities(
        model, formula=formula, include_links=include_links
    )


#: Steady-state availability per component (Formula 1); shared by the
#: availability, performability, and responsiveness dimensions — one
#: resolution, one validated table, one kernel pass.
AVAILABILITY_SPEC = AnnotationSpec(
    key="availability",
    description="steady-state availability, MTBF/(MTBF+MTTR) (Formula 1)",
    lower=0.0,
    upper=1.0,
    resolver=resolve_availability,
)

#: Mean latency contribution per traversed component, in milliseconds.
MEAN_LATENCY_SPEC = AnnotationSpec(
    key="mean_latency_ms",
    description="mean processing/forwarding latency per component (ms)",
    lower=0.0,
    exclusive_lower=True,
    default=1.0,
)

#: Cost per supporting component, in abstract units.
UNIT_COST_SPEC = AnnotationSpec(
    key="unit_cost",
    description="cost of keeping one component in the structure",
    lower=0.0,
    default=1.0,
)


def pair_responsiveness_fold(
    paths: Sequence[Sequence[str]],
    mean_latency: Mapping[str, float],
    deadline: float,
    *,
    availabilities: Optional[Mapping[str, float]] = None,
) -> Tuple[float, Tuple[float, ...]]:
    """``(probability, per_path)`` of the independence-method race: each
    path completes within *deadline* with its availability-weighted
    hypoexponential CDF, redundant paths combine as ``1 - ∏(1 - p)``.

    The single implementation behind both the registry's responsiveness
    dimension and the thin
    :func:`repro.dependability.responsiveness.pair_responsiveness`
    delegate (``method="independent"``).
    """
    from repro.dependability.responsiveness import path_responsiveness

    if not paths:
        raise AnalysisError("pair responsiveness requires at least one path")
    if deadline < 0:
        raise AnalysisError(f"deadline must be >= 0, got {deadline}")
    per_path = []
    for path in paths:
        missing = [c for c in path if c not in mean_latency]
        if missing:
            raise AnalysisError(f"no mean latency for components {missing}")
        prob = path_responsiveness(
            [mean_latency[c] for c in path], deadline
        )
        if availabilities is not None:
            for component in path:
                if component not in availabilities:
                    raise AnalysisError(
                        f"no availability for component {component!r}"
                    )
                prob *= availabilities[component]
        per_path.append(prob)
    miss = 1.0
    for prob in per_path:
        miss *= 1.0 - prob
    return 1.0 - miss, tuple(per_path)


def _evaluate_responsiveness(
    ctx: Any, dimension: Dimension, params: Mapping[str, float]
) -> Tuple[float, Tuple[float, ...]]:
    """Custom evaluator: per-pair race probability, pairs in series."""
    deadline = float(params["deadline"])
    latency = ctx.table(dimension.annotation("mean_latency_ms"))
    availability = ctx.table(dimension.annotation("availability"))
    per_pair = []
    value = 1.0
    for group in ctx.groups:
        pair_value, _ = pair_responsiveness_fold(
            group, latency, deadline, availabilities=availability
        )
        per_pair.append(pair_value)
        value *= pair_value
    return value, tuple(per_pair)


def builtin_dimensions() -> Tuple[Dimension, ...]:
    """Fresh instances of the five built-ins, in canonical order."""
    return (
        Dimension(
            name="availability",
            description=(
                "P(every requester/provider pair connected) — exact BDD"
            ),
            semiring=PROBABILITY,
            annotations=(AVAILABILITY_SPEC,),
            mode="bdd-prob",
            prob_rule="root",
            fmt="{:.9f}",
        ),
        Dimension(
            name="responsiveness",
            description=(
                "P(every pair served within the deadline) — "
                "availability-weighted hypoexponential race"
            ),
            semiring=PROBABILITY,
            annotations=(MEAN_LATENCY_SPEC, AVAILABILITY_SPEC),
            mode="custom",
            evaluate=_evaluate_responsiveness,
            params=(("deadline", DEFAULT_DEADLINE_MS),),
            fmt="{:.9f}",
        ),
        Dimension(
            name="performability",
            description=(
                "expected fraction of connected pairs (connectivity reward)"
            ),
            semiring=PROBABILITY,
            annotations=(AVAILABILITY_SPEC,),
            mode="bdd-prob",
            prob_rule="mean-groups",
            fmt="{:.9f}",
        ),
        Dimension(
            name="latency",
            description="best-path mean latency, pairs in series",
            semiring=TROPICAL_MIN_SUM,
            annotations=(MEAN_LATENCY_SPEC,),
            mode="semiring",
            unit="ms",
            fmt="{:.3f}",
            higher_is_better=False,
        ),
        Dimension(
            name="cost",
            description="total cost of the distinct supporting components",
            semiring=SET_UNION,
            annotations=(UNIT_COST_SPEC,),
            mode="semiring",
            fmt="{:.2f}",
            higher_is_better=False,
        ),
    )
