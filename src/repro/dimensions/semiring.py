"""Fold semirings over series–parallel path structures.

Every user-perceived dimension of the paper — availability,
responsiveness, performability, latency, cost — is a per-component
annotation *folded* over the same user–service path structure: values
combine **in series** along a path (all components of the path are
traversed) and **in parallel** across the redundant paths of a
requester/provider pair, and the per-pair results combine **across
pairs** into the service-level value (every atomic service must execute,
Section V-A2).

:class:`Semiring` captures exactly that triple of operators plus their
identities, lifted over an arbitrary element domain:

* ``lift(name, value)`` turns one component's annotation into a fold
  element (usually the value itself; the set-union semiring lifts to the
  singleton ``{name}``);
* ``series``/``parallel``/``across`` combine elements (``across``
  defaults to ``series``);
* ``finish(element, annotations)`` maps the folded element back to the
  reported float (usually the identity; the set-union semiring prices
  the collected component set here).

The declared :attr:`Semiring.laws` name the algebraic laws the operator
pair satisfies; the hypothesis battery in
``tests/dimensions/test_semiring_properties.py`` asserts every declared
law on randomly drawn elements, and the differential battery asserts
that on **component-disjoint** structures (where sharing cannot bite)
the series–parallel fold agrees with the exact evaluators to 1e-12.

Folds are exact whenever the element domain is deterministic (tropical
latency, set-union cost — duplicate components are absorbed by ``min``
and ``∪``); for probability-valued domains the fold is the classical
independence approximation, and the exact value comes from the shared
BDD kernel pass instead (see :mod:`repro.dimensions.evaluate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.errors import AnalysisError

__all__ = [
    "Semiring",
    "LAWS",
    "PROBABILITY",
    "TROPICAL_MIN_SUM",
    "SET_UNION",
    "named_semiring",
    "fold_path",
    "fold_group",
    "fold_structure",
]

#: Recognized law names a semiring may declare (and the property battery
#: asserts): identities and associativity are mandatory for a meaningful
#: fold; commutativity, distributivity and idempotence are per-domain.
LAWS = (
    "series-identity",
    "parallel-identity",
    "series-associative",
    "parallel-associative",
    "series-commutative",
    "parallel-commutative",
    "distributive",
    "parallel-idempotent",
)

#: Element-domain hints for property-based law testing: the battery draws
#: random elements from the declared domain.
DOMAINS = ("unit-interval", "nonnegative", "component-set")


def _identity_finish(element: Any, annotations: Mapping[str, float]) -> float:
    return float(element)


def _value_lift(name: str, value: float) -> Any:
    return value


@dataclass(frozen=True)
class Semiring:
    """One dimension's fold algebra over the path structure.

    ``series`` combines along a path, ``parallel`` across redundant
    paths, ``across`` (default: ``series``) across requester/provider
    pairs.  ``laws`` declares which of :data:`LAWS` hold; ``domain``
    (one of :data:`DOMAINS`) tells the property battery what elements to
    draw.
    """

    name: str
    series: Callable[[Any, Any], Any]
    series_identity: Any
    parallel: Callable[[Any, Any], Any]
    parallel_identity: Any
    laws: Tuple[str, ...] = ()
    domain: str = "unit-interval"
    across: Optional[Callable[[Any, Any], Any]] = None
    across_identity: Any = None
    lift: Callable[[str, float], Any] = _value_lift
    finish: Callable[[Any, Mapping[str, float]], float] = _identity_finish

    def __post_init__(self) -> None:
        unknown = [law for law in self.laws if law not in LAWS]
        if unknown:
            raise AnalysisError(
                f"semiring {self.name!r} declares unknown laws {unknown}; "
                f"recognized: {LAWS}"
            )
        if self.domain not in DOMAINS:
            raise AnalysisError(
                f"semiring {self.name!r} has unknown element domain "
                f"{self.domain!r}; recognized: {DOMAINS}"
            )

    def combine_across(self, left: Any, right: Any) -> Any:
        return (self.across or self.series)(left, right)

    @property
    def across_start(self) -> Any:
        if self.across is None:
            return self.series_identity
        return self.across_identity


def fold_path(
    semiring: Semiring,
    path: Sequence[str],
    annotations: Mapping[str, float],
) -> Any:
    """Fold one path's component annotations in series (sorted component
    order: every declared series op is associative, and the sort makes
    the fold deterministic for set-typed paths)."""
    element = semiring.series_identity
    for component in sorted(path):
        if component not in annotations:
            raise AnalysisError(
                f"no {semiring.name!r} annotation for component {component!r}"
            )
        element = semiring.series(
            element, semiring.lift(component, annotations[component])
        )
    return element


def fold_group(
    semiring: Semiring,
    group: Sequence[FrozenSet[str]],
    annotations: Mapping[str, float],
) -> Any:
    """Fold one pair's redundant paths in parallel."""
    if not group:
        raise AnalysisError("a pair with no path sets is never connected")
    element = semiring.parallel_identity
    for path in group:
        element = semiring.parallel(
            element, fold_path(semiring, path, annotations)
        )
    return element


def fold_structure(
    semiring: Semiring,
    groups: Sequence[Sequence[FrozenSet[str]]],
    annotations: Mapping[str, float],
) -> Tuple[float, Tuple[float, ...]]:
    """``(service value, per-pair values)`` of the full series–parallel
    fold: paths in series, redundant paths in parallel, pairs combined
    with the ``across`` operator."""
    if not groups:
        raise AnalysisError("dimension fold requires at least one group")
    per_pair = []
    acc = semiring.across_start
    for group in groups:
        element = fold_group(semiring, group, annotations)
        per_pair.append(semiring.finish(element, annotations))
        acc = semiring.combine_across(acc, element)
    return semiring.finish(acc, annotations), tuple(per_pair)


# -- the named algebras the built-in dimensions use ---------------------------

#: Probability algebra: series = independent conjunction (·), parallel =
#: independent disjunction (a+b-ab).  Associative and commutative with
#: identities 1/0; **not** distributive (the whole reason exact
#: evaluation routes through the BDD under component sharing).
PROBABILITY = Semiring(
    name="probability",
    series=lambda a, b: a * b,
    series_identity=1.0,
    parallel=lambda a, b: a + b - a * b,
    parallel_identity=0.0,
    laws=(
        "series-identity",
        "parallel-identity",
        "series-associative",
        "parallel-associative",
        "series-commutative",
        "parallel-commutative",
    ),
    domain="unit-interval",
)

#: Tropical (min, +) algebra: series adds along the path, parallel keeps
#: the best (fastest/cheapest) path.  A true semiring — + distributes
#: over min — and exact even under component sharing (deterministic
#: values; duplicates are absorbed by min).
TROPICAL_MIN_SUM = Semiring(
    name="tropical-min-sum",
    series=lambda a, b: a + b,
    series_identity=0.0,
    parallel=min,
    parallel_identity=float("inf"),
    laws=(
        "series-identity",
        "parallel-identity",
        "series-associative",
        "parallel-associative",
        "series-commutative",
        "parallel-commutative",
        "distributive",
        "parallel-idempotent",
    ),
    domain="nonnegative",
)


def _union(a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
    return a | b


def _price(element: FrozenSet[str], annotations: Mapping[str, float]) -> float:
    return float(sum(annotations[name] for name in element))


#: Set-union algebra: the fold collects every component supporting the
#: structure; ``finish`` prices the set against the annotation table.
#: Union is associative, commutative, idempotent, and trivially
#: distributive — and exact under sharing (a shared component is paid
#: for once).
SET_UNION = Semiring(
    name="set-union",
    series=_union,
    series_identity=frozenset(),
    parallel=_union,
    parallel_identity=frozenset(),
    laws=(
        "series-identity",
        "parallel-identity",
        "series-associative",
        "parallel-associative",
        "series-commutative",
        "parallel-commutative",
        "distributive",
        "parallel-idempotent",
    ),
    domain="component-set",
    lift=lambda name, value: frozenset((name,)),
    finish=_price,
)

_NAMED = {
    semiring.name: semiring
    for semiring in (PROBABILITY, TROPICAL_MIN_SUM, SET_UNION)
}


def named_semiring(name: str) -> Semiring:
    """Look up one of the stock algebras by name (the
    :func:`repro.dimensions.dimension_from_dict` builder path)."""
    try:
        return _NAMED[name]
    except KeyError:
        raise AnalysisError(
            f"unknown semiring {name!r}; known: {sorted(_NAMED)}"
        ) from None
