"""The UPSIM context model of Figure 1, built programmatically.

Figure 1 depicts the concepts of the methodology as a UML class diagram:
an *ICT Infrastructure* aggregates *ICT Components*, subdivided into
*Device* and *Connector* (every Connector associated to exactly two
Devices); a *Service* is a *Composite Service* composed of two or more
*Atomic Services*; and the *Service Mapping Pair* ties an atomic service
to requester and provider components.  :func:`context_model` constructs
that diagram with the library's own class-diagram machinery — it serves
both as executable documentation and as the regeneration target for the
``fig1`` experiment.
"""

from __future__ import annotations

from repro.uml.classes import Association, AssociationEnd, Class, ClassModel
from repro.uml.metamodel import Property

__all__ = ["context_model", "CONTEXT_CLASS_NAMES"]

#: The classes Figure 1 shows, in presentation order.
CONTEXT_CLASS_NAMES = (
    "ICTInfrastructure",
    "ICTComponent",
    "Device",
    "Connector",
    "Service",
    "CompositeService",
    "AtomicService",
    "ServiceMappingPair",
)


def context_model() -> ClassModel:
    """Build the Figure 1 context as a :class:`ClassModel`."""
    model = ClassModel("upsim-context")

    infrastructure = model.add_class(Class("ICTInfrastructure"))
    component = model.add_class(Class("ICTComponent", is_abstract=True))
    device = model.add_class(Class("Device", superclasses=[component]))
    connector = model.add_class(Class("Connector", superclasses=[component]))

    service = model.add_class(Class("Service", is_abstract=True))
    composite = model.add_class(Class("CompositeService", superclasses=[service]))
    atomic = model.add_class(Class("AtomicService", superclasses=[service]))

    mapping_pair = model.add_class(
        Class(
            "ServiceMappingPair",
            attributes=[
                Property("atomicService", "String", is_static=False),
                Property("requester", "String", is_static=False),
                Property("provider", "String", is_static=False),
            ],
        )
    )

    # ICT Infrastructure aggregates ICT components
    model.add_association(
        Association(
            "aggregates",
            AssociationEnd(infrastructure, lower=1, upper=1),
            AssociationEnd(component, lower=1, upper=None),
        )
    )
    # every Connector must be associated to two Devices, which may have any
    # number of Connectors
    model.add_association(
        Association(
            "connects",
            AssociationEnd(connector, lower=0, upper=None),
            AssociationEnd(device, lower=2, upper=2),
        )
    )
    # a composite service is composed of and only of two or more atomic
    # services; an atomic service can be part of any number of composites
    model.add_association(
        Association(
            "composedOf",
            AssociationEnd(composite, lower=0, upper=None),
            AssociationEnd(atomic, lower=2, upper=None),
        )
    )
    # the mapping instantiates an atomic service …
    model.add_association(
        Association(
            "maps",
            AssociationEnd(mapping_pair, lower=0, upper=None),
            AssociationEnd(atomic, lower=1, upper=1),
        )
    )
    # … onto requester and provider components
    model.add_association(
        Association(
            "requesterComponent",
            AssociationEnd(mapping_pair, lower=0, upper=None),
            AssociationEnd(component, lower=1, upper=1),
        )
    )
    model.add_association(
        Association(
            "providerComponent",
            AssociationEnd(mapping_pair, lower=0, upper=None),
            AssociationEnd(component, lower=1, upper=1),
        )
    )
    return model
