"""Path discovery: all simple paths between requester and provider.

Methodology Step 7 (Sections V-D, VI-G): "the service mapping pair gives
the initial and final boundaries of the ICT infrastructure used by a
specific atomic service.  A path discovery algorithm is then used to
identify all possible paths between requester and provider."  The paper
implements "a depth-first search (DFS) algorithm with a path tracking
mechanism to avoid live-locks within cycles" and notes the worst-case
complexity "reaching O(n!) for a fully interconnected graph of n nodes".

This module provides:

* :func:`discover_paths` — the all-paths enumerator (delegating to the
  compiled engine in :mod:`repro.core.engine`: integer-ID CSR DFS with
  block-cut-tree pruning and fingerprint-keyed memoization), with
  optional depth/count budgets for the combinatorial worst case;
* :func:`count_paths` — enumeration without storing paths, for the
  scalability sweeps;
* :func:`iter_paths` — the lazy engine-backed iterator;
* :func:`iter_paths_reference` / :func:`discover_paths_reference` — the
  seed string-keyed DFS (iterative, so deep tree-like peripheries cannot
  hit Python's recursion limit; the on-path set is the paper's
  path-tracking mechanism), kept as a second oracle and as the baseline
  the engine benchmarks measure against;
* :func:`discover_paths_networkx` — an independent baseline built on
  :func:`networkx.all_simple_paths`, used by the test-suite to cross-check
  both enumerators on every topology family;
* :class:`PathSet` — the result container, with the node/link union that
  UPSIM generation consumes (Step 8 merges paths "into a single network
  topology").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import PathDiscoveryError
from repro.network.topology import Topology

__all__ = [
    "Path",
    "PathSet",
    "discover_paths",
    "count_paths",
    "discover_paths_networkx",
    "iter_paths",
    "iter_paths_reference",
    "discover_paths_reference",
]

#: A path is the ordered tuple of visited instance names, endpoints included.
Path = Tuple[str, ...]


@dataclass
class PathSet:
    """All discovered paths for one (requester, provider) pair."""

    requester: str
    provider: str
    paths: List[Path] = field(default_factory=list)
    truncated: bool = False

    @property
    def count(self) -> int:
        return len(self.paths)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)

    def __bool__(self) -> bool:
        return bool(self.paths)

    def nodes(self) -> Set[str]:
        """Union of all visited nodes — the component set the pair's atomic
        service depends on ("only nodes which appear at least once in the
        discovered paths are preserved.  Multiple occurrences are ignored",
        Section VI-H)."""
        result: Set[str] = set()
        for path in self.paths:
            result.update(path)
        return result

    def links(self) -> Set[Tuple[str, str]]:
        """Union of traversed links as sorted name pairs."""
        result: Set[Tuple[str, str]] = set()
        for path in self.paths:
            for a, b in zip(path, path[1:]):
                result.add((a, b) if a <= b else (b, a))
        return result

    def shortest(self) -> Path:
        if not self.paths:
            raise PathDiscoveryError(
                f"no path between {self.requester!r} and {self.provider!r}"
            )
        return min(self.paths, key=len)

    def longest(self) -> Path:
        if not self.paths:
            raise PathDiscoveryError(
                f"no path between {self.requester!r} and {self.provider!r}"
            )
        return max(self.paths, key=len)

    def hop_counts(self) -> List[int]:
        """Number of links per path, in discovery order."""
        return [len(path) - 1 for path in self.paths]

    def as_strings(self) -> List[str]:
        """Paths rendered like the paper's §VI-G listing:
        ``t1—e1—d1—c1—d4—printS``."""
        return ["—".join(path) for path in self.paths]


def _check_endpoints(topology: Topology, requester: str, provider: str) -> None:
    for role, node in (("requester", requester), ("provider", provider)):
        if not topology.has_node(node):
            raise PathDiscoveryError(
                f"{role} {node!r} is not a component of topology "
                f"{topology.name!r}"
            )


def iter_paths_reference(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
) -> Iterator[Path]:
    """The seed DFS: lazily yield all simple requester→provider paths.

    The DFS keeps an *on-path* set — the paper's "path tracking mechanism
    to avoid live-locks within cycles" — so each node appears at most once
    per path.  ``max_depth`` bounds the number of links per path.

    The iteration order is deterministic: neighbors are explored in the
    order links were added to the model.  The compiled engine preserves
    this exact order; the equivalence suite and the benchmarks use this
    function as the seed baseline.
    """
    _check_endpoints(topology, requester, provider)
    if requester == provider:
        yield (requester,)
        return
    limit = max_depth if max_depth is not None else topology.node_count()
    if limit < 1:
        return

    # per-call adjacency memo: the DFS revisits nodes many times and
    # rebuilding neighbor lists from the UML model dominates the profile
    # (the model must not mutate during enumeration anyway)
    adjacency: Dict[str, List[str]] = {}

    def neighbors_of(node_name: str) -> List[str]:
        cached = adjacency.get(node_name)
        if cached is None:
            cached = topology.neighbors(node_name)
            adjacency[node_name] = cached
        return cached

    path: List[str] = [requester]
    on_path: Set[str] = {requester}
    # stack of neighbor iterators, one per path position
    stack: List[Iterator[str]] = [iter(neighbors_of(requester))]
    while stack:
        children = stack[-1]
        node = next(children, None)
        if node is None:
            stack.pop()
            on_path.discard(path.pop())
            continue
        if node in on_path:
            continue  # path tracking: never revisit a node on the current path
        if node == provider:
            yield tuple(path) + (node,)
            continue
        if len(path) >= limit:
            continue
        path.append(node)
        on_path.add(node)
        stack.append(iter(neighbors_of(node)))


def discover_paths_reference(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
    max_paths: Optional[int] = None,
) -> PathSet:
    """Seed-DFS counterpart of :func:`discover_paths` (no compilation,
    no pruning, no memoization) — the benchmark baseline."""
    result = PathSet(requester, provider)
    iterator = iter_paths_reference(
        topology, requester, provider, max_depth=max_depth
    )
    for path in iterator:
        result.paths.append(path)
        if max_paths is not None and len(result.paths) >= max_paths:
            # peek once so the flag truthfully reports whether paths were cut
            if next(iterator, None) is not None:
                result.truncated = True
            break
    return result


def iter_paths(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
) -> Iterator[Path]:
    """Lazily yield all simple requester→provider paths (DFS order).

    Delegates to the compiled engine (:mod:`repro.core.engine`): the DFS
    runs over integer ids with block-cut-tree pruning, in exactly the
    deterministic neighbor order of the seed implementation.
    """
    from repro.core import engine

    return engine.iterate(
        topology, requester, provider, max_depth=max_depth
    )


def discover_paths(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
    max_paths: Optional[int] = None,
) -> PathSet:
    """Enumerate all simple paths between *requester* and *provider*.

    Delegates to the compiled engine, which memoizes the result keyed on
    the topology fingerprint — repeated queries for the same pair on an
    unchanged topology are cache hits.

    Parameters
    ----------
    max_depth:
        Optional bound on links per path.  Unbounded by default.
    max_paths:
        Optional budget on the number of stored paths.  When the budget is
        hit the result is flagged ``truncated=True`` and enumeration stops —
        necessary on dense graphs where the full count is factorial
        (Section V-D).
    """
    from repro.core import engine

    return engine.discover(
        topology,
        requester,
        provider,
        max_depth=max_depth,
        max_paths=max_paths,
    )


def count_paths(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
    budget: Optional[int] = None,
) -> int:
    """Count simple paths without storing them.

    With *budget*, raises :class:`PathDiscoveryError` once the count
    exceeds the budget — the guard rail the scalability benchmarks use on
    the factorial families.
    """
    from repro.core import engine

    return engine.count(
        topology,
        requester,
        provider,
        max_depth=max_depth,
        budget=budget,
    )


def discover_paths_networkx(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
) -> PathSet:
    """Baseline enumerator built on :func:`networkx.all_simple_paths`.

    Produces the same path *set* as :func:`discover_paths` (order may
    differ); the tests assert set equality on every topology family.
    """
    _check_endpoints(topology, requester, provider)
    graph = topology.to_networkx()
    result = PathSet(requester, provider)
    if requester == provider:
        result.paths.append((requester,))
        return result
    cutoff = max_depth if max_depth is not None else topology.node_count()
    for path in nx.all_simple_paths(graph, requester, provider, cutoff=cutoff):
        result.paths.append(tuple(path))
    return result
