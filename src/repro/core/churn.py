"""Live-churn engine: delta-aware recomputation with graceful degradation.

:mod:`repro.core.dynamics` models *planned* changes: one operation, one
full pipeline re-run, caller handles failures.  A live network is not
that polite — links flap in bursts, components crash mid-evaluation, and
the paper's Section V-A3 efficiency claim ("dynamic system changes
[handled] by updating only individual models") only pays off if an event
recomputes *only what it touched*.  This module is that claim under
load:

* :class:`ChurnStream` — a deterministic, seeded generator of churn
  events (link cut/restore/flap, component crash/restore, service
  migration, user move) over a live infrastructure model; the same seed
  always yields the same event sequence, so delta and full-recompile
  runs are comparable event for event.
* :class:`LiveEvaluator` — applies events to the model and re-derives
  path sets + availabilities through the delta path:
  :func:`repro.core.engine.discover_delta_compiled` re-enumerates only
  the biconnected blocks an edge/node change touched (content-addressed
  block cache), and
  :class:`repro.dependability.bdd.IncrementalAvailabilityKernel`
  re-derives only the BDD groups whose path sets changed.
* **Epoch snapshots** — readers always see a consistent
  :class:`EpochSnapshot` (path sets + availabilities computed from one
  model state); a snapshot is swapped in atomically only when its
  recompute finished inside the deadline.
* **Graceful degradation** — a recompute that overruns its per-event
  deadline is abandoned (daemon worker, never adopted) and the evaluator
  keeps serving the last-good epoch *explicitly flagged stale*, with the
  staleness bound (events applied but not reflected, seconds since the
  epoch) surfaced on every read.  While degraded, queued events coalesce
  per edge/entity (last state wins) so one catch-up recompute absorbs a
  whole burst.
* **Poison-event quarantine** — an event whose application fails
  validation, or whose recompute keeps failing after bounded
  retry/backoff, is rolled back (the model returns to the last-good
  state), parked in :attr:`LiveEvaluator.quarantine` and reported; it is
  never fatal and never leaves the model half-mutated.

Thread-safety of abandoned workers: the mutating thread compiles the
topology (CSR arrays + fingerprint — a consistent frozen snapshot) and
snapshots the availability table *before* handing work to the
deadline-bounded worker, so an abandoned worker never reads the live
model and can only populate content-addressed caches with entries that
are correct for the fingerprint they are keyed under.

Every stage emits ``dynamics.*`` trace spans and ``repro_dynamics_*``
metrics through :mod:`repro.obs`; ``upsim churn`` drives the whole loop
from the command line and ``benchmarks/test_bench_churn.py`` pins the
delta-vs-full speedup floor (BENCH_churn.json).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.engine import (
    CompiledTopology,
    _enumerate,
    compile_topology,
    discover_delta_compiled,
)
from repro.core.pathdiscovery import PathSet
from repro.errors import ReproError, TopologyError
from repro.network.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.uml.objects import Link, ObjectModel

__all__ = [
    "ChurnEvent",
    "LinkCut",
    "LinkRestore",
    "LinkFlap",
    "ComponentCrash",
    "ComponentRestore",
    "MigrateProvider",
    "MoveUser",
    "ChurnPolicy",
    "ChurnStream",
    "EpochSnapshot",
    "SnapshotView",
    "QuarantinedEvent",
    "ChurnReport",
    "LiveEvaluator",
]


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------


class ChurnEvent:
    """Base class of live-churn events.

    Unlike the strict operations of :mod:`repro.core.dynamics` (which
    raise on redundant changes), churn events are **state-setting**:
    cutting an already-absent link or restoring a present one is a no-op.
    Coalescing relies on this — after a burst is merged per
    :meth:`coalesce_key` (last event wins), replaying only the survivors
    must land the model in the same state as replaying the full burst.
    """

    def coalesce_key(self) -> Optional[Tuple]:
        """Events sharing a key collapse to the latest one while the
        evaluator is degraded; ``None`` never coalesces."""
        return None

    def apply(self, evaluator: "LiveEvaluator") -> Optional[Callable[[], None]]:
        """Mutate the evaluator's model/pairs; return an undo (or None)."""
        raise NotImplementedError


def _edge_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class LinkCut(ChurnEvent):
    """The link between *a* and *b* goes down (no-op if already down)."""

    a: str
    b: str

    def coalesce_key(self) -> Tuple:
        return ("link", _edge_key(self.a, self.b))

    def apply(self, evaluator: "LiveEvaluator") -> Optional[Callable[[], None]]:
        return evaluator._set_link(self.a, self.b, up=False)


@dataclass(frozen=True)
class LinkRestore(ChurnEvent):
    """The link between *a* and *b* comes back (no-op if already up)."""

    a: str
    b: str

    def coalesce_key(self) -> Tuple:
        return ("link", _edge_key(self.a, self.b))

    def apply(self, evaluator: "LiveEvaluator") -> Optional[Callable[[], None]]:
        return evaluator._set_link(self.a, self.b, up=True)


@dataclass(frozen=True)
class LinkFlap(ChurnEvent):
    """The link bounces: down and back up within one event.

    Net connectivity is unchanged but the link is re-registered (new
    insertion position), so the fingerprint moves and the delta path must
    prove it can revalidate a whole epoch from caches.
    """

    a: str
    b: str

    def coalesce_key(self) -> Tuple:
        return ("link", _edge_key(self.a, self.b))

    def apply(self, evaluator: "LiveEvaluator") -> Optional[Callable[[], None]]:
        undo_cut = evaluator._set_link(self.a, self.b, up=False)
        if undo_cut is None:  # was already down: flap ends with it up
            return evaluator._set_link(self.a, self.b, up=True)
        undo_restore = evaluator._set_link(self.a, self.b, up=True)

        def undo() -> None:
            if undo_restore is not None:
                undo_restore()
            undo_cut()

        return undo


@dataclass(frozen=True)
class ComponentCrash(ChurnEvent):
    """Component *name* fails: it and its incident links leave the model."""

    name: str

    def coalesce_key(self) -> Tuple:
        return ("component", self.name)

    def apply(self, evaluator: "LiveEvaluator") -> Optional[Callable[[], None]]:
        return evaluator._crash(self.name)


@dataclass(frozen=True)
class ComponentRestore(ChurnEvent):
    """A crashed component returns, re-cabled to its surviving neighbors."""

    name: str

    def coalesce_key(self) -> Tuple:
        return ("component", self.name)

    def apply(self, evaluator: "LiveEvaluator") -> Optional[Callable[[], None]]:
        return evaluator._restore(self.name)


@dataclass(frozen=True)
class MigrateProvider(ChurnEvent):
    """Every pair served by *old* is now served by *new* (Section V-A3:
    "migrating a service ... requires updating only the mapping")."""

    old: str
    new: str

    def coalesce_key(self) -> Tuple:
        return ("provider", self.old)

    def apply(self, evaluator: "LiveEvaluator") -> Optional[Callable[[], None]]:
        return evaluator._retarget(self.old, self.new, role=1)


@dataclass(frozen=True)
class MoveUser(ChurnEvent):
    """Every pair requested from *old* is now requested from *new*."""

    old: str
    new: str

    def coalesce_key(self) -> Tuple:
        return ("requester", self.old)

    def apply(self, evaluator: "LiveEvaluator") -> Optional[Callable[[], None]]:
        return evaluator._retarget(self.old, self.new, role=0)


# ---------------------------------------------------------------------------
# policy / snapshots / reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnPolicy:
    """Robustness knobs of the live evaluator.

    ``deadline`` bounds each recompute attempt in seconds (None =
    unbounded); a missed deadline degrades to stale serving instead of
    blocking the event loop.  Recompute *errors* (not timeouts) retry up
    to ``max_retries`` times with exponential backoff
    (``backoff * 2**attempt`` seconds) before the event is quarantined
    and rolled back.  While degraded, up to ``coalesce_window`` events
    are absorbed per edge/entity before the next catch-up attempt.
    ``delta=False`` turns the evaluator into its own full-recompile
    oracle: fresh topology compilation, uncached enumeration and a fresh
    BDD per event — the equivalence baseline for tests and benchmarks.
    ``dimensions`` names extra registered user-perceived dimensions
    (:mod:`repro.dimensions`) to evaluate over each epoch's connected
    pairs; their service-level values land in
    :attr:`EpochSnapshot.dimensions` (empty tuple = availability only,
    no extra work).
    """

    deadline: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.05
    coalesce_window: int = 8
    delta: bool = True
    dimensions: Tuple[str, ...] = ()


@dataclass(frozen=True)
class EpochSnapshot:
    """One internally-consistent result set: every field derives from the
    same model state (identified by ``fingerprint``)."""

    epoch: int
    fingerprint: str
    path_sets: Mapping[Tuple[str, str], PathSet]
    availability: float
    pair_availability: Mapping[Tuple[str, str], float]
    disconnected: Tuple[Tuple[str, str], ...]
    applied_events: int
    created_at: float
    #: Extra user-perceived dimension values (name → service value) for
    #: the epoch's connected pairs, per :attr:`ChurnPolicy.dimensions`;
    #: empty when no extra dimensions were requested or no pair connects.
    dimensions: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SnapshotView:
    """What a reader gets: the last-good epoch plus its staleness bound.

    ``stale`` is True whenever events have been applied to the model that
    the snapshot does not reflect (degraded serving); ``lag_events`` and
    ``age_seconds`` bound the staleness.  The epoch itself is always
    internally consistent — degradation never mixes epochs.
    """

    snapshot: EpochSnapshot
    stale: bool
    lag_events: int
    age_seconds: float


@dataclass(frozen=True)
class QuarantinedEvent:
    """A parked poison event: what failed, how often it was retried, and
    proof the model was rolled back (the evaluator keeps running)."""

    event: ChurnEvent
    error: str
    attempts: int
    rolled_back: bool


@dataclass
class ChurnReport:
    """Tally of one :meth:`LiveEvaluator.run` (all counters cumulative
    over the run, not the evaluator lifetime)."""

    events: int = 0
    applied: int = 0
    coalesced: int = 0
    recomputes: int = 0
    epochs: int = 0
    deadline_misses: int = 0
    retries: int = 0
    quarantined: List[QuarantinedEvent] = field(default_factory=list)
    elapsed: float = 0.0
    final: Optional[SnapshotView] = None

    def to_dict(self) -> Dict[str, object]:
        final = self.final
        return {
            "events": self.events,
            "applied": self.applied,
            "coalesced": self.coalesced,
            "recomputes": self.recomputes,
            "epochs": self.epochs,
            "deadline_misses": self.deadline_misses,
            "retries": self.retries,
            "quarantined": [
                {
                    "event": repr(q.event),
                    "error": q.error,
                    "attempts": q.attempts,
                    "rolled_back": q.rolled_back,
                }
                for q in self.quarantined
            ],
            "elapsed_s": self.elapsed,
            "final": None
            if final is None
            else {
                "epoch": final.snapshot.epoch,
                "availability": final.snapshot.availability,
                "stale": final.stale,
                "lag_events": final.lag_events,
                "age_seconds": final.age_seconds,
                "disconnected": [
                    list(pair) for pair in final.snapshot.disconnected
                ],
                "dimensions": dict(final.snapshot.dimensions),
            },
        }


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

_M_EVENTS = _metrics.counter(
    "repro_dynamics_events_total", "Churn events submitted to live evaluators"
)
_M_COALESCED = _metrics.counter(
    "repro_dynamics_coalesced_total",
    "Churn events absorbed by same-edge coalescing while degraded",
)
_M_RECOMPUTES = _metrics.counter(
    "repro_dynamics_recomputes_total", "Delta recompute attempts"
)
_M_EPOCHS = _metrics.counter(
    "repro_dynamics_epochs_total", "Consistent epochs published"
)
_M_DEADLINE_MISSES = _metrics.counter(
    "repro_dynamics_deadline_misses_total",
    "Recomputes abandoned at the per-event deadline",
)
_M_RETRIES = _metrics.counter(
    "repro_dynamics_retries_total", "Recompute retries after errors"
)
_M_QUARANTINED = _metrics.counter(
    "repro_dynamics_quarantined_total",
    "Poison events parked in quarantine (with model rollback)",
)
_H_RECOMPUTE = _metrics.histogram(
    "repro_dynamics_recompute_seconds",
    "Wall time of successful recomputes",
    buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
)


# ---------------------------------------------------------------------------
# live evaluator
# ---------------------------------------------------------------------------


class _Computed:
    """One recompute's outputs, built entirely from frozen inputs."""

    __slots__ = (
        "path_sets",
        "availability",
        "pair_availability",
        "disconnected",
        "dimensions",
    )

    def __init__(
        self, path_sets, availability, pair_availability, disconnected, dimensions
    ):
        self.path_sets = path_sets
        self.availability = availability
        self.pair_availability = pair_availability
        self.disconnected = disconnected
        self.dimensions = dimensions


class LiveEvaluator:
    """Sustained user-perceived evaluation of a mutating infrastructure.

    *pairs* are the (requester, provider) endpoints under evaluation (the
    mapping's communication pairs).  Events arrive through
    :meth:`submit` / :meth:`run`; readers call :meth:`snapshot` at any
    time and always receive a consistent epoch with an explicit staleness
    bound.  See the module docstring for the degradation/quarantine
    contract.
    """

    def __init__(
        self,
        infrastructure: ObjectModel,
        pairs: Sequence[Tuple[str, str]],
        *,
        policy: Optional[ChurnPolicy] = None,
        reorder: str = "none",
    ):
        if not pairs:
            raise TopologyError("live evaluation requires at least one pair")
        self.model = infrastructure
        self.topology = Topology(infrastructure)
        self.pairs: List[Tuple[str, str]] = [tuple(p) for p in pairs]
        self.policy = policy or ChurnPolicy()
        # deferred import: dependability.bdd imports core.engine, whose
        # package import chain loops back through this module
        from repro.dependability.bdd import IncrementalAvailabilityKernel

        # reorder="sift" sifts the manager at epoch boundaries (fresh
        # build / garbage rebuild) only — in between, the stable order
        # keeps every cached group root valid
        self._kernel = IncrementalAvailabilityKernel(reorder=reorder)
        self._lock = threading.Lock()
        self._snapshot: Optional[EpochSnapshot] = None
        self._epoch = 0
        self._applied = 0
        self._queue: List[ChurnEvent] = []
        self.quarantine: List[QuarantinedEvent] = []
        self.stats = {
            "events": 0,
            "applied": 0,
            "coalesced": 0,
            "recomputes": 0,
            "deadline_misses": 0,
            "retries": 0,
        }
        self._down_links: Dict[Tuple[str, str], Link] = {}
        self._crashed: Dict[str, Tuple[object, List[Link]]] = {}
        # the initial epoch must exist before any event arrives; no
        # deadline — a reader-visible evaluator starts consistent
        self._recompute_unbounded()

    # -- model mutation primitives (state-setting, with undo) ---------------

    def _set_link(self, a: str, b: str, *, up: bool) -> Optional[Callable[[], None]]:
        model = self.model
        for end in (a, b):
            if not model.has_instance(end):
                raise TopologyError(f"component {end!r} not in the network")
        present = model.find_link(a, b) is not None
        key = _edge_key(a, b)
        if up:
            if present:
                return None
            remembered = self._down_links.pop(key, None)
            if remembered is not None:
                model.add_link(
                    remembered.end1,
                    remembered.end2,
                    remembered.association,
                    name=remembered.name,
                )
            else:
                model.add_link(a, b)

            def undo_up() -> None:
                link = self.model.remove_link(a, b)
                self._down_links[key] = link

            return undo_up
        if not present:
            return None
        link = model.remove_link(a, b)
        self._down_links[key] = link

        def undo_down() -> None:
            self._down_links.pop(key, None)
            self.model.add_link(
                link.end1, link.end2, link.association, name=link.name
            )

        return undo_down

    def _crash(self, name: str) -> Optional[Callable[[], None]]:
        if name in self._crashed:
            return None  # already down
        if not self.model.has_instance(name):
            raise TopologyError(f"component {name!r} not in the network")
        if any(name in pair for pair in self.pairs):
            raise TopologyError(
                f"component {name!r} is an evaluation endpoint; crashing it "
                f"would leave pairs without a requester/provider"
            )
        inst, links = self.model.remove_instance(name, cascade=True)
        self._crashed[name] = (inst, links)

        def undo() -> None:
            self._restore(name)

        return undo

    def _restore(self, name: str) -> Optional[Callable[[], None]]:
        entry = self._crashed.pop(name, None)
        if entry is None:
            return None  # never crashed (or already restored)
        inst, links = entry
        self.model.add_existing_instance(inst)
        restored: List[Link] = []
        for link in links:
            other = link.end2.name if link.end1.name == name else link.end1.name
            if self.model.has_instance(other) and (
                self.model.find_link(name, other) is None
            ):
                restored.append(
                    self.model.add_link(
                        link.end1, link.end2, link.association, name=link.name
                    )
                )

        def undo() -> None:
            for link in restored:
                self.model.remove_link(link.end1, link.end2)
            removed_inst, _ = self.model.remove_instance(name)
            self._crashed[name] = (removed_inst, links)

        return undo

    def _retarget(self, old: str, new: str, *, role: int) -> Callable[[], None]:
        if not self.model.has_instance(new):
            raise TopologyError(f"component {new!r} not in the network")
        if not any(pair[role] == old for pair in self.pairs):
            what = "provider" if role else "requester"
            raise TopologyError(f"{old!r} is not a {what} of any pair")
        before = list(self.pairs)
        self.pairs = [
            (new, p[1]) if role == 0 and p[0] == old
            else (p[0], new) if role == 1 and p[1] == old
            else p
            for p in self.pairs
        ]

        def undo() -> None:
            self.pairs = before

        return undo

    # -- recompute -----------------------------------------------------------

    def _prepare(self) -> Tuple[CompiledTopology, Dict[str, float], Tuple[Tuple[str, str], ...]]:
        """Freeze everything a worker needs, on the mutating thread."""
        # deferred: analysis.transformations imports core.pathdiscovery,
        # which would close an import cycle through repro.core.__init__
        from repro.analysis.transformations import component_availabilities

        if self.policy.delta:
            compiled = compile_topology(self.topology)
        else:
            # full-recompile oracle: pay compilation from scratch
            compiled = CompiledTopology.from_topology(self.topology)
        availabilities = component_availabilities(self.model)
        return compiled, availabilities, tuple(self.pairs)

    def _compute(
        self,
        compiled: CompiledTopology,
        availabilities: Mapping[str, float],
        pairs: Tuple[Tuple[str, str], ...],
    ) -> _Computed:
        """The worker body: frozen inputs only — never the live model."""
        # deferred imports: see __init__
        from repro.dependability.bdd import compile_structure
        from repro.dependability.cutsets import path_components

        delta = self.policy.delta
        path_sets: Dict[Tuple[str, str], PathSet] = {}
        for pair in dict.fromkeys(pairs):
            requester, provider = pair
            if delta:
                path_sets[pair] = discover_delta_compiled(
                    compiled, requester, provider
                )
            else:
                path_sets[pair] = _enumerate(
                    compiled, requester, provider, None, None
                )
        # distinct unordered pairs, as in the pipeline (repeated pairs
        # describe the same connectivity event — count once)
        distinct: Dict[Tuple[str, str], PathSet] = {}
        for pair, ps in path_sets.items():
            key = tuple(sorted(pair))
            distinct.setdefault(key, ps)
        groups: List[List] = []
        group_keys: List[Tuple[str, str]] = []
        disconnected: List[Tuple[str, str]] = []
        for key, ps in distinct.items():
            if not ps.paths:
                disconnected.append(key)
                continue
            groups.append(
                [path_components(path) for path in ps.paths]
            )
            group_keys.append(key)
        pair_availability: Dict[Tuple[str, str], float] = {
            key: 0.0 for key in disconnected
        }
        system = 0.0 if disconnected else 1.0
        if groups:
            if delta:
                kernel = self._kernel.recompile(
                    groups, order_hint=self._order_hint(compiled, groups)
                )
            else:
                kernel = compile_structure(groups, use_cache=False)
            vector = np.array(
                [availabilities.get(v, 0.0) for v in kernel.variables],
                dtype=np.float64,
            )
            sys_av, group_avs = kernel.evaluate_vector(vector)
            if not disconnected:
                system = sys_av
            for key, value in zip(group_keys, group_avs):
                pair_availability[key] = value
        full_pair = {
            pair: pair_availability[tuple(sorted(pair))] for pair in path_sets
        }
        dimension_values: Dict[str, float] = {}
        if self.policy.dimensions and groups:
            # deferred import: repro.dimensions pulls in the analysis
            # layer, closing a cycle through repro.core.__init__
            from repro.dimensions import evaluate_dimensions

            members = {c for group in groups for path in group for c in path}
            report = evaluate_dimensions(
                groups,
                list(self.policy.dimensions),
                annotations={
                    "availability": {
                        c: availabilities.get(c, 0.0) for c in members
                    }
                },
            )
            dimension_values = {value.name: value.value for value in report}
        return _Computed(
            path_sets,
            system,
            full_pair,
            tuple(sorted(disconnected)),
            dimension_values,
        )

    @staticmethod
    def _order_hint(
        compiled: CompiledTopology, groups: Sequence[Sequence[frozenset]]
    ) -> Tuple[str, ...]:
        """:func:`repro.dependability.bdd.order_from_topology` from the
        frozen compiled view (the live variant reads the model)."""
        components = {c for group in groups for path in group for c in path}
        index = compiled.index
        n = compiled.n

        def key(name: str) -> Tuple[int, int, int, str]:
            node_id = index.get(name)
            if node_id is not None:
                return (node_id, 0, -1, name)
            if "|" in name:
                a, b = name.split("|", 1)
                ia, ib = index.get(a), index.get(b)
                if ia is not None and ib is not None:
                    low, high = sorted((ia, ib))
                    return (low, 1, high, name)
            return (n, 2, 0, name)

        return tuple(sorted(components, key=key))

    def _adopt(self, compiled: CompiledTopology, computed: _Computed) -> None:
        with self._lock:
            self._epoch += 1
            self._snapshot = EpochSnapshot(
                epoch=self._epoch,
                fingerprint=compiled.fingerprint,
                path_sets=computed.path_sets,
                availability=computed.availability,
                pair_availability=computed.pair_availability,
                disconnected=computed.disconnected,
                applied_events=self._applied,
                created_at=time.monotonic(),
                dimensions=computed.dimensions,
            )
        _M_EPOCHS.inc()

    def _recompute_unbounded(self) -> None:
        compiled, availabilities, pairs = self._prepare()
        self._adopt(compiled, self._compute(compiled, availabilities, pairs))

    def _try_recompute(self) -> Tuple[bool, Optional[BaseException]]:
        """One deadline-bounded, retry-wrapped recompute attempt.

        Returns ``(adopted, last_error)``: ``(True, None)`` on success,
        ``(False, None)`` on a deadline miss (degraded serving), and
        ``(False, error)`` when every retry failed (caller quarantines).
        """
        policy = self.policy
        self.stats["recomputes"] += 1
        _M_RECOMPUTES.inc()
        with _trace.span(
            "dynamics.recompute",
            deadline=policy.deadline or 0.0,
            delta=policy.delta,
        ) as span:
            last_error: Optional[BaseException] = None
            for attempt in range(policy.max_retries + 1):
                if attempt:
                    self.stats["retries"] += 1
                    _M_RETRIES.inc()
                    time.sleep(policy.backoff * (2 ** (attempt - 1)))
                compiled, availabilities, pairs = self._prepare()
                started = time.monotonic()
                if policy.deadline is None:
                    try:
                        computed = self._compute(compiled, availabilities, pairs)
                    except Exception as exc:  # noqa: BLE001 - quarantined
                        last_error = exc
                        continue
                else:
                    box: Dict[str, object] = {}

                    def work(c=compiled, a=availabilities, p=pairs) -> None:
                        try:
                            box["result"] = self._compute(c, a, p)
                        except Exception as exc:  # noqa: BLE001
                            box["error"] = exc

                    worker = threading.Thread(target=work, daemon=True)
                    worker.start()
                    worker.join(policy.deadline)
                    if worker.is_alive():
                        # abandoned: the worker only holds frozen inputs,
                        # its (content-addressed) cache writes stay valid
                        self.stats["deadline_misses"] += 1
                        _M_DEADLINE_MISSES.inc()
                        span.set(outcome="deadline")
                        return False, None
                    error = box.get("error")
                    if error is not None:
                        last_error = error  # type: ignore[assignment]
                        continue
                    computed = box["result"]  # type: ignore[assignment]
                self._adopt(compiled, computed)
                _H_RECOMPUTE.observe(time.monotonic() - started)
                span.set(outcome="epoch", epoch=self._epoch, attempts=attempt + 1)
                return True, None
            span.set(outcome="error", attempts=policy.max_retries + 1)
            return False, last_error

    # -- event intake --------------------------------------------------------

    def submit(self, event: ChurnEvent) -> None:
        """Queue one event (processed by the next :meth:`pump`)."""
        self.stats["events"] += 1
        _M_EVENTS.inc()
        self._queue.append(event)

    def _coalesce(self) -> List[ChurnEvent]:
        """Drain the queue, keeping only the last event per coalesce key
        (in last-occurrence order); keyless events all survive."""
        drained, self._queue = self._queue, []
        survivors: "Dict[object, ChurnEvent]" = {}
        unkeyed = 0
        for event in drained:
            key = event.coalesce_key()
            if key is None:
                unkeyed += 1
                survivors[("unkeyed", unkeyed)] = event
            else:
                survivors.pop(key, None)  # re-insert at the back
                survivors[key] = event
        merged = len(drained) - len(survivors)
        if merged:
            self.stats["coalesced"] += merged
            _M_COALESCED.inc(merged)
        return list(survivors.values())

    def pump(self) -> bool:
        """Apply the (coalesced) queue, then attempt one recompute.

        Returns True when a fresh epoch was adopted; False when the
        evaluator is serving stale (deadline miss) or the queue only held
        poison events.  Never raises on event failures — poison events
        are quarantined with rollback.
        """
        events = self._coalesce()
        applied: List[Tuple[ChurnEvent, Optional[Callable[[], None]]]] = []
        for event in events:
            with _trace.span(
                "dynamics.event", kind=type(event).__name__
            ) as span:
                try:
                    undo = event.apply(self)
                except ReproError as exc:
                    # validation poison: apply is atomic, nothing to undo
                    self._quarantine(event, exc, attempts=1, rolled_back=True)
                    span.set(outcome="quarantined")
                    continue
                self._applied += 1
                self.stats["applied"] += 1
                applied.append((event, undo))
                span.set(outcome="applied")
        if not applied:
            # model unchanged; only recompute if a previous miss left us
            # behind (opportunistic catch-up), otherwise stay fresh
            if not self.snapshot().stale:
                return True
        adopted, error = self._try_recompute()
        if adopted:
            return True
        if error is not None:
            self._rollback_batch(applied, error)
        return False

    def _rollback_batch(
        self,
        applied: List[Tuple[ChurnEvent, Optional[Callable[[], None]]]],
        error: BaseException,
    ) -> None:
        """Every retry failed: restore the last-good model state.

        The recompute evaluated the batch's *combined* effect, so there
        is no per-event blame — the whole batch is quarantined and undone
        in reverse order (rare: recompute errors are injected faults or
        genuine engine bugs, not normal churn).  After the rollback the
        model matches the served epoch again, so staleness clears.
        """
        for _, undo in reversed(applied):
            if undo is not None:
                undo()
        with self._lock:
            self._applied -= len(applied)
        for event, _ in applied:
            self._quarantine(
                event,
                error,
                attempts=self.policy.max_retries + 1,
                rolled_back=True,
            )

    def _quarantine(
        self,
        event: ChurnEvent,
        error: BaseException,
        *,
        attempts: int,
        rolled_back: bool,
    ) -> None:
        self.quarantine.append(
            QuarantinedEvent(
                event=event,
                error=f"{type(error).__name__}: {error}",
                attempts=attempts,
                rolled_back=rolled_back,
            )
        )
        _M_QUARANTINED.inc()

    # -- reads ---------------------------------------------------------------

    def snapshot(self) -> SnapshotView:
        """The last-good epoch plus its staleness bound (never blocks on
        an in-flight recompute, never mixes epochs)."""
        with self._lock:
            snap = self._snapshot
            applied = self._applied
        assert snap is not None  # constructor publishes epoch 1
        lag = applied - snap.applied_events
        return SnapshotView(
            snapshot=snap,
            stale=lag > 0,
            lag_events=lag,
            age_seconds=time.monotonic() - snap.created_at,
        )

    @property
    def stale(self) -> bool:
        return self.snapshot().stale

    # -- driving -------------------------------------------------------------

    def run(
        self,
        events: Iterable[ChurnEvent],
        *,
        catch_up: bool = True,
    ) -> ChurnReport:
        """Drive a whole event stream through the evaluator.

        Healthy steady state processes one event per recompute.  After a
        deadline miss the evaluator degrades: it keeps *applying* events
        (so the model is current) but batches recompute attempts every
        ``policy.coalesce_window`` events, letting same-edge bursts
        coalesce; each attempt that succeeds ends degradation.  With
        *catch_up* (default) a final unbounded recompute guarantees the
        returned snapshot is fresh — benchmarks and equivalence tests
        rely on that.
        """
        report = ChurnReport()
        base = dict(self.stats)
        base_quarantined = len(self.quarantine)
        base_epoch = self._epoch
        started = time.monotonic()
        degraded = False
        pending = 0
        with _trace.span("dynamics.run", delta=self.policy.delta):
            for event in events:
                report.events += 1
                self.submit(event)
                pending += 1
                if degraded and pending < self.policy.coalesce_window:
                    continue
                fresh = self.pump()
                pending = 0
                degraded = not fresh and self.snapshot().stale
            if self._queue:
                self.pump()
            if catch_up and self.snapshot().stale:
                with _trace.span("dynamics.catch_up"):
                    self.stats["recomputes"] += 1
                    _M_RECOMPUTES.inc()
                    self._recompute_unbounded()
        report.applied = self.stats["applied"] - base["applied"]
        report.coalesced = self.stats["coalesced"] - base["coalesced"]
        report.recomputes = self.stats["recomputes"] - base["recomputes"]
        report.deadline_misses = (
            self.stats["deadline_misses"] - base["deadline_misses"]
        )
        report.retries = self.stats["retries"] - base["retries"]
        report.quarantined = self.quarantine[base_quarantined:]
        report.epochs = self._epoch - base_epoch
        report.elapsed = time.monotonic() - started
        report.final = self.snapshot()
        return report


# ---------------------------------------------------------------------------
# deterministic event streams
# ---------------------------------------------------------------------------


class ChurnStream:
    """Seeded, deterministic churn-event generator over a model.

    The stream tracks its *own* mirror of link/component state (it never
    reads the evaluator), so the same seed yields the identical event
    sequence no matter how the consumer fares — the property the
    delta-vs-oracle equivalence tests depend on.  Generated events are
    always sensible with respect to the mirror: links are cut only while
    up, restored only while down, components crash only while alive, and
    evaluation endpoints are never crashed.
    """

    #: relative weights of (cut, restore, flap, crash, restore-component,
    #: migrate, move).  Repair outweighs damage so a sustained stream
    #: settles into a mostly-healthy network (~20% degraded) rather than
    #: grinding everything down to disconnection
    DEFAULT_WEIGHTS = (1.5, 6.0, 4.0, 0.5, 2.0, 0.5, 0.5)

    def __init__(
        self,
        model: ObjectModel,
        pairs: Sequence[Tuple[str, str]],
        *,
        seed: int = 0,
        weights: Optional[Sequence[float]] = None,
        mobility: bool = False,
    ):
        self._rng = np.random.default_rng(seed)
        self._pairs = [tuple(p) for p in pairs]
        self._protected = {name for pair in self._pairs for name in pair}
        self._up: List[Tuple[str, str]] = sorted(
            _edge_key(link.end1.name, link.end2.name) for link in model.links
        )
        self._down: List[Tuple[str, str]] = []
        self._alive: List[str] = sorted(
            inst.name
            for inst in model.instances
            if inst.name not in self._protected
        )
        self._crashed: List[str] = []
        self._mobility = mobility
        weights = tuple(
            weights if weights is not None else self.DEFAULT_WEIGHTS
        )
        if len(weights) != 7:
            raise TopologyError(
                f"churn weights must have 7 entries, got {len(weights)}"
            )
        if not mobility:
            weights = weights[:5] + (0.0, 0.0)
        total = float(sum(weights))
        if total <= 0:
            raise TopologyError("churn weights must not all be zero")
        self._weights = np.asarray(weights, dtype=np.float64) / total

    def _pick(self, items: List) -> object:
        return items[int(self._rng.integers(len(items)))]

    def _link_endpoints(self, edge: Tuple[str, str]) -> bool:
        """Is either endpoint of *edge* currently crashed in the mirror?"""
        crashed = set(self._crashed)
        return edge[0] in crashed or edge[1] in crashed

    def events(self, n: int) -> Iterator[ChurnEvent]:
        """Yield *n* deterministic events."""
        for _ in range(n):
            yield self._next()

    def __iter__(self) -> Iterator[ChurnEvent]:  # endless
        while True:
            yield self._next()

    def _next(self) -> ChurnEvent:
        for _ in range(64):  # resample when a kind has no candidates
            kind = int(self._rng.choice(7, p=self._weights))
            event = self._emit(kind)
            if event is not None:
                return event
        # pathological mirrors (everything down) fall back to a restore
        if self._down:
            return self._emit(1)  # type: ignore[return-value]
        raise TopologyError("churn stream has no applicable events")

    def _emit(self, kind: int) -> Optional[ChurnEvent]:
        if kind == 0:  # cut
            candidates = [e for e in self._up if not self._link_endpoints(e)]
            if not candidates:
                return None
            edge = self._pick(candidates)
            self._up.remove(edge)
            self._down.append(edge)
            return LinkCut(*edge)
        if kind == 1:  # restore link
            candidates = [e for e in self._down if not self._link_endpoints(e)]
            if not candidates:
                return None
            edge = self._pick(candidates)
            self._down.remove(edge)
            self._up.append(edge)
            return LinkRestore(*edge)
        if kind == 2:  # flap (state unchanged)
            candidates = [e for e in self._up if not self._link_endpoints(e)]
            if not candidates:
                return None
            return LinkFlap(*self._pick(candidates))
        if kind == 3:  # crash
            if not self._alive:
                return None
            name = self._pick(self._alive)
            self._alive.remove(name)
            self._crashed.append(name)
            # incident links leave the model with the component
            gone = [e for e in self._up if name in e]
            for edge in gone:
                self._up.remove(edge)
                self._down.append(edge)
            return ComponentCrash(name)
        if kind == 4:  # restore component
            if not self._crashed:
                return None
            name = self._pick(self._crashed)
            self._crashed.remove(name)
            self._alive.append(name)
            back = [
                e
                for e in self._down
                if name in e and not self._link_endpoints(e)
            ]
            for edge in back:
                self._down.remove(edge)
                self._up.append(edge)
            return ComponentRestore(name)
        if kind == 5:  # migrate provider
            providers = sorted({p for _, p in self._pairs})
            targets = [n for n in self._alive if n not in self._protected]
            if not providers or not targets:
                return None
            old = self._pick(providers)
            new = self._pick(targets)
            self._pairs = [
                (r, new) if p == old else (r, p) for r, p in self._pairs
            ]
            self._protected = {n for pair in self._pairs for n in pair}
            return MigrateProvider(old, new)  # type: ignore[arg-type]
        # kind == 6: move user
        requesters = sorted({r for r, _ in self._pairs})
        targets = [n for n in self._alive if n not in self._protected]
        if not requesters or not targets:
            return None
        old = self._pick(requesters)
        new = self._pick(targets)
        self._pairs = [
            (new, p) if r == old else (r, p) for r, p in self._pairs
        ]
        self._protected = {n for pair in self._pairs for n in pair}
        return MoveUser(old, new)  # type: ignore[arg-type]
