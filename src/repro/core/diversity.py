"""Path-diversity metrics for a requester/provider pair.

The UPSIM keeps "all redundant paths between requester and provider"; how
much that redundancy is actually worth depends on *disjointness* — two
paths sharing a node still die together when that node fails.  This
module quantifies the diversity of a pair:

* :func:`node_connectivity` / :func:`edge_connectivity` — the number of
  node-/edge-disjoint paths (Menger), i.e. how many independent failures
  the pair survives;
* :func:`shared_components` — the components on *every* path: exactly the
  order-1 cut sets, the single points of failure;
* :func:`diversity_report` — the combined view used by the examples.

All metrics operate on any :class:`~repro.network.topology.Topology`, so
they apply equally to the full infrastructure and to a generated UPSIM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from repro.core.pathdiscovery import PathSet, discover_paths
from repro.errors import PathDiscoveryError
from repro.network.topology import Topology

__all__ = [
    "node_connectivity",
    "edge_connectivity",
    "shared_components",
    "DiversityReport",
    "diversity_report",
]


def _check(topology: Topology, requester: str, provider: str) -> None:
    for role, node in (("requester", requester), ("provider", provider)):
        if not topology.has_node(node):
            raise PathDiscoveryError(
                f"{role} {node!r} is not a component of topology "
                f"{topology.name!r}"
            )
    if requester == provider:
        raise PathDiscoveryError(
            "diversity metrics need two distinct endpoints"
        )


def node_connectivity(topology: Topology, requester: str, provider: str) -> int:
    """Maximum number of internally node-disjoint requester→provider paths.

    By Menger's theorem this equals the minimum number of *intermediate*
    node failures that disconnect the pair.  0 means disconnected.
    """
    _check(topology, requester, provider)
    graph = topology.to_networkx()
    if not nx.has_path(graph, requester, provider):
        return 0
    if graph.has_edge(requester, provider):
        # direct link: connectivity via the remaining graph + 1
        reduced = graph.copy()
        reduced.remove_edge(requester, provider)
        if not nx.has_path(reduced, requester, provider):
            return 1
        return 1 + nx.node_connectivity(reduced, requester, provider)
    return nx.node_connectivity(graph, requester, provider)


def edge_connectivity(topology: Topology, requester: str, provider: str) -> int:
    """Maximum number of edge-disjoint paths (minimum link cut)."""
    _check(topology, requester, provider)
    graph = topology.to_networkx()
    if not nx.has_path(graph, requester, provider):
        return 0
    return nx.edge_connectivity(graph, requester, provider)


def shared_components(
    path_set: PathSet, *, include_endpoints: bool = False
) -> Set[str]:
    """Nodes present on every discovered path — the single points of
    failure of the pair (endpoints excluded by default: they are trivially
    on every path)."""
    if not path_set:
        raise PathDiscoveryError(
            f"pair ({path_set.requester!r}, {path_set.provider!r}) has no paths"
        )
    shared: Set[str] = set(path_set.paths[0])
    for path in path_set.paths[1:]:
        shared &= set(path)
    if not include_endpoints:
        shared -= {path_set.requester, path_set.provider}
    return shared


@dataclass(frozen=True)
class DiversityReport:
    """Redundancy profile of one requester/provider pair."""

    requester: str
    provider: str
    path_count: int
    node_disjoint_paths: int
    edge_disjoint_paths: int
    single_points_of_failure: Tuple[str, ...]
    shortest_hops: int
    longest_hops: int

    @property
    def survives_any_single_node_failure(self) -> bool:
        """True iff no intermediate node is shared by all paths."""
        return self.node_disjoint_paths >= 2

    @property
    def redundancy_ratio(self) -> float:
        """Disjoint paths per discovered path: 1.0 = fully diverse."""
        if self.path_count == 0:
            return 0.0
        return self.node_disjoint_paths / self.path_count


def diversity_report(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_paths: Optional[int] = None,
) -> DiversityReport:
    """Compute the full diversity profile of a pair."""
    path_set = discover_paths(topology, requester, provider, max_paths=max_paths)
    if not path_set:
        raise PathDiscoveryError(
            f"no path between {requester!r} and {provider!r}"
        )
    return DiversityReport(
        requester=requester,
        provider=provider,
        path_count=path_set.count,
        node_disjoint_paths=node_connectivity(topology, requester, provider),
        edge_disjoint_paths=edge_connectivity(topology, requester, provider),
        single_points_of_failure=tuple(sorted(shared_components(path_set))),
        shortest_hops=len(path_set.shortest()) - 1,
        longest_hops=len(path_set.longest()) - 1,
    )
