"""High-performance path-discovery engine (compiled topologies + memoization).

Path discovery is the computational heart of the methodology (Section V-D:
DFS over all simple paths, worst case O(n!)), and every downstream product
— UPSIM generation, availability analysis, what-if sweeps — re-runs it.
The seed implementation walks a string-keyed, read-through UML view; this
module makes repeated discovery 10-100x cheaper on realistic topologies
*without changing results*:

* :class:`CompiledTopology` — a frozen integer-ID view of a
  :class:`~repro.network.topology.Topology`: CSR adjacency arrays
  (``indptr``/``indices``), name<->id tables, and a content *fingerprint*
  (hash over nodes + links) used as the cache key.  Compilation is
  O(V + E) and is reused while the fingerprint is unchanged.
* **Structural pruning** — before the DFS runs, the search space is
  restricted to nodes that can lie on *some* simple requester->provider
  path, via the biconnected-component / block-cut-tree decomposition
  (computed once per compiled topology, reused across all pairs).  Real
  networks are dominated by tree-like peripheries (Section V-D); the
  block-cut tree collapses them so the DFS never descends into dead-end
  client subtrees.
* **Bitmask visited tracking** — the DFS runs over integer ids with
  bytearray on-path/allowed flags instead of per-step string-set
  operations, preserving the seed's deterministic neighbor order (links
  in model insertion order), so the emitted path sequence is identical.
* **PathSet memoization** — an LRU cache keyed on ``(fingerprint,
  requester, provider, max_depth, max_paths)``.  Dynamicity scenarios
  (user mobility, migration, what-if sweeps) that revisit pairs hit the
  cache; any topology mutation changes the fingerprint, which invalidates
  every memoized result for the old topology.
* :func:`discover_many` — batch discovery for independent mapping pairs
  with optional thread fan-out (``jobs=``); the serial default and the
  keyed result dict preserve deterministic ordering of stored results.

The public enumerators in :mod:`repro.core.pathdiscovery` delegate here;
``discover_paths_networkx`` remains the independent cross-check oracle.

Pruning soundness (see also ``docs/performance.md``): a vertex *w* lies
on some simple s-t path iff *w* belongs to a biconnected block on the
unique block-cut-tree path between s and t.  Necessity: any s-t path
must cross the cut vertices on that tree path in order, and a detour
into a side block would have to re-enter through the same cut vertex,
violating simplicity.  Sufficiency: within a biconnected block any
third vertex lies on some path between the block's entry and exit
vertices (a standard consequence of Menger's theorem).  Restricting the
DFS to that vertex union therefore removes no path and adds none.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from itertools import product
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import store as _store
from repro.errors import PathDiscoveryError, StoreError
from repro.network.topology import Topology
from repro.core.pathdiscovery import Path, PathSet, _check_endpoints
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "CompiledTopology",
    "compile_topology",
    "discover",
    "count",
    "iterate",
    "discover_many",
    "discover_delta",
    "discover_delta_compiled",
    "discover_many_delta",
    "path_cache_info",
    "path_cache_clear",
    "block_cache_info",
    "block_cache_clear",
    "engine_stats",
    "reset_engine_stats",
]


# ---------------------------------------------------------------------------
# compiled topology
# ---------------------------------------------------------------------------


class _Replay:
    """A re-iterable view over a one-shot iterator.

    The first pass pulls from the underlying iterator and memoizes;
    later passes replay the memo (extending it on demand).  This lets
    the block-product enumeration consume each block's path list many
    times while enumerating it at most once — and only as far as the
    consumer actually advances, preserving laziness.
    """

    __slots__ = ("_source", "_memo", "_exhausted")

    def __init__(self, source: Iterator[Tuple[str, ...]]):
        self._source = source
        self._memo: List[Tuple[str, ...]] = []
        self._exhausted = False

    def __iter__(self) -> Iterator[Tuple[str, ...]]:
        if self._exhausted:
            return iter(self._memo)  # C-speed list iteration
        return self._iter_filling()

    def _iter_filling(self) -> Iterator[Tuple[str, ...]]:
        memo = self._memo
        i = 0
        while True:
            if i < len(memo):
                yield memo[i]
            elif self._exhausted:
                return
            else:
                try:
                    value = next(self._source)
                except StopIteration:
                    self._exhausted = True
                    return
                memo.append(value)
                yield value
            i += 1


class CompiledTopology:
    """A frozen integer-ID CSR view of a topology, plus its block-cut tree.

    ``names[i]`` is the instance name of node *i*; ``index`` maps names
    back to ids.  ``indices[indptr[i]:indptr[i + 1]]`` are the neighbors
    of node *i* in link insertion order — exactly the order the seed DFS
    explored, so enumeration order is preserved.  The biconnected
    structure is computed lazily on first use and shared by all queries.
    """

    __slots__ = (
        "fingerprint",
        "names",
        "index",
        "indptr",
        "indices",
        "n",
        "_lock",
        "_blocks",
        "_vertex_blocks",
        "_is_cut",
        "_comp",
        "_tree_adj",
        "_np_indptr",
        "_np_indices",
    )

    def __init__(
        self,
        fingerprint: str,
        names: Tuple[str, ...],
        indptr: List[int],
        indices: List[int],
    ):
        self.fingerprint = fingerprint
        self.names = names
        self.index = {name: i for i, name in enumerate(names)}
        self.indptr = indptr
        self.indices = indices
        self.n = len(names)
        self._lock = threading.Lock()
        self._blocks: Optional[List[List[int]]] = None
        self._vertex_blocks: Optional[List[List[int]]] = None
        self._is_cut: Optional[bytearray] = None
        self._comp: Optional[List[int]] = None
        self._tree_adj: Optional[List[List[int]]] = None
        self._np_indptr: Optional[np.ndarray] = None
        self._np_indices: Optional[np.ndarray] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_topology(
        cls, topology: Topology, fingerprint: Optional[str] = None
    ) -> "CompiledTopology":
        if fingerprint is None:
            fingerprint = topology.fingerprint()
        names = tuple(topology.nodes())
        index = {name: i for i, name in enumerate(names)}
        indptr: List[int] = [0]
        indices: List[int] = []
        for name in names:
            for neighbor in topology.neighbors(name):
                indices.append(index[neighbor])
            indptr.append(len(indices))
        return cls(fingerprint, names, indptr, indices)

    @classmethod
    def from_arrays(
        cls,
        fingerprint: str,
        names: Tuple[str, ...],
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> "CompiledTopology":
        """Rehydrate a compiled topology from stored CSR arrays.

        The hot DFS loops index ``indptr``/``indices`` element-wise, where
        plain Python lists beat ndarray scalar indexing, so the arrays
        are expanded once here; the original (typically mmap-backed,
        read-only) views are kept for :meth:`csr_arrays`.
        """
        compiled = cls(fingerprint, names, indptr.tolist(), indices.tolist())
        compiled._np_indptr = indptr
        compiled._np_indices = indices
        return compiled

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The CSR adjacency as read-only ``(indptr, indices)`` int64
        views — the persistable shape of the compiled topology.  Store-
        loaded topologies return the zero-copy mmap views; freshly
        compiled ones materialize (and cache) frozen copies, so callers
        can never corrupt the shared compiled structure in place."""
        if self._np_indptr is None or self._np_indices is None:
            with self._lock:
                if self._np_indptr is None or self._np_indices is None:
                    indptr = np.array(self.indptr, dtype=np.int64)
                    indices = np.array(self.indices, dtype=np.int64)
                    indptr.flags.writeable = False
                    indices.flags.writeable = False
                    self._np_indptr = indptr
                    self._np_indices = indices
        return self._np_indptr, self._np_indices

    def node_id(self, name: str) -> int:
        try:
            return self.index[name]
        except KeyError:
            raise PathDiscoveryError(
                f"{name!r} is not a component of the compiled topology"
            ) from None

    def neighbors_of(self, node: int) -> Sequence[int]:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    # -- block-cut structure -------------------------------------------------

    def ensure_structure(self) -> None:
        """Compute the biconnected decomposition once (thread-safe)."""
        if self._blocks is not None:
            return
        with self._lock:
            if self._blocks is None:
                self._compute_structure()

    def _compute_structure(self) -> None:
        """Iterative Hopcroft-Tarjan biconnected components + block-cut tree."""
        n = self.n
        indptr, indices = self.indptr, self.indices
        disc = [0] * n  # 0 = unvisited; discovery times start at 1
        low = [0] * n
        parent = [-1] * n
        parent_edge_skipped = bytearray(n)
        comp = [-1] * n
        is_cut = bytearray(n)
        blocks: List[List[int]] = []
        vertex_blocks: List[List[int]] = [[] for _ in range(n)]
        timer = 1
        for root in range(n):
            if disc[root]:
                continue
            comp[root] = root
            root_children = 0
            edge_stack: List[Tuple[int, int]] = []
            disc[root] = low[root] = timer
            timer += 1
            stack: List[List[int]] = [[root, indptr[root]]]
            while stack:
                frame = stack[-1]
                u, ptr = frame
                if ptr < indptr[u + 1]:
                    frame[1] = ptr + 1
                    v = indices[ptr]
                    if v == u:
                        continue  # self-loops never extend a simple path
                    if not disc[v]:
                        parent[v] = u
                        comp[v] = root
                        edge_stack.append((u, v))
                        disc[v] = low[v] = timer
                        timer += 1
                        if u == root:
                            root_children += 1
                        stack.append([v, indptr[v]])
                    else:
                        if v == parent[u] and not parent_edge_skipped[u]:
                            # the tree edge itself; a *second* u-v link is a
                            # genuine cycle and falls through as a back edge
                            parent_edge_skipped[u] = 1
                            continue
                        if disc[v] < disc[u]:
                            edge_stack.append((u, v))
                            if disc[v] < low[u]:
                                low[u] = disc[v]
                else:
                    stack.pop()
                    if not stack:
                        continue
                    p = stack[-1][0]
                    if low[u] < low[p]:
                        low[p] = low[u]
                    if low[u] >= disc[p]:
                        # edges down to (p, u) form one biconnected block
                        members = set()
                        while edge_stack:
                            a, b = edge_stack.pop()
                            members.add(a)
                            members.add(b)
                            if a == p and b == u:
                                break
                        bid = len(blocks)
                        blocks.append(sorted(members))
                        for w in blocks[bid]:
                            vertex_blocks[w].append(bid)
                        if p != root:
                            is_cut[p] = 1
            if root_children >= 2:
                is_cut[root] = 1
        # block-cut tree: nodes are blocks [0, B) and cut vertices B + v
        n_blocks = len(blocks)
        tree_adj: List[List[int]] = [[] for _ in range(n_blocks + n)]
        for bid, members in enumerate(blocks):
            for w in members:
                if is_cut[w]:
                    tree_adj[bid].append(n_blocks + w)
                    tree_adj[n_blocks + w].append(bid)
        self._vertex_blocks = vertex_blocks
        self._is_cut = is_cut
        self._comp = comp
        self._tree_adj = tree_adj
        self._blocks = blocks

    @property
    def blocks(self) -> List[List[int]]:
        self.ensure_structure()
        assert self._blocks is not None
        return self._blocks

    def articulation_points(self) -> List[str]:
        """Cut-vertex names, for cross-checks against the network layer."""
        self.ensure_structure()
        assert self._is_cut is not None
        return [self.names[i] for i in range(self.n) if self._is_cut[i]]

    def relevant_mask(self, s: int, t: int) -> Optional[bytearray]:
        """Mask of vertices that can lie on some simple s-t path.

        Returns ``None`` when no s-t path exists at all (different
        connected components), which lets callers skip the DFS entirely.
        """
        self.ensure_structure()
        assert (
            self._blocks is not None
            and self._vertex_blocks is not None
            and self._is_cut is not None
            and self._comp is not None
            and self._tree_adj is not None
        )
        if s == t:
            mask = bytearray(self.n)
            mask[s] = 1
            return mask
        if self._comp[s] != self._comp[t]:
            return None
        n_blocks = len(self._blocks)

        def tree_node(v: int) -> Optional[int]:
            if self._is_cut[v]:
                return n_blocks + v
            vb = self._vertex_blocks[v]
            return vb[0] if vb else None

        s_node = tree_node(s)
        t_node = tree_node(t)
        if s_node is None or t_node is None:
            return None  # an edgeless vertex reaches nothing but itself
        mask = bytearray(self.n)
        if s_node == t_node:
            for w in self._blocks[s_node]:
                mask[w] = 1
            return mask
        path = self._tree_path(s_node, t_node)
        if path is None:
            return None  # unreachable within the component (defensive)
        for node in path:
            if node < n_blocks:
                for w in self._blocks[node]:
                    mask[w] = 1
        mask[s] = 1
        mask[t] = 1
        return mask

    def _tree_path(self, s_node: int, t_node: int) -> Optional[List[int]]:
        """Ordered node sequence from *s_node* to *t_node* on the
        block-cut tree (BFS parent-tracking; the path is unique)."""
        assert self._tree_adj is not None
        prev: Dict[int, int] = {s_node: -1}
        frontier = [s_node]
        while frontier and t_node not in prev:
            next_frontier: List[int] = []
            for node in frontier:
                for adj in self._tree_adj[node]:
                    if adj not in prev:
                        prev[adj] = node
                        next_frontier.append(adj)
            frontier = next_frontier
        if t_node not in prev:
            return None
        path: List[int] = []
        node = t_node
        while node != -1:
            path.append(node)
            node = prev[node]
        path.reverse()
        return path

    def segments(
        self, s: int, t: int
    ) -> Optional[List[Tuple[int, int, Sequence[int]]]]:
        """Factorize the s-t query along the block-cut tree.

        Returns the ordered chain of blocks a simple s-t path must cross,
        as ``(entry, exit, block vertices)`` triples — entry of the first
        segment is *s*, exit of the last is *t*, and interior boundaries
        are the cut vertices joining consecutive blocks.  Every simple
        s-t path is exactly one concatenation of per-segment simple
        paths (a cut vertex can be visited only once, so the path crosses
        each boundary exactly once and never re-enters an earlier block).
        Returns ``None`` when no s-t path exists.
        """
        self.ensure_structure()
        assert (
            self._blocks is not None
            and self._vertex_blocks is not None
            and self._is_cut is not None
            and self._comp is not None
        )
        if self._comp[s] != self._comp[t]:
            return None
        n_blocks = len(self._blocks)

        def tree_node(v: int) -> Optional[int]:
            if self._is_cut[v]:
                return n_blocks + v
            vb = self._vertex_blocks[v]
            return vb[0] if vb else None

        s_node = tree_node(s)
        t_node = tree_node(t)
        if s_node is None or t_node is None:
            return None
        if s_node == t_node:
            return [(s, t, self._blocks[s_node])]
        path = self._tree_path(s_node, t_node)
        if path is None:
            return None
        result: List[Tuple[int, int, Sequence[int]]] = []
        entry = s
        for node in path:
            if node >= n_blocks:  # a cut vertex: boundary of the open block
                cut = node - n_blocks
                if result and result[-1][1] == -1:
                    block_entry, _, block = result[-1]
                    result[-1] = (block_entry, cut, block)
                entry = cut
            else:
                result.append((entry, -1, self._blocks[node]))
        block_entry, _, block = result[-1]
        result[-1] = (block_entry, t, block)
        return result

    def block_digest(self, block: Sequence[int]) -> str:
        """Content digest of one block's induced subgraph, id-independent.

        Hashes the block's vertex *names* (sorted) together with each
        vertex's in-block neighbor names in CSR adjacency order.  Two
        compiled topologies — typically successive epochs of a churned
        model — produce the same digest for a block iff the induced
        subgraph *and its traversal order* are identical, so a cached
        enumeration keyed on the digest replays the exact path sequence
        the DFS would emit.  Unrelated mutations (a link flapping in a
        different block, nodes added elsewhere) shift integer ids but
        leave names and per-node neighbor order untouched, keeping the
        digest — and therefore the cache entry — valid.
        """
        indptr, indices, names = self.indptr, self.indices, self.names
        in_block = bytearray(self.n)
        for w in block:
            in_block[w] = 1
        digest = hashlib.blake2b(digest_size=16)
        for u in sorted(block, key=lambda w: names[w]):
            digest.update(names[u].encode("utf-8"))
            digest.update(b"\x1e")
            for v in indices[indptr[u] : indptr[u + 1]]:
                if in_block[v]:
                    digest.update(names[v].encode("utf-8"))
                    digest.update(b"\x1f")
        return digest.hexdigest()

    # -- enumeration ---------------------------------------------------------

    def _block_adjacency(
        self, block: Sequence[int]
    ) -> List[Optional[List[int]]]:
        """Per-node neighbor id lists restricted to one block's vertices,
        original order preserved — O(block size + incident edges), not
        O(V + E), so small blocks stay cheap to query."""
        indptr, indices = self.indptr, self.indices
        in_block = bytearray(self.n)
        for w in block:
            in_block[w] = 1
        adjacency: List[Optional[List[int]]] = [None] * self.n
        for u in block:
            adjacency[u] = [
                v for v in indices[indptr[u] : indptr[u + 1]] if in_block[v]
            ]
        return adjacency

    def _condense(
        self,
        s: int,
        t: int,
        block: Sequence[int],
        adjacency: List[Optional[List[int]]],
    ) -> Optional[Dict[int, List[Tuple[int, Tuple[str, ...], int, str]]]]:
        """Smooth degree-2 chains of one block's subgraph.

        Returns, per *branch vertex* (block degree != 2, plus s and t),
        its condensed out-edges as ``(target id, interior names, links,
        target name)`` in original neighbor order — or ``None`` when the
        block has no chains to compress, so callers fall back to the
        cheaper plain loop.  Interior vertices of a chain have exactly
        two block neighbors, so traversal through them is forced:
        simple s-t paths of the condensed multigraph correspond 1:1
        (same emission order) to simple s-t paths of the block subgraph.
        Branch-level on-path tracking suffices because a chain's
        interior is reachable only through its two endpoints.
        """
        names = self.names
        is_branch = bytearray(self.n)
        for u in block:
            if len(adjacency[u]) != 2:  # type: ignore[arg-type]
                is_branch[u] = 1
        is_branch[s] = 1
        is_branch[t] = 1
        condensed: Dict[int, List[Tuple[int, Tuple[str, ...], int, str]]] = {}
        compressed_any = False
        for u in block:
            if not is_branch[u]:
                continue
            edges: List[Tuple[int, Tuple[str, ...], int, str]] = []
            for first in adjacency[u]:  # type: ignore[union-attr]
                interior: List[str] = []
                prev, cur = u, first
                steps = 0
                while not is_branch[cur] and steps <= self.n:
                    interior.append(names[cur])
                    a, b = adjacency[cur]  # type: ignore[misc]
                    prev, cur = cur, (b if a == prev else a)
                    steps += 1
                if cur == u or not is_branch[cur]:
                    # a cycle hanging off u through degree-2 interiors can
                    # never appear on a simple path (it would revisit u);
                    # the second clause is the walk-length safety valve
                    continue
                if interior:
                    compressed_any = True
                edges.append(
                    (cur, tuple(interior), len(interior) + 1, names[cur])
                )
            condensed[u] = edges
        return condensed if compressed_any else None

    def iter_names(
        self,
        s: int,
        t: int,
        *,
        max_depth: Optional[int] = None,
        eager: bool = False,
    ) -> Iterator[Tuple[str, ...]]:
        """All simple s-t paths as name tuples, seed DFS order.

        Three structural reductions compose here, none of which changes
        the emitted sequence relative to the seed DFS:

        1. block-cut factorization (:meth:`segments`) — paths through a
           chain of blocks are the cartesian product of per-block path
           lists, so each block is enumerated once instead of once per
           upstream prefix;
        2. the pruning mask only suppresses subtrees that can never
           reach the segment exit;
        3. chain condensation only removes forced intermediate steps.

        With ``eager=True`` the per-block path lists are materialized up
        front and the product runs at C speed (``itertools.product``) —
        right for consumers that will exhaust the iterator anyway.  The
        default stays fully lazy: pulling one path from an
        astronomically large space must remain cheap.
        """
        names = self.names
        if s == t:
            yield (names[s],)
            return
        limit = max_depth if max_depth is not None else self.n
        if limit < 1:
            return
        segments = self.segments(s, t)
        if segments is None:
            return
        if len(segments) == 1:
            entry, exit_, block = segments[0]
            yield from self._iter_block(entry, exit_, block, limit)
            return
        # Multi-block query: emit the nested product of per-block path
        # lists — exactly the order the seed DFS crosses the blocks.
        # Each block is enumerated at most once (a replay memo feeds the
        # later passes) and only as far as the consumer demands, so
        # pulling one path from an astronomically large space stays
        # cheap.  Each of the other segments contributes at least one
        # link, which bounds any single segment's useful depth.
        k = len(segments)
        cap = limit - (k - 1)
        if cap < 1:
            return
        bounded = limit < self.n
        if eager:
            per_segment: List[List[Tuple[str, ...]]] = []
            for entry, exit_, block in segments:
                if len(block) == 2:  # a bridge: exactly one path, one link
                    per_segment.append([(names[entry], names[exit_])])
                    continue
                seg_paths = list(self._iter_block(entry, exit_, block, cap))
                if not seg_paths:
                    return
                per_segment.append(seg_paths)
            for combo in product(*per_segment):
                if bounded and sum(map(len, combo)) - k > limit:
                    continue
                path = combo[0]
                for piece in combo[1:]:
                    path = path + piece[1:]
                yield path
            return
        sources: List[Iterable[Tuple[str, ...]]] = []
        for entry, exit_, block in segments:
            if len(block) == 2:  # a bridge: exactly one path, one link
                sources.append(((names[entry], names[exit_]),))
            else:
                sources.append(
                    _Replay(self._iter_block(entry, exit_, block, cap))
                )
        last = k - 1

        def emit(
            i: int, prefix: Tuple[str, ...], links: int
        ) -> Iterator[Tuple[str, ...]]:
            for piece in sources[i]:
                total = links + len(piece) - 1
                if i == last:
                    if not bounded or total <= limit:
                        yield prefix + piece[1:]
                elif not bounded or total + (last - i) <= limit:
                    yield from emit(i + 1, prefix + piece[1:], total)

        yield from emit(0, (names[s],), 0)

    def _iter_block(
        self, s: int, t: int, block: Sequence[int], limit: int
    ) -> Iterator[Tuple[str, ...]]:
        """DFS enumeration of simple s-t paths within one block."""
        names = self.names
        adjacency = self._block_adjacency(block)
        condensed = self._condense(s, t, block, adjacency)
        on_path = bytearray(self.n)
        on_path[s] = 1
        flat = [names[s]]  # expanded on-path names, for O(len) emission
        if condensed is None:
            # plain loop: ids on the stack, names appended as we go
            t_name = names[t]
            id_stack = [s]
            stack = [iter(adjacency[s])]  # type: ignore[arg-type]
            while stack:
                v = next(stack[-1], -1)
                if v < 0:
                    stack.pop()
                    flat.pop()
                    on_path[id_stack.pop()] = 0
                    continue
                if on_path[v]:
                    continue
                if v == t:
                    yield (*flat, t_name)
                    continue
                if len(flat) >= limit:
                    continue
                flat.append(names[v])
                on_path[v] = 1
                id_stack.append(v)
                stack.append(iter(adjacency[v]))  # type: ignore[arg-type]
            return
        # Condensed loop.  Depth bookkeeping mirrors the seed exactly: a
        # finished path may carry at most `limit` links, and any
        # non-terminal prefix at most `limit - 1` (the seed blocks
        # appends once len(path) reaches the limit).
        interior_limit = limit - 1
        links_so_far = 0
        span_stack: List[Tuple[int, int]] = []  # (nodes appended, vertex id)
        stack = [iter(condensed[s])]
        while stack:
            edge = next(stack[-1], None)
            if edge is None:
                stack.pop()
                if span_stack:
                    span, vid = span_stack.pop()
                    on_path[vid] = 0
                    del flat[-span:]
                    links_so_far -= span
                continue
            vid, interior, links, vname = edge
            if on_path[vid]:
                continue
            depth = links_so_far + links
            if vid == t:
                if depth <= limit:
                    yield (*flat, *interior, vname)
                continue
            if depth > interior_limit:
                continue
            flat.extend(interior)
            flat.append(vname)
            links_so_far = depth
            on_path[vid] = 1
            span_stack.append((links, vid))
            stack.append(iter(condensed[vid]))

    def count_simple_paths(
        self,
        s: int,
        t: int,
        *,
        max_depth: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> int:
        """Count simple s-t paths without materializing them.

        Counting skips path emission entirely, so on compressible
        topologies it is bounded by condensed DFS steps, not by total
        path length.  On multi-block queries the count is the product of
        per-block counts (a length-distribution convolution when a depth
        limit applies), so it never enumerates cross-block combinations.
        Returns ``-1`` as soon as the count exceeds *budget* (the caller
        owns the error message).
        """
        if s == t:
            return 1
        limit = max_depth if max_depth is not None else self.n
        if limit < 1:
            return 0
        segments = self.segments(s, t)
        if segments is None:
            return 0
        if len(segments) > 1:
            k = len(segments)
            cap = limit - (k - 1)
            if cap < 1:
                return 0
            if limit >= self.n:
                total = 1
                for entry, exit_, block in segments:
                    if len(block) == 2:
                        continue  # a bridge contributes exactly one path
                    block_count = 0
                    for _ in self._iter_block(entry, exit_, block, cap):
                        block_count += 1
                        # every other segment multiplies this by >= 1,
                        # so a single block overshooting the budget is
                        # already conclusive — bail before enumerating
                        # an astronomically large block to completion
                        if budget is not None and block_count > budget:
                            return -1
                    if block_count == 0:
                        return 0
                    total *= block_count
                    if budget is not None and total > budget:
                        return -1
                return total
            # depth-limited: convolve per-block length distributions
            dist: Dict[int, int] = {0: 1}
            for entry, exit_, block in segments:
                if len(block) == 2:
                    block_dist = {1: 1}
                else:
                    block_dist = {}
                    for path in self._iter_block(entry, exit_, block, cap):
                        links = len(path) - 1
                        block_dist[links] = block_dist.get(links, 0) + 1
                if not block_dist:
                    return 0
                next_dist: Dict[int, int] = {}
                for have, ways in dist.items():
                    for links, count_ in block_dist.items():
                        d = have + links
                        if d <= limit:
                            next_dist[d] = next_dist.get(d, 0) + ways * count_
                dist = next_dist
                if not dist:
                    return 0
            total = sum(dist.values())
            if budget is not None and total > budget:
                return -1
            return total
        _, _, block = segments[0]
        adjacency = self._block_adjacency(block)
        condensed = self._condense(s, t, block, adjacency)
        on_path = bytearray(self.n)
        on_path[s] = 1
        total = 0
        if condensed is None:
            depth = 0
            id_stack = [s]
            stack = [iter(adjacency[s])]  # type: ignore[arg-type]
            while stack:
                v = next(stack[-1], -1)
                if v < 0:
                    stack.pop()
                    depth -= 1
                    on_path[id_stack.pop()] = 0
                    continue
                if on_path[v]:
                    continue
                if v == t:
                    total += 1
                    if budget is not None and total > budget:
                        return -1
                    continue
                if depth + 1 >= limit:
                    continue
                depth += 1
                on_path[v] = 1
                id_stack.append(v)
                stack.append(iter(adjacency[v]))  # type: ignore[arg-type]
            return total
        interior_limit = limit - 1
        links_so_far = 0
        span_stack: List[Tuple[int, int]] = []
        stack = [iter(condensed[s])]
        while stack:
            edge = next(stack[-1], None)
            if edge is None:
                stack.pop()
                if span_stack:
                    span, vid = span_stack.pop()
                    on_path[vid] = 0
                    links_so_far -= span
                continue
            vid, _interior, links, _vname = edge
            if on_path[vid]:
                continue
            depth = links_so_far + links
            if vid == t:
                if depth <= limit:
                    total += 1
                    if budget is not None and total > budget:
                        return -1
                continue
            if depth > interior_limit:
                continue
            links_so_far = depth
            on_path[vid] = 1
            span_stack.append((links, vid))
            stack.append(iter(condensed[vid]))
        return total


# ---------------------------------------------------------------------------
# caches and statistics
# ---------------------------------------------------------------------------


class _LRU:
    """A small thread-safe LRU with hit/miss counters.

    Besides the entry-count cap, an optional *max_weight* bounds the sum
    of per-entry weights (for the PathSet cache: total path elements),
    so memoizing a run of very large results cannot grow memory without
    bound — the least recently used entries are evicted first.
    """

    def __init__(self, maxsize: int, max_weight: Optional[int] = None):
        self.maxsize = maxsize
        self.max_weight = max_weight
        self.data: "OrderedDict[object, object]" = OrderedDict()
        self.weights: Dict[object, int] = {}
        self.total_weight = 0
        self.hits = 0
        self.misses = 0
        self.lock = threading.Lock()

    def get(self, key):
        with self.lock:
            try:
                value = self.data[key]
            except KeyError:
                self.misses += 1
                return None
            self.data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value, weight: int = 1) -> None:
        with self.lock:
            if key in self.data:
                self.total_weight -= self.weights.get(key, 0)
            self.data[key] = value
            self.weights[key] = weight
            self.total_weight += weight
            self.data.move_to_end(key)
            while len(self.data) > self.maxsize or (
                self.max_weight is not None
                and self.total_weight > self.max_weight
                and len(self.data) > 1
            ):
                evicted, _ = self.data.popitem(last=False)
                self.total_weight -= self.weights.pop(evicted, 0)

    def clear(self) -> None:
        with self.lock:
            self.data.clear()
            self.weights.clear()
            self.total_weight = 0
            self.hits = 0
            self.misses = 0


#: Compiled topologies, keyed by fingerprint (shared across Topology views).
_COMPILED = _LRU(maxsize=64)

#: Memoized PathSets: (fingerprint, requester, provider, max_depth,
#: max_paths) -> (paths tuple, truncated flag).  The weight budget caps
#: the cache at ~2M retained path elements (tens of MB), whatever the
#: per-result sizes are.
_PATHS = _LRU(maxsize=1024, max_weight=2_000_000)

#: Per-block enumerations keyed by (block content digest, entry, exit).
#: Unlike the PathSet cache this key is *fingerprint-independent*: a
#: topology mutation invalidates only the blocks it touches (their
#: digests change), so churned models reuse every untouched block's
#: enumeration — the delta-aware fast path of :func:`discover_delta`.
_BLOCK_PATHS = _LRU(maxsize=4096, max_weight=2_000_000)

_STATS_LOCK = threading.Lock()
_STATS = {"compilations": 0, "enumerations": 0, "block_enumerations": 0,
          "delta_assemblies": 0}

# -- observability: coarse counters + live cache gauges (repro.obs) ----------

_M_COMPILATIONS = _metrics.counter(
    "repro_engine_compilations_total",
    "Topology compilations into CSR form",
)
_M_ENUMERATIONS = _metrics.counter(
    "repro_engine_enumerations_total",
    "Full path enumerations run (cache hits perform none)",
)
_M_PATHS_DISCOVERED = _metrics.counter(
    "repro_engine_paths_discovered_total",
    "Simple paths emitted by full enumerations",
)
_metrics.gauge(
    "repro_engine_path_cache_hits",
    "PathSet LRU hits since process start",
).set_function(lambda: _PATHS.hits)
_metrics.gauge(
    "repro_engine_path_cache_misses",
    "PathSet LRU misses since process start",
).set_function(lambda: _PATHS.misses)
_metrics.gauge(
    "repro_engine_path_cache_entries",
    "PathSets currently memoized",
).set_function(lambda: len(_PATHS.data))
_metrics.gauge(
    "repro_engine_path_cache_weight",
    "Total path elements retained in the PathSet LRU",
).set_function(lambda: _PATHS.total_weight)
_M_BLOCK_ENUMERATIONS = _metrics.counter(
    "repro_engine_block_enumerations_total",
    "Per-block enumerations run by delta-aware discovery "
    "(block-cache hits perform none)",
)
_M_DELTA_ASSEMBLIES = _metrics.counter(
    "repro_engine_delta_assemblies_total",
    "PathSets assembled by splicing cached per-block enumerations",
)
_metrics.gauge(
    "repro_engine_block_cache_hits",
    "Block-enumeration LRU hits since process start",
).set_function(lambda: _BLOCK_PATHS.hits)
_metrics.gauge(
    "repro_engine_block_cache_misses",
    "Block-enumeration LRU misses since process start",
).set_function(lambda: _BLOCK_PATHS.misses)
_metrics.gauge(
    "repro_engine_block_cache_entries",
    "Block enumerations currently memoized",
).set_function(lambda: len(_BLOCK_PATHS.data))
_metrics.gauge(
    "repro_engine_block_cache_weight",
    "Total path elements retained in the block-enumeration LRU",
).set_function(lambda: _BLOCK_PATHS.total_weight)


def engine_stats() -> Dict[str, int]:
    """Counters for tests and benchmarks: compilations and full DFS runs
    (cache hits perform neither), plus the PathSet-cache hit/miss tally."""
    with _STATS_LOCK:
        stats = dict(_STATS)
    stats["path_cache_hits"] = _PATHS.hits
    stats["path_cache_misses"] = _PATHS.misses
    stats["block_cache_hits"] = _BLOCK_PATHS.hits
    stats["block_cache_misses"] = _BLOCK_PATHS.misses
    return stats


def reset_engine_stats() -> None:
    with _STATS_LOCK:
        _STATS["compilations"] = 0
        _STATS["enumerations"] = 0
        _STATS["block_enumerations"] = 0
        _STATS["delta_assemblies"] = 0


def path_cache_info() -> Dict[str, int]:
    return {
        "hits": _PATHS.hits,
        "misses": _PATHS.misses,
        "currsize": len(_PATHS.data),
        "maxsize": _PATHS.maxsize,
    }


def path_cache_clear() -> None:
    """Explicit invalidation of every memoized PathSet (the fingerprint
    change on topology mutation invalidates implicitly; this is the big
    hammer for tests and long-running services)."""
    _PATHS.clear()


def block_cache_info() -> Dict[str, int]:
    return {
        "hits": _BLOCK_PATHS.hits,
        "misses": _BLOCK_PATHS.misses,
        "currsize": len(_BLOCK_PATHS.data),
        "maxsize": _BLOCK_PATHS.maxsize,
        "weight": _BLOCK_PATHS.total_weight,
    }


def block_cache_clear() -> None:
    """Drop every memoized per-block enumeration (content-addressed
    entries never go stale — this exists for tests and benchmarks that
    need a cold delta path)."""
    _BLOCK_PATHS.clear()


#: artifact kinds the engine persists (see :mod:`repro.store`)
_KIND_CSR = "csr"
_KIND_PATHSET = "pathset"


def _compiled_from_store(
    store: "_store.ArtifactStore", fingerprint: str
) -> Optional[CompiledTopology]:
    """Second-tier lookup: rehydrate stored CSR tables, or ``None``."""
    artifact = store.get(_KIND_CSR, (fingerprint,))
    if artifact is None:
        return None
    try:
        return CompiledTopology.from_arrays(
            fingerprint,
            tuple(artifact.meta["names"]),
            artifact.arrays["indptr"],
            artifact.arrays["indices"],
        )
    except (KeyError, TypeError):  # foreign/legacy payload: recompile
        return None


def _compiled_to_store(
    store: "_store.ArtifactStore", compiled: CompiledTopology
) -> None:
    """Write-through after a fresh compile; store trouble (disk full,
    permissions) never aborts the computation that succeeded."""
    indptr, indices = compiled.csr_arrays()
    try:
        store.put(
            _KIND_CSR,
            (compiled.fingerprint,),
            {"indptr": indptr, "indices": indices},
            {"names": list(compiled.names)},
        )
    except StoreError:
        pass


def compile_topology(topology: Topology) -> CompiledTopology:
    """Compile (or reuse) the integer-ID view of *topology*.

    The fingerprint is recomputed on every call — O(V + E) hashing, far
    cheaper than any enumeration — so a mutated read-through model is
    never served stale arrays.  On an in-process cache miss the
    configured artifact store (``REPRO_STORE``) is consulted before
    compiling; a fresh compile writes through so other processes
    warm-start from it.
    """
    fingerprint = topology.fingerprint()
    cached = getattr(topology, "_compiled", None)
    if cached is not None and cached.fingerprint == fingerprint:
        return cached
    compiled = _COMPILED.get(fingerprint)
    if compiled is None:
        store = _store.active_store()
        if store is not None:
            compiled = _compiled_from_store(store, fingerprint)
            if compiled is not None:
                _COMPILED.put(fingerprint, compiled)
    if compiled is None:
        with _trace.span("engine.compile", fingerprint=fingerprint) as span:
            compiled = CompiledTopology.from_topology(topology, fingerprint)
            span.set(nodes=compiled.n, edges=len(compiled.indices) // 2)
        with _STATS_LOCK:
            _STATS["compilations"] += 1
        _M_COMPILATIONS.inc()
        _COMPILED.put(fingerprint, compiled)
        if store is not None:
            _compiled_to_store(store, compiled)
    try:
        topology._compiled = compiled  # type: ignore[attr-defined]
    except AttributeError:  # exotic Topology subclasses with __slots__
        pass
    return compiled


# ---------------------------------------------------------------------------
# public enumerators (the pathdiscovery module delegates here)
# ---------------------------------------------------------------------------


def _names_iter(
    compiled: CompiledTopology,
    requester: str,
    provider: str,
    max_depth: Optional[int],
    eager: bool = False,
) -> Iterator[Path]:
    s = compiled.node_id(requester)
    t = compiled.node_id(provider)
    return compiled.iter_names(s, t, max_depth=max_depth, eager=eager)


def _enumerate(
    compiled: CompiledTopology,
    requester: str,
    provider: str,
    max_depth: Optional[int],
    max_paths: Optional[int],
) -> PathSet:
    with _STATS_LOCK:
        _STATS["enumerations"] += 1
    _M_ENUMERATIONS.inc()
    result = PathSet(requester, provider)
    # a truncated query must stay lazy; a full one benefits from the
    # eager C-speed product assembly
    iterator = _names_iter(
        compiled, requester, provider, max_depth, eager=max_paths is None
    )
    for path in iterator:
        result.paths.append(path)
        if max_paths is not None and len(result.paths) >= max_paths:
            # peek once so the flag truthfully reports whether paths were cut
            if next(iterator, None) is not None:
                result.truncated = True
            break
    _M_PATHS_DISCOVERED.inc(len(result.paths))
    return result


def _paths_from_store(
    store: "_store.ArtifactStore", store_key: Tuple[str, ...]
) -> Optional[Tuple[Tuple[Path, ...], bool]]:
    """Second-tier PathSet lookup: unpack a stored enumeration."""
    artifact = store.get(_KIND_PATHSET, store_key)
    if artifact is None:
        return None
    try:
        paths = tuple(
            _store.decode_paths(artifact.arrays, artifact.meta["names"])
        )
        truncated = bool(artifact.meta["truncated"])
    except (KeyError, TypeError, IndexError):  # foreign payload: re-enumerate
        return None
    return paths, truncated


def _paths_to_store(
    store: "_store.ArtifactStore", store_key: Tuple[str, ...], result: PathSet
) -> None:
    arrays, names = _store.encode_paths(result.paths)
    try:
        store.put(
            _KIND_PATHSET,
            store_key,
            arrays,
            {"names": names, "truncated": result.truncated},
        )
    except StoreError:
        pass


def discover(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
    max_paths: Optional[int] = None,
    use_cache: bool = True,
) -> PathSet:
    """Memoized all-paths discovery on the compiled topology.

    Two cache tiers back this: the in-process PathSet LRU and, when an
    artifact store is active (``REPRO_STORE``/``--store``), the on-disk
    enumeration keyed by the same (fingerprint, endpoints, bounds)
    tuple — a fresh process re-running a known campaign performs zero
    enumerations.
    """
    with _trace.span(
        "engine.discover", requester=requester, provider=provider
    ) as span:
        _check_endpoints(topology, requester, provider)
        compiled = compile_topology(topology)
        key = (compiled.fingerprint, requester, provider, max_depth, max_paths)
        store = _store.active_store() if use_cache else None
        store_key = (
            compiled.fingerprint,
            requester,
            provider,
            repr(max_depth),
            repr(max_paths),
        )
        if use_cache:
            hit = _PATHS.get(key)
            if hit is not None:
                paths, truncated = hit
                span.set(cached=True, paths=len(paths))
                return PathSet(
                    requester, provider, list(paths), truncated=truncated
                )
            if store is not None:
                stored = _paths_from_store(store, store_key)
                if stored is not None:
                    paths, truncated = stored
                    weight = sum(map(len, paths)) + 1
                    _PATHS.put(key, (paths, truncated), weight=weight)
                    span.set(cached=True, paths=len(paths))
                    return PathSet(
                        requester, provider, list(paths), truncated=truncated
                    )
        result = _enumerate(compiled, requester, provider, max_depth, max_paths)
        span.set(cached=False, paths=len(result.paths))
        if use_cache:
            weight = sum(map(len, result.paths)) + 1
            _PATHS.put(key, (tuple(result.paths), result.truncated), weight=weight)
            if store is not None:
                _paths_to_store(store, store_key, result)
        return result


def count(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
    budget: Optional[int] = None,
) -> int:
    """Count simple paths on the compiled topology without storing them."""
    _check_endpoints(topology, requester, provider)
    compiled = compile_topology(topology)
    with _STATS_LOCK:
        _STATS["enumerations"] += 1
    s = compiled.node_id(requester)
    t = compiled.node_id(provider)
    total = compiled.count_simple_paths(s, t, max_depth=max_depth, budget=budget)
    if total < 0:
        raise PathDiscoveryError(
            f"path count between {requester!r} and {provider!r} exceeds "
            f"budget {budget}"
        )
    return total


def iterate(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    max_depth: Optional[int] = None,
) -> Iterator[Path]:
    """Lazy enumeration on the compiled topology (no memoization —
    laziness and caching do not mix; use :func:`discover` for the cache)."""
    _check_endpoints(topology, requester, provider)
    compiled = compile_topology(topology)
    with _STATS_LOCK:
        _STATS["enumerations"] += 1
    return _names_iter(compiled, requester, provider, max_depth)


def discover_many(
    topology: Topology,
    pairs: Iterable[Tuple[str, str]],
    *,
    max_depth: Optional[int] = None,
    max_paths: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    return_exceptions: bool = False,
) -> Dict[Tuple[str, str], PathSet]:
    """Discover paths for many (requester, provider) pairs.

    Duplicate pairs are enumerated once.  With ``jobs`` > 1 the distinct
    pairs fan out over a thread pool (the compiled arrays are shared and
    read-only); the result dict is keyed and built in first-seen pair
    order either way, so stored results stay deterministic.  ``jobs``
    must be >= 1 when given (``None`` means serial) — zero or negative
    worker counts raise :class:`PathDiscoveryError` up front instead of
    surfacing as an opaque executor error.

    A failing worker never surfaces as a bare future error: the raised
    :class:`PathDiscoveryError` names the (requester, provider) pair that
    failed.  With ``return_exceptions=True`` (the mode the resilient
    runner builds on) no worker failure raises at all — the result dict
    maps each failed pair to its exception instance instead of a
    :class:`PathSet`, so one bad pair cannot abort the whole batch.
    """
    if jobs is not None and jobs < 1:
        raise PathDiscoveryError(
            f"jobs must be >= 1, got {jobs}; omit it (or pass None) for "
            f"the serial default"
        )
    unique: List[Tuple[str, str]] = list(dict.fromkeys(tuple(p) for p in pairs))
    compiled = compile_topology(topology)
    compiled.ensure_structure()  # share one decomposition across workers

    tracer = _trace.get_tracer()

    def run_one(pair: Tuple[str, str], parent=None):
        try:
            with tracer.context(parent):
                return discover(
                    topology,
                    pair[0],
                    pair[1],
                    max_depth=max_depth,
                    max_paths=max_paths,
                    use_cache=use_cache,
                )
        except Exception as exc:
            if return_exceptions:
                return exc
            if isinstance(exc, PathDiscoveryError):
                raise PathDiscoveryError(
                    f"pair ({pair[0]!r}, {pair[1]!r}): {exc}"
                ) from exc
            raise PathDiscoveryError(
                f"pair ({pair[0]!r}, {pair[1]!r}): discovery worker failed "
                f"with {type(exc).__name__}: {exc}"
            ) from exc

    with tracer.span(
        "engine.discover_many", pairs=len(unique), jobs=jobs or 1
    ):
        if jobs is not None and jobs > 1 and len(unique) > 1:
            # Thread-local span stacks do not flow into pool workers, so
            # capture the batch span here and re-attach it per worker.
            parent = tracer.current()
            with ThreadPoolExecutor(max_workers=jobs) as executor:
                futures = {
                    pair: executor.submit(run_one, pair, parent)
                    for pair in unique
                }
                return {pair: futures[pair].result() for pair in unique}
        return {pair: run_one(pair) for pair in unique}


# ---------------------------------------------------------------------------
# delta-aware discovery (block-level memoization for churned topologies)
# ---------------------------------------------------------------------------


def _segment_paths(
    compiled: CompiledTopology, entry: int, exit_: int, block: Sequence[int]
) -> Tuple[Tuple[str, ...], ...]:
    """One segment's full path list, memoized by block content digest.

    A bridge (two-vertex block) contributes exactly one path and skips
    the cache.  Anything larger is keyed on
    ``(block_digest, entry name, exit name)``: the digest covers the
    induced subgraph *and* its traversal order, so a hit replays exactly
    the sequence :meth:`CompiledTopology._iter_block` would emit — on a
    churned topology only the blocks an event actually touched miss.
    """
    names = compiled.names
    if len(block) == 2:
        return ((names[entry], names[exit_]),)
    key = (compiled.block_digest(block), names[entry], names[exit_])
    cached = _BLOCK_PATHS.get(key)
    if cached is not None:
        return cached
    # a simple path inside the block visits each vertex at most once, so
    # len(block) links always over-covers the longest possible path
    paths = tuple(compiled._iter_block(entry, exit_, block, len(block)))
    with _STATS_LOCK:
        _STATS["block_enumerations"] += 1
    _M_BLOCK_ENUMERATIONS.inc()
    _BLOCK_PATHS.put(key, paths, weight=sum(map(len, paths)) + 1)
    return paths


def discover_delta(
    topology: Topology,
    requester: str,
    provider: str,
    *,
    use_cache: bool = True,
) -> PathSet:
    """Delta-aware all-paths discovery: splice cached block enumerations.

    Equivalent to :func:`discover` with no depth/path bounds — same paths
    in the same order — but factorized through the block-cut tree with a
    *content-addressed* per-block cache: when the topology mutates, only
    the biconnected blocks whose induced subgraph changed are
    re-enumerated, and every untouched block's path list is spliced back
    into the result.  This is the recompute primitive of the live-churn
    engine (:mod:`repro.core.churn`): a link flap on a peripheral block
    re-enumerates that block alone, not the whole pair.

    The assembled PathSet is also registered in the fingerprint-keyed
    PathSet LRU, so subsequent plain :func:`discover` calls (pipeline
    Step 7, analysis) hit it without re-assembly.
    """
    _check_endpoints(topology, requester, provider)
    return discover_delta_compiled(
        compile_topology(topology), requester, provider, use_cache=use_cache
    )


def discover_delta_compiled(
    compiled: CompiledTopology,
    requester: str,
    provider: str,
    *,
    use_cache: bool = True,
) -> PathSet:
    """:func:`discover_delta` over an already-compiled topology.

    The live-churn evaluator compiles on the mutating thread (so the CSR
    arrays and fingerprint are a consistent snapshot) and hands the frozen
    compiled view to a deadline-bounded worker; an abandoned worker can
    then never observe — or cache results derived from — a half-mutated
    model.
    """
    with _trace.span(
        "engine.discover_delta", requester=requester, provider=provider
    ) as span:
        key = (compiled.fingerprint, requester, provider, None, None)
        if use_cache:
            hit = _PATHS.get(key)
            if hit is not None:
                paths, truncated = hit
                span.set(cached=True, paths=len(paths))
                return PathSet(
                    requester, provider, list(paths), truncated=truncated
                )
        s = compiled.node_id(requester)
        t = compiled.node_id(provider)
        result = PathSet(requester, provider)
        if s == t:
            result.paths.append((compiled.names[s],))
        else:
            segments = compiled.segments(s, t)
            if segments is not None:
                per_segment = [
                    _segment_paths(compiled, entry, exit_, block)
                    for entry, exit_, block in segments
                ]
                if all(per_segment):
                    for combo in product(*per_segment):
                        path = combo[0]
                        for piece in combo[1:]:
                            path = path + piece[1:]
                        result.paths.append(path)
        with _STATS_LOCK:
            _STATS["delta_assemblies"] += 1
        _M_DELTA_ASSEMBLIES.inc()
        span.set(cached=False, paths=len(result.paths))
        if use_cache:
            weight = sum(map(len, result.paths)) + 1
            _PATHS.put(key, (tuple(result.paths), False), weight=weight)
        return result


def discover_many_delta(
    topology: Topology,
    pairs: Iterable[Tuple[str, str]],
    *,
    use_cache: bool = True,
) -> Dict[Tuple[str, str], PathSet]:
    """Delta-aware discovery for many pairs (duplicates enumerated once).

    Serial by design: the churn engine calls this once per event, and the
    per-pair work after warm block caches is assembly-only — fan-out
    overhead would dominate.  Worker failures name the failing pair,
    matching :func:`discover_many`.
    """
    unique: List[Tuple[str, str]] = list(dict.fromkeys(tuple(p) for p in pairs))
    compiled = compile_topology(topology)
    compiled.ensure_structure()
    with _trace.span("engine.discover_many_delta", pairs=len(unique)):
        results: Dict[Tuple[str, str], PathSet] = {}
        for requester, provider in unique:
            try:
                results[(requester, provider)] = discover_delta(
                    topology, requester, provider, use_cache=use_cache
                )
            except PathDiscoveryError as exc:
                raise PathDiscoveryError(
                    f"pair ({requester!r}, {provider!r}): {exc}"
                ) from exc
        return results
