"""Dynamicity scenarios: executable form of the Section V-A3 analysis.

The paper argues that separating infrastructure model, service description
and mapping "allows to efficiently handle dynamic system changes by
updating only individual models":

* *user mobility* — "the network model and mapping need to be updated
  while the service description remains the same" (and when the user
  moves to an already-modeled position, only the mapping changes);
* *topology change* — "require updating only the network model and
  mapping but not the service description";
* *service migration* — "requires updating only the mapping";
* *service substitution* — "requires changing only the service
  description and mapping but not the network model".

This module encodes those change types as operation objects.  Each
operation knows which input models it touches (:meth:`ChangeOperation.
affected_models`, the paper's claim) and how to apply itself to a
:class:`DeploymentState`; :meth:`DeploymentState.apply` routes the change
into a :class:`~repro.core.pipeline.MethodologyPipeline` and returns the
pipeline report, so tests and benchmarks can verify that *exactly* the
claimed stages re-execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.core.mapping import ServiceMapping, ServiceMappingPair
from repro.core.pipeline import MethodologyPipeline, PipelineReport
from repro.errors import MappingError, TopologyError
from repro.services.composite import CompositeService
from repro.uml.objects import ObjectModel

__all__ = [
    "ChangeOperation",
    "UserMove",
    "ServiceMigration",
    "LinkChange",
    "ComponentAddition",
    "ServiceSubstitution",
    "DeploymentState",
]

#: The three input models of the methodology.
MODELS = ("network", "service", "mapping")


#: Reverses one applied operation (transactional rollback); ``None``
#: when the operation has nothing to undo.
Undo = Optional[Callable[[], None]]


class ChangeOperation:
    """Base class of dynamicity operations."""

    def affected_models(self) -> FrozenSet[str]:
        """Which input models this change type touches (Section V-A3)."""
        raise NotImplementedError

    def apply(self, state: "DeploymentState") -> Undo:
        """Apply the change to *state*, returning an undo callable.

        The undo restores the models to their pre-apply content;
        :meth:`DeploymentState.apply` invokes it when the operation or
        the incremental re-run fails, so a failed apply never leaves the
        deployment half-mutated.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class UserMove(ChangeOperation):
    """User mobility to an already-modeled position.

    Every mapping occurrence of *old_component* is replaced by
    *new_component*.  Only the mapping changes — the cheapest update class.
    """

    old_component: str
    new_component: str

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"mapping"})

    def apply(self, state: "DeploymentState") -> Undo:
        if not state.topology_has(self.new_component):
            raise TopologyError(
                f"target position {self.new_component!r} not in the network; "
                f"model it first (that would be a ComponentAddition)"
            )
        state.mapping = _substitute(state.mapping, self.old_component, self.new_component)
        return None  # model references are snapshot-restored by the caller


@dataclass(frozen=True)
class ServiceMigration(ChangeOperation):
    """A providing service instance moves to another host.

    "Migrating a service from one provider to another requires updating
    only the mapping."
    """

    old_provider: str
    new_provider: str

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"mapping"})

    def apply(self, state: "DeploymentState") -> Undo:
        if not state.topology_has(self.new_provider):
            raise TopologyError(
                f"new provider {self.new_provider!r} not in the network"
            )
        state.mapping = _substitute(state.mapping, self.old_provider, self.new_provider)
        return None


@dataclass(frozen=True)
class LinkChange(ChangeOperation):
    """A link appears or disappears (maintenance, new cabling).

    "Changes to the network topology require updating only the network
    model and mapping" — the mapping file itself usually survives
    unchanged, but it must be *re-imported and re-validated* against the
    new network, which is why the paper lists it as affected.
    """

    end1: str
    end2: str
    add: bool = True
    connector: str = "Cable"

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"network", "mapping"})

    def apply(self, state: "DeploymentState") -> Undo:
        model = state.infrastructure
        for end in (self.end1, self.end2):
            if not state.topology_has(end):
                raise TopologyError(f"component {end!r} not in the network")
        if self.add:
            if model.find_link(self.end1, self.end2) is not None:
                raise TopologyError(
                    f"link between {self.end1!r} and {self.end2!r} already "
                    f"exists; adding it again would corrupt the model"
                )
            link = model.add_link(self.end1, self.end2, self.connector)
            return lambda: model.remove_link(link.end1, link.end2)
        if model.find_link(self.end1, self.end2) is None:
            raise TopologyError(
                f"no link between {self.end1!r} and {self.end2!r} to remove"
            )
        link = model.remove_link(self.end1, self.end2)
        return lambda: model.add_link(
            link.end1, link.end2, link.association, name=link.name
        )


@dataclass(frozen=True)
class ComponentAddition(ChangeOperation):
    """A new component is deployed and cabled to an existing one."""

    name: str
    type_name: str
    attach_to: str
    connector: str = "Cable"

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"network", "mapping"})

    def apply(self, state: "DeploymentState") -> Undo:
        model = state.infrastructure
        if state.topology_has(self.name):
            raise TopologyError(
                f"component {self.name!r} already deployed; duplicate "
                f"instance names would corrupt the model"
            )
        if not state.topology_has(self.attach_to):
            raise TopologyError(
                f"attachment point {self.attach_to!r} not in the network"
            )
        model.add_instance(self.name, self.type_name)
        try:
            model.add_link(self.name, self.attach_to, self.connector)
        except Exception:
            model.remove_instance(self.name)
            raise
        return lambda: model.remove_instance(self.name, cascade=True)


@dataclass(frozen=True)
class ServiceSubstitution(ChangeOperation):
    """One service composition is replaced by an equivalent one.

    "Substituting a service … requires changing only the service
    description and mapping but not the network model."
    """

    replacement: CompositeService
    replacement_mapping: ServiceMapping

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"service", "mapping"})

    def apply(self, state: "DeploymentState") -> Undo:
        state.service = self.replacement
        state.mapping = self.replacement_mapping
        return None


def _substitute(mapping: ServiceMapping, old: str, new: str) -> ServiceMapping:
    mentioned = {
        name for pair in mapping.pairs for name in pair.endpoints()
    }
    if old not in mentioned:
        raise MappingError(f"component {old!r} does not appear in the mapping")
    return ServiceMapping(
        ServiceMappingPair(
            pair.atomic_service,
            new if pair.requester == old else pair.requester,
            new if pair.provider == old else pair.provider,
        )
        for pair in mapping.pairs
    )


class DeploymentState:
    """A live deployment: network + service + mapping + pipeline.

    Changes are applied through :meth:`apply`, which also re-runs the
    methodology incrementally and returns the
    :class:`~repro.core.pipeline.PipelineReport` (so callers see exactly
    which automated stages re-executed).
    """

    def __init__(
        self,
        infrastructure: ObjectModel,
        service: CompositeService,
        mapping: ServiceMapping,
    ):
        self.infrastructure = infrastructure
        self.service = service
        self.mapping = mapping
        self.pipeline = MethodologyPipeline()
        self.history: List[Tuple[ChangeOperation, FrozenSet[str]]] = []
        self._sync_pipeline(frozenset(MODELS))

    def topology_has(self, name: str) -> bool:
        return self.infrastructure.has_instance(name)

    def _sync_pipeline(self, touched: FrozenSet[str]) -> None:
        if "network" in touched:
            self.pipeline.set_infrastructure(self.infrastructure)
        if "service" in touched:
            self.pipeline.set_service(self.service)
        if "mapping" in touched:
            self.pipeline.set_mapping(self.mapping)

    def run(self, **kwargs) -> PipelineReport:
        """Run (or incrementally re-run) the automated steps."""
        return self.pipeline.run(**kwargs)

    def apply(self, operation: ChangeOperation, **kwargs) -> PipelineReport:
        """Apply *operation*, resync only the affected models, and re-run.

        The apply is **transactional**: if the operation itself or the
        incremental re-run raises, the models are rolled back (reference
        snapshots for service/mapping, the operation's undo for
        infrastructure mutations), the pipeline is resynced to the
        restored models, and nothing is appended to :attr:`history`.
        """
        before_service, before_mapping = self.service, self.mapping
        undo: Undo = None
        touched = operation.affected_models()
        try:
            undo = operation.apply(self)
            self._sync_pipeline(touched)
            report = self.run(**kwargs)
        except Exception:
            self.service, self.mapping = before_service, before_mapping
            if undo is not None:
                undo()
            # point the pipeline back at the restored model content; the
            # affected stages re-run on the next successful apply
            self._sync_pipeline(touched)
            raise
        self.history.append((operation, touched))
        return report

    @property
    def upsim(self):
        return self.pipeline.upsim
