"""Dynamicity scenarios: executable form of the Section V-A3 analysis.

The paper argues that separating infrastructure model, service description
and mapping "allows to efficiently handle dynamic system changes by
updating only individual models":

* *user mobility* — "the network model and mapping need to be updated
  while the service description remains the same" (and when the user
  moves to an already-modeled position, only the mapping changes);
* *topology change* — "require updating only the network model and
  mapping but not the service description";
* *service migration* — "requires updating only the mapping";
* *service substitution* — "requires changing only the service
  description and mapping but not the network model".

This module encodes those change types as operation objects.  Each
operation knows which input models it touches (:meth:`ChangeOperation.
affected_models`, the paper's claim) and how to apply itself to a
:class:`DeploymentState`; :meth:`DeploymentState.apply` routes the change
into a :class:`~repro.core.pipeline.MethodologyPipeline` and returns the
pipeline report, so tests and benchmarks can verify that *exactly* the
claimed stages re-execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.mapping import ServiceMapping, ServiceMappingPair
from repro.core.pipeline import MethodologyPipeline, PipelineReport
from repro.errors import MappingError, TopologyError
from repro.services.composite import CompositeService
from repro.uml.objects import ObjectModel

__all__ = [
    "ChangeOperation",
    "UserMove",
    "ServiceMigration",
    "LinkChange",
    "ComponentAddition",
    "ServiceSubstitution",
    "DeploymentState",
]

#: The three input models of the methodology.
MODELS = ("network", "service", "mapping")


class ChangeOperation:
    """Base class of dynamicity operations."""

    def affected_models(self) -> FrozenSet[str]:
        """Which input models this change type touches (Section V-A3)."""
        raise NotImplementedError

    def apply(self, state: "DeploymentState") -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class UserMove(ChangeOperation):
    """User mobility to an already-modeled position.

    Every mapping occurrence of *old_component* is replaced by
    *new_component*.  Only the mapping changes — the cheapest update class.
    """

    old_component: str
    new_component: str

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"mapping"})

    def apply(self, state: "DeploymentState") -> None:
        if not state.topology_has(self.new_component):
            raise TopologyError(
                f"target position {self.new_component!r} not in the network; "
                f"model it first (that would be a ComponentAddition)"
            )
        state.mapping = _substitute(state.mapping, self.old_component, self.new_component)


@dataclass(frozen=True)
class ServiceMigration(ChangeOperation):
    """A providing service instance moves to another host.

    "Migrating a service from one provider to another requires updating
    only the mapping."
    """

    old_provider: str
    new_provider: str

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"mapping"})

    def apply(self, state: "DeploymentState") -> None:
        if not state.topology_has(self.new_provider):
            raise TopologyError(
                f"new provider {self.new_provider!r} not in the network"
            )
        state.mapping = _substitute(state.mapping, self.old_provider, self.new_provider)


@dataclass(frozen=True)
class LinkChange(ChangeOperation):
    """A link appears or disappears (maintenance, new cabling).

    "Changes to the network topology require updating only the network
    model and mapping" — the mapping file itself usually survives
    unchanged, but it must be *re-imported and re-validated* against the
    new network, which is why the paper lists it as affected.
    """

    end1: str
    end2: str
    add: bool = True
    connector: str = "Cable"

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"network", "mapping"})

    def apply(self, state: "DeploymentState") -> None:
        if self.add:
            state.infrastructure.add_link(self.end1, self.end2, self.connector)
        else:
            link = state.infrastructure.find_link(self.end1, self.end2)
            if link is None:
                raise TopologyError(
                    f"no link between {self.end1!r} and {self.end2!r} to remove"
                )
            _remove_link(state.infrastructure, link)


@dataclass(frozen=True)
class ComponentAddition(ChangeOperation):
    """A new component is deployed and cabled to an existing one."""

    name: str
    type_name: str
    attach_to: str
    connector: str = "Cable"

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"network", "mapping"})

    def apply(self, state: "DeploymentState") -> None:
        state.infrastructure.add_instance(self.name, self.type_name)
        state.infrastructure.add_link(self.name, self.attach_to, self.connector)


@dataclass(frozen=True)
class ServiceSubstitution(ChangeOperation):
    """One service composition is replaced by an equivalent one.

    "Substituting a service … requires changing only the service
    description and mapping but not the network model."
    """

    replacement: CompositeService
    replacement_mapping: ServiceMapping

    def affected_models(self) -> FrozenSet[str]:
        return frozenset({"service", "mapping"})

    def apply(self, state: "DeploymentState") -> None:
        state.service = self.replacement
        state.mapping = self.replacement_mapping


def _substitute(mapping: ServiceMapping, old: str, new: str) -> ServiceMapping:
    mentioned = {
        name for pair in mapping.pairs for name in pair.endpoints()
    }
    if old not in mentioned:
        raise MappingError(f"component {old!r} does not appear in the mapping")
    return ServiceMapping(
        ServiceMappingPair(
            pair.atomic_service,
            new if pair.requester == old else pair.requester,
            new if pair.provider == old else pair.provider,
        )
        for pair in mapping.pairs
    )


def _remove_link(model: ObjectModel, link) -> None:
    """Remove a link from an object model (maintenance scenario)."""
    # ObjectModel deliberately has no public unlink (models are mostly
    # append-only); the dynamics module owns this controlled mutation.
    model._links.pop(link.name)
    model._adjacency[link.end1.name].remove(link.name)
    model._adjacency[link.end2.name].remove(link.name)


class DeploymentState:
    """A live deployment: network + service + mapping + pipeline.

    Changes are applied through :meth:`apply`, which also re-runs the
    methodology incrementally and returns the
    :class:`~repro.core.pipeline.PipelineReport` (so callers see exactly
    which automated stages re-executed).
    """

    def __init__(
        self,
        infrastructure: ObjectModel,
        service: CompositeService,
        mapping: ServiceMapping,
    ):
        self.infrastructure = infrastructure
        self.service = service
        self.mapping = mapping
        self.pipeline = MethodologyPipeline()
        self.history: List[Tuple[ChangeOperation, FrozenSet[str]]] = []
        self._sync_pipeline(frozenset(MODELS))

    def topology_has(self, name: str) -> bool:
        return self.infrastructure.has_instance(name)

    def _sync_pipeline(self, touched: FrozenSet[str]) -> None:
        if "network" in touched:
            self.pipeline.set_infrastructure(self.infrastructure)
        if "service" in touched:
            self.pipeline.set_service(self.service)
        if "mapping" in touched:
            self.pipeline.set_mapping(self.mapping)

    def run(self, **kwargs) -> PipelineReport:
        """Run (or incrementally re-run) the automated steps."""
        return self.pipeline.run(**kwargs)

    def apply(self, operation: ChangeOperation, **kwargs) -> PipelineReport:
        """Apply *operation*, resync only the affected models, and re-run."""
        operation.apply(self)
        touched = operation.affected_models()
        self.history.append((operation, touched))
        self._sync_pipeline(touched)
        return self.run(**kwargs)

    @property
    def upsim(self):
        return self.pipeline.upsim
