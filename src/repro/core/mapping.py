"""Service mapping pairs: binding atomic services to ICT components.

"A mapping of two specific instances requester and provider to the ICT
infrastructure, that defines the user-perceived scope, is referred to as
service mapping pair" (Section I).  The mapping is "the key mechanism to
support dynamicity as it allows to change service requesters and providers
with minimal effort" (Section VI-D): user mobility, service migration and
topology changes only ever touch this small XML file, never the service
description.

The XML schema is exactly Figure 3::

    <servicemapping>
      <atomicservice id="atomic_service_1">
        <requester id="component_a"></requester>
        <provider id="component_b"></provider>
      </atomicservice>
      ...
    </servicemapping>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import MappingError
from repro.network.topology import Topology
from repro.services.composite import CompositeService

__all__ = ["ServiceMappingPair", "ServiceMapping"]


@dataclass(frozen=True)
class ServiceMappingPair:
    """One row of Table I: atomic service → (requester, provider)."""

    atomic_service: str
    requester: str
    provider: str

    def __post_init__(self):
        for field_name in ("atomic_service", "requester", "provider"):
            value = getattr(self, field_name)
            if not value or not isinstance(value, str):
                raise MappingError(
                    f"service mapping pair: {field_name} must be a non-empty "
                    f"string, got {value!r}"
                )

    def reversed(self) -> "ServiceMappingPair":
        """The same atomic service with requester/provider swapped.

        Consecutive printing-service steps alternate direction (Table I:
        ``login_to_printer`` is P2→printS, ``send_document_list`` is
        printS→P2); this helper builds such alternations.
        """
        return ServiceMappingPair(self.atomic_service, self.provider, self.requester)

    def endpoints(self) -> tuple[str, str]:
        return (self.requester, self.provider)


class ServiceMapping:
    """An ordered collection of service mapping pairs, keyed by atomic
    service name ("with their atomic service as unique key",
    Section VI-D)."""

    def __init__(self, pairs: Iterable[ServiceMappingPair] = ()):
        self._pairs: Dict[str, ServiceMappingPair] = {}
        for pair in pairs:
            self.add(pair)

    # -- population ---------------------------------------------------------

    def add(self, pair: ServiceMappingPair) -> ServiceMappingPair:
        if pair.atomic_service in self._pairs:
            raise MappingError(
                f"mapping already contains a pair for atomic service "
                f"{pair.atomic_service!r}"
            )
        self._pairs[pair.atomic_service] = pair
        return pair

    def set_pair(self, atomic_service: str, requester: str, provider: str) -> ServiceMappingPair:
        """Add or replace the pair for *atomic_service*.

        Replacement is the paper's "minor adjustments to the service
        mapping" that switch the analysis to a different user perspective
        (Section VI-H).
        """
        pair = ServiceMappingPair(atomic_service, requester, provider)
        self._pairs[atomic_service] = pair
        return pair

    def remove(self, atomic_service: str) -> None:
        if atomic_service not in self._pairs:
            raise MappingError(f"no mapping pair for {atomic_service!r}")
        del self._pairs[atomic_service]

    # -- access ----------------------------------------------------------------

    def pair_for(self, atomic_service: str) -> ServiceMappingPair:
        try:
            return self._pairs[atomic_service]
        except KeyError:
            raise MappingError(
                f"no mapping pair for atomic service {atomic_service!r}"
            ) from None

    def has_pair(self, atomic_service: str) -> bool:
        return atomic_service in self._pairs

    @property
    def pairs(self) -> List[ServiceMappingPair]:
        return list(self._pairs.values())

    def pairs_for_service(self, service: CompositeService) -> List[ServiceMappingPair]:
        """The pairs relevant for *service*, in its execution order.

        "Additional service mapping pairs could be listed in the mapping
        file to support other services.  However, they will be ignored when
        the corresponding atomic service is irrelevant for the analyzed
        service" (Section VI-D) — this method implements that filter.
        Raises :class:`MappingError` if any executed atomic service lacks a
        pair.
        """
        result: List[ServiceMappingPair] = []
        for name in service.execution_order():
            if not self.has_pair(name):
                raise MappingError(
                    f"composite service {service.name!r} executes atomic "
                    f"service {name!r} with no mapping pair"
                )
            result.append(self._pairs[name])
        return result

    def validate_against(self, topology: Topology) -> List[str]:
        """Check that all mapped components exist in *topology*.

        Returns problem descriptions (empty when consistent) — the
        pre-flight check of methodology Step 6, where mapping elements are
        "matched to ICT components of the infrastructure".
        """
        problems: List[str] = []
        for pair in self._pairs.values():
            for role, component in (
                ("requester", pair.requester),
                ("provider", pair.provider),
            ):
                if not topology.has_node(component):
                    problems.append(
                        f"atomic service {pair.atomic_service!r}: {role} "
                        f"{component!r} not in infrastructure"
                    )
        return problems

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[ServiceMappingPair]:
        return iter(self._pairs.values())

    # -- XML round trip (Figure 3) ----------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element("servicemapping")
        for pair in self._pairs.values():
            service_elem = ET.SubElement(root, "atomicservice", id=pair.atomic_service)
            ET.SubElement(service_elem, "requester", id=pair.requester)
            ET.SubElement(service_elem, "provider", id=pair.provider)
        ET.indent(root)
        return ET.tostring(root, encoding="unicode", xml_declaration=True)

    @classmethod
    def from_xml(cls, text: str) -> "ServiceMapping":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise MappingError(f"malformed mapping XML: {exc}") from exc
        if root.tag != "servicemapping":
            raise MappingError(
                f"expected root element 'servicemapping', got {root.tag!r}"
            )
        mapping = cls()
        for service_elem in root:
            if service_elem.tag != "atomicservice":
                raise MappingError(
                    f"unexpected element {service_elem.tag!r} in mapping file"
                )
            service_id = service_elem.get("id")
            if not service_id:
                raise MappingError("atomicservice element without id attribute")
            requester_elem = service_elem.find("requester")
            provider_elem = service_elem.find("provider")
            if requester_elem is None or provider_elem is None:
                raise MappingError(
                    f"atomic service {service_id!r}: mapping must name both "
                    f"requester and provider"
                )
            mapping.add(
                ServiceMappingPair(
                    service_id,
                    requester_elem.get("id") or "",
                    provider_elem.get("id") or "",
                )
            )
        return mapping

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_xml())

    @classmethod
    def load(cls, path: str) -> "ServiceMapping":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read())
