"""Core of the methodology: mapping, path discovery, UPSIM generation.

This package implements the paper's primary contribution (Sections IV–V):
service mapping pairs (Figure 3), all-paths discovery between requester
and provider (Step 7), UPSIM generation by path merging (Step 8,
Definition 2), the Figure 1 context model, and the eight-step pipeline
with incremental re-execution for dynamic environments.
"""

from repro.core.context import CONTEXT_CLASS_NAMES, context_model
from repro.core.dynamics import (
    ChangeOperation,
    ComponentAddition,
    DeploymentState,
    LinkChange,
    ServiceMigration,
    ServiceSubstitution,
    UserMove,
)
from repro.core.diversity import (
    DiversityReport,
    diversity_report,
    edge_connectivity,
    node_connectivity,
    shared_components,
)
from repro.core.mapping import ServiceMapping, ServiceMappingPair
from repro.core.pathdiscovery import (
    Path,
    PathSet,
    count_paths,
    discover_paths,
    discover_paths_networkx,
    discover_paths_reference,
    iter_paths,
    iter_paths_reference,
)
from repro.core.engine import (
    CompiledTopology,
    block_cache_clear,
    block_cache_info,
    compile_topology,
    discover_delta,
    discover_many,
    discover_many_delta,
    engine_stats,
    path_cache_clear,
    path_cache_info,
    reset_engine_stats,
)
from repro.core.pipeline import MethodologyPipeline, PipelineReport, StageReport
from repro.core.upsim import UPSIM, generate_upsim, upsim_name

# churn composes engine + dependability.bdd, whose import chains loop back
# through this package — it must come after the modules above are bound
from repro.core.churn import (
    ChurnEvent,
    ChurnPolicy,
    ChurnReport,
    ChurnStream,
    ComponentCrash,
    ComponentRestore,
    EpochSnapshot,
    LinkCut,
    LinkFlap,
    LinkRestore,
    LiveEvaluator,
    MigrateProvider,
    MoveUser,
    QuarantinedEvent,
    SnapshotView,
)

__all__ = [
    "DiversityReport",
    "diversity_report",
    "node_connectivity",
    "edge_connectivity",
    "shared_components",
    "ServiceMapping",
    "ServiceMappingPair",
    "ChangeOperation",
    "UserMove",
    "ServiceMigration",
    "LinkChange",
    "ComponentAddition",
    "ServiceSubstitution",
    "DeploymentState",
    "Path",
    "PathSet",
    "discover_paths",
    "discover_paths_networkx",
    "discover_paths_reference",
    "count_paths",
    "iter_paths",
    "iter_paths_reference",
    "ChurnEvent",
    "ChurnPolicy",
    "ChurnReport",
    "ChurnStream",
    "ComponentCrash",
    "ComponentRestore",
    "EpochSnapshot",
    "LinkCut",
    "LinkFlap",
    "LinkRestore",
    "LiveEvaluator",
    "MigrateProvider",
    "MoveUser",
    "QuarantinedEvent",
    "SnapshotView",
    "CompiledTopology",
    "compile_topology",
    "discover_delta",
    "discover_many",
    "discover_many_delta",
    "engine_stats",
    "reset_engine_stats",
    "path_cache_info",
    "path_cache_clear",
    "block_cache_info",
    "block_cache_clear",
    "UPSIM",
    "generate_upsim",
    "upsim_name",
    "MethodologyPipeline",
    "PipelineReport",
    "StageReport",
    "context_model",
    "CONTEXT_CLASS_NAMES",
]
