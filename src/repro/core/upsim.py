"""UPSIM generation: merging discovered paths into the output model.

Definition 2: "Given an ICT infrastructure N, a providing service instance
Sp, and a service client Sc … a user-perceived service infrastructure
model N_UPSIM ⊆ N is that part of N which includes all components, their
properties and relations hosting the atomic services used to compose a
specific service provided by Sp for Sc."

Methodology Step 8 (Section VI-H): the generation "behaves like a filter
on the complete topology, where only nodes which appear at least once in
the discovered paths are preserved.  Multiple occurrences are ignored."
The output is a UML object diagram whose instance specifications "have the
same signature as in the original ICT infrastructure" so that class
properties (MTBF, MTTR, …) are automatically inherited (Section V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.mapping import ServiceMapping, ServiceMappingPair
from repro.core.pathdiscovery import PathSet, discover_paths
from repro.errors import PathDiscoveryError, UnreachablePairError
from repro.network.topology import Topology
from repro.services.composite import CompositeService
from repro.uml.objects import ObjectModel

__all__ = ["UPSIM", "generate_upsim", "upsim_name"]


def upsim_name(service_name: str, mapping: ServiceMapping) -> str:
    """Canonical UPSIM model name, e.g. ``upsim_printing_t1_printS``.

    Uses the requester of the first pair and the provider of the first
    pair as the user-facing labels (the "pair requester and provider" of
    the service invocation as a whole).
    """
    pairs = mapping.pairs
    if not pairs:
        return f"upsim_{service_name}"
    return f"upsim_{service_name}_{pairs[0].requester}_{pairs[0].provider}"


@dataclass
class UPSIM:
    """The generated user-perceived service infrastructure model.

    Attributes
    ----------
    model:
        The output UML object diagram (instances shared with the source
        infrastructure, so signatures and class properties are preserved).
    service_name:
        The composite service the UPSIM was generated for.
    path_sets:
        Per atomic service, the discovered :class:`PathSet` (Step 7 output).
    contributions:
        For every retained component, the set of atomic services whose
        paths visit it — provenance for the §VII troubleshooting use-case
        ("a quick overview on which ICT components can be the cause").
    """

    model: ObjectModel
    service_name: str
    path_sets: Dict[str, PathSet] = field(default_factory=dict)
    contributions: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def component_names(self) -> List[str]:
        return self.model.instance_names()

    @property
    def component_count(self) -> int:
        return len(self.model)

    def components_for(self, atomic_service: str) -> Set[str]:
        """Components used by one atomic service's requester/provider pair."""
        if atomic_service not in self.path_sets:
            raise PathDiscoveryError(
                f"UPSIM has no path set for atomic service {atomic_service!r}"
            )
        return self.path_sets[atomic_service].nodes()

    def used_links(self) -> Set[Tuple[str, str]]:
        """Links traversed by at least one discovered path."""
        result: Set[Tuple[str, str]] = set()
        for path_set in self.path_sets.values():
            result |= path_set.links()
        return result

    def topology(self) -> Topology:
        return Topology(self.model)

    def signatures(self) -> List[str]:
        """The ``name:Class`` labels, as drawn in Figures 11 and 12."""
        return sorted(inst.signature for inst in self.model.instances)


def generate_upsim(
    infrastructure: ObjectModel | Topology,
    service: CompositeService,
    mapping: ServiceMapping,
    *,
    max_depth: Optional[int] = None,
    max_paths: Optional[int] = None,
    path_sets: Optional[Dict[str, PathSet]] = None,
    partial: bool = False,
) -> UPSIM:
    """Generate the UPSIM for *service* under *mapping* (Steps 7 + 8).

    ``path_sets`` accepts already-discovered Step-7 results keyed by
    atomic service (as :class:`MethodologyPipeline` supplies them), so a
    pipeline run enumerates each mapping pair exactly once.  An entry is
    only trusted when its endpoints match the pair's current mapping;
    anything missing or stale is discovered here.

    Path discovery runs once per distinct unordered (requester, provider)
    endpoint pair and is reused for atomic services that alternate
    direction (in an undirected infrastructure the path set is symmetric;
    reversing each path keeps provenance faithful to the pair's
    orientation).

    Raises :class:`PathDiscoveryError` if any executed atomic service has
    no connecting path — a service whose components cannot communicate has
    no user-perceived infrastructure.  With ``partial=True`` (the
    resilient pipeline's degraded mode) pathless pairs are *skipped*
    instead: a supplied **empty** PathSet marks a pair as known
    unreachable without re-running its discovery, and the result covers
    only the reachable pairs.  :class:`UnreachablePairError` is still
    raised when no pair at all is reachable — an empty UPSIM has no
    user-perceived infrastructure to model.
    """
    topology = (
        infrastructure
        if isinstance(infrastructure, Topology)
        else Topology(infrastructure)
    )
    pairs = mapping.pairs_for_service(service)

    cache: Dict[Tuple[str, str], PathSet] = {}
    result_sets: Dict[str, PathSet] = {}
    for pair in pairs:
        key = (pair.requester, pair.provider)
        reverse_key = (pair.provider, pair.requester)
        supplied = path_sets.get(pair.atomic_service) if path_sets else None
        if (
            supplied is not None
            and (supplied.requester, supplied.provider) == key
        ):
            discovered = supplied
            cache.setdefault(key, supplied)
        elif key in cache:
            discovered = cache[key]
        elif reverse_key in cache:
            source = cache[reverse_key]
            discovered = PathSet(
                pair.requester,
                pair.provider,
                [tuple(reversed(path)) for path in source.paths],
                truncated=source.truncated,
            )
            cache[key] = discovered
        else:
            try:
                discovered = discover_paths(
                    topology,
                    pair.requester,
                    pair.provider,
                    max_depth=max_depth,
                    max_paths=max_paths,
                )
            except PathDiscoveryError:
                # a crashed/unknown endpoint: in partial mode that pair is
                # simply unreachable, like any other pathless pair
                if not partial:
                    raise
                discovered = PathSet(pair.requester, pair.provider)
            cache[key] = discovered
        if not discovered:
            if partial:
                continue
            raise PathDiscoveryError(
                f"atomic service {pair.atomic_service!r}: no path between "
                f"requester {pair.requester!r} and provider {pair.provider!r}"
            )
        result_sets[pair.atomic_service] = discovered

    if partial and not result_sets:
        raise UnreachablePairError(
            pairs[0].requester if pairs else "?",
            pairs[0].provider if pairs else "?",
            "no atomic service of the composite has any surviving path",
        )

    # Step 8: merge into a single topology — the node-filter semantics.
    retained: Set[str] = set()
    contributions: Dict[str, Set[str]] = {}
    for atomic_service, path_set in result_sets.items():
        for node in path_set.nodes():
            retained.add(node)
            contributions.setdefault(node, set()).add(atomic_service)

    model = topology.model.subgraph(retained, upsim_name(service.name, mapping))
    return UPSIM(
        model=model,
        service_name=service.name,
        path_sets=result_sets,
        contributions=contributions,
    )
