"""The eight-step UPSIM methodology pipeline (Section V-B, Figure 4).

Steps 1–4 provide the input models (profiles + class diagram, object
diagram, activity diagram, mapping XML); Steps 5–8 are "then fully
automated": import into the model space, import the mapping, discover
paths, generate the UPSIM.

:class:`MethodologyPipeline` orchestrates all steps with *incremental
re-execution*: each input setter invalidates exactly the downstream stages
that depend on it, reproducing the paper's dynamicity analysis
(Section V-A3) —

* changing only the **mapping** (user mobility within known positions,
  service migration) re-runs Steps 6–8 and leaves the imported UML models
  untouched;
* changing the **infrastructure** (topology change) re-runs Steps 5–8;
* substituting the **service description** re-runs the service import and
  Steps 6–8 but not the infrastructure import;
* changing the **fault plan** (:meth:`set_fault_plan`) re-runs Steps 7–8
  on a copy-on-write overlay — the cheap path for "what does the UPSIM
  look like when switch S3 is down?".

Every :meth:`run` returns a :class:`PipelineReport` listing, per stage,
whether it executed or was reused from cache, and how long it took — the
quantity benchmark ``test_bench_dynamicity.py`` sweeps.

Failure semantics.  The default is **strict**: any failing stage raises,
and an unreachable mapping pair aborts Step 8 — exactly the seed
behavior.  Passing ``resilience=ResiliencePolicy(...)`` switches to
**graceful degradation**: stages are error-isolated (a failure is
recorded on the :class:`StageReport` and downstream stages are skipped,
never crashed into), Step 7 runs under per-pair timeouts and bounded
retries, unreachable or stalled pairs become structured
:class:`~repro.resilience.runner.PairDiagnostic` records on the report,
and Step 8 produces a *partial* UPSIM covering the reachable pairs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, TYPE_CHECKING

from repro.core.engine import discover_many
from repro.core.mapping import ServiceMapping
from repro.core.pathdiscovery import PathSet
from repro.core.upsim import UPSIM, generate_upsim
from repro.errors import MappingError, ReproError, UnreachablePairError
from repro.network.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.services.composite import CompositeService
from repro.uml.objects import ObjectModel
from repro.vpm.importers import (
    INSTANCES_NS,
    MAPPING_NS,
    PATHS_NS,
    MappingImporter,
    UMLImporter,
    load_paths,
    store_paths,
)
from repro.vpm.modelspace import ModelSpace
from repro.vpm.patterns import Pattern
from repro.vpm.transform import Transformation

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import at load
    from repro.resilience.faults import FaultPlan
    from repro.resilience.runner import PairDiagnostic, ResiliencePolicy
    from repro.workload.plane import PopulationReport as _PopulationReport
    from repro.workload.population import Population

__all__ = ["MethodologyPipeline", "PipelineReport", "StageReport"]

#: Automated stages in execution order (paper step numbers 5-8).
STAGES = ("import_uml", "import_mapping", "discover_paths", "generate_upsim")

#: The optional population-scale stage (Step 9).  Deliberately *not* part
#: of :data:`STAGES`: it only runs when a population is attached, and the
#: incremental-invalidation tests pin the Step 5-8 stage list.
POPULATION_STAGE = "evaluate_population"

_M_RUNS = _metrics.counter(
    "repro_pipeline_runs_total", "MethodologyPipeline.run() invocations"
)
_M_STAGE_RUNS = _metrics.counter(
    "repro_pipeline_stage_runs_total",
    "Pipeline stage executions (incremental reuses not counted)",
    labelnames=("stage",),
)
_M_STAGE_REUSES = _metrics.counter(
    "repro_pipeline_stage_reuses_total",
    "Pipeline stages satisfied from the incremental cache",
    labelnames=("stage",),
)
_M_STAGE_SECONDS = _metrics.histogram(
    "repro_pipeline_stage_seconds",
    "Wall time of executed pipeline stages",
    labelnames=("stage",),
)


@dataclass
class StageReport:
    """Execution record of one automated stage."""

    stage: str
    executed: bool
    seconds: float
    #: failure description when the stage failed or was skipped in
    #: resilient mode (``None`` on success or cache reuse)
    error: Optional[str] = None
    #: the trace span covering this stage's execution (``None`` when the
    #: stage was reused from cache or tracing is disabled)
    span: Optional[_trace.Span] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@contextmanager
def _executed_stage(report: PipelineReport, name: str) -> Iterator[StageReport]:
    """Record one executing stage under a ``pipeline.<stage>`` span.

    ``seconds`` is stamped in a ``finally`` so failed stages keep their
    elapsed time (the old success-path-only assignment leaked the timer —
    a raising stage reported 0.0s)."""
    entry = StageReport(name, True, 0.0)
    report.stages.append(entry)
    _M_STAGE_RUNS.labels(stage=name).inc()
    start = time.perf_counter()
    try:
        with _trace.span(f"pipeline.{name}") as span_:
            if isinstance(span_, _trace.Span):
                entry.span = span_
            yield entry
    finally:
        entry.seconds = time.perf_counter() - start
        _M_STAGE_SECONDS.labels(stage=name).observe(entry.seconds)


def _reused_stage(report: PipelineReport, name: str) -> None:
    report.stages.append(StageReport(name, False, 0.0))
    _M_STAGE_REUSES.labels(stage=name).inc()


@dataclass
class PipelineReport:
    """Result of one :meth:`MethodologyPipeline.run` invocation."""

    stages: List[StageReport] = field(default_factory=list)
    upsim: Optional[UPSIM] = None
    #: population-scale evaluation result (optional Step 9; ``None``
    #: unless a population was attached with ``set_population``)
    population: Optional["_PopulationReport"] = None
    #: per-pair discovery outcomes (resilient runs; empty when strict)
    diagnostics: List["PairDiagnostic"] = field(default_factory=list)
    #: True when the run degraded: a stage failed, or at least one
    #: mapping pair contributed no paths to the generated UPSIM
    partial: bool = False

    def executed_stages(self) -> List[str]:
        return [s.stage for s in self.stages if s.executed]

    def reused_stages(self) -> List[str]:
        return [s.stage for s in self.stages if not s.executed and s.ok]

    def failed_stages(self) -> List[str]:
        return [s.stage for s in self.stages if s.error is not None]

    def unreachable_pairs(self) -> List["PairDiagnostic"]:
        return [d for d in self.diagnostics if not d.ok]

    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages if s.executed)


class MethodologyPipeline:
    """Stateful orchestration of the methodology with incremental updates."""

    def __init__(self):
        self._infrastructure: Optional[ObjectModel] = None
        self._service: Optional[CompositeService] = None
        self._mapping: Optional[ServiceMapping] = None
        self._fault_plan: Optional["FaultPlan"] = None
        self._fault_tick: Optional[int] = None
        self._dirty: Set[str] = set(STAGES)
        self._path_sets: Optional[Dict[str, PathSet]] = None
        self._diagnostics: List["PairDiagnostic"] = []
        self._discovery_mode: Optional[str] = None
        self._population: Optional["Population"] = None
        self._user_component: Optional[str] = None
        self._population_report: Optional["_PopulationReport"] = None
        self._population_shards: Optional[int] = None
        self.space: Optional[ModelSpace] = None
        self.upsim: Optional[UPSIM] = None

    # -- Steps 1-4: inputs -----------------------------------------------------

    def set_infrastructure(self, infrastructure: ObjectModel) -> "MethodologyPipeline":
        """Provide the object diagram (output of Steps 1+2).

        Invalidates every automated stage: "changes to the network topology
        require updating … the network model and mapping"."""
        self._infrastructure = infrastructure
        self._dirty |= set(STAGES) | {POPULATION_STAGE}
        return self

    def set_service(self, service: CompositeService) -> "MethodologyPipeline":
        """Provide the composite service description (Step 3).

        Substituting a service re-imports the UML models (the activity
        import is part of Step 5) and everything downstream."""
        self._service = service
        self._dirty |= set(STAGES) | {POPULATION_STAGE}
        return self

    def set_mapping(self, mapping: ServiceMapping) -> "MethodologyPipeline":
        """Provide the service mapping (Step 4).

        Only invalidates Steps 6–8 — the documented cheap path for user
        mobility and service migration."""
        self._mapping = mapping
        self._dirty |= {"import_mapping", "discover_paths", "generate_upsim",
                        POPULATION_STAGE}
        return self

    def set_fault_plan(
        self,
        plan: Optional["FaultPlan"],
        *,
        tick: Optional[int] = None,
    ) -> "MethodologyPipeline":
        """Inject (or clear, with ``None``) a fault plan for Steps 7–8.

        The infrastructure model is never touched: discovery and UPSIM
        generation run on a copy-on-write
        :class:`~repro.resilience.overlay.FaultOverlayTopology`, so only
        Steps 7–8 are invalidated — the same cheap path as a mapping
        change.  *plan* also accepts ``"crash:c1"``-style spec strings or
        an iterable of them; *tick* resolves flapping schedules.
        """
        if plan is not None:
            from repro.resilience.faults import FaultPlan

            if not isinstance(plan, FaultPlan):
                plan = FaultPlan.parse(plan)
        self._fault_plan = plan
        self._fault_tick = tick
        self._dirty |= {"discover_paths", "generate_upsim", POPULATION_STAGE}
        return self

    @property
    def fault_plan(self) -> Optional["FaultPlan"]:
        return self._fault_plan

    def set_population(
        self,
        population: Optional["Population"],
        *,
        user_component: Optional[str] = None,
    ) -> "MethodologyPipeline":
        """Attach (or clear, with ``None``) a user population for Step 9.

        When a population is set, every :meth:`run` finishes with an
        optional ninth stage: the mapping is treated as a *template*
        describing one user position (*user_component*, defaulting to the
        requester of the mapping's first pair), and the vectorized
        evaluation plane (:func:`repro.workload.evaluate_population`)
        computes per-user availability for every attachment in the
        population.  The stage participates in incremental re-execution:
        mapping-only updates re-run it, while an unchanged configuration
        reuses the cached :class:`~repro.workload.PopulationReport`.
        """
        self._population = population
        self._user_component = user_component
        self._population_report = None
        if population is None:
            self._dirty.discard(POPULATION_STAGE)
        else:
            self._dirty.add(POPULATION_STAGE)
        return self

    # -- Steps 5-8: automation ---------------------------------------------------

    def _require_inputs(self) -> None:
        missing = [
            name
            for name, value in (
                ("infrastructure", self._infrastructure),
                ("service", self._service),
                ("mapping", self._mapping),
            )
            if value is None
        ]
        if missing:
            raise ReproError(
                f"pipeline inputs missing: {missing}; provide them with the "
                f"set_* methods (methodology Steps 1-4)"
            )

    def _topology(self) -> Topology:
        """The analyzed topology view: nominal, or the fault overlay."""
        assert self._infrastructure is not None
        topology = Topology(self._infrastructure)
        if self._fault_plan is not None and len(self._fault_plan):
            return self._fault_plan.apply(topology, tick=self._fault_tick)
        return topology

    def run(
        self,
        *,
        max_depth: Optional[int] = None,
        max_paths: Optional[int] = None,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
        resilience: Optional["ResiliencePolicy"] = None,
        kernel: Optional[str] = None,
        reorder: Optional[str] = None,
        compile_jobs: Optional[int] = None,
    ) -> PipelineReport:
        """Execute the automated Steps 5–8, skipping up-to-date stages.

        With ``jobs`` > 1, Step 7 fans the independent mapping pairs out
        over a thread pool (:func:`repro.core.engine.discover_many`); the
        serial default and the pair-keyed collection keep stored results
        deterministically ordered either way.

        ``resilience`` switches failure semantics from strict (raise on
        the first failing stage or unreachable pair) to graceful
        degradation — see the module docstring.  ``resilience.jobs``
        overrides *jobs* when set.

        ``shards`` fans the optional Step-9 population evaluation out
        over shared-memory workers (see :meth:`set_population`); it is
        ignored when no population is attached.

        ``kernel`` (``"bdd"``/``"ie"``/``"enum"``) pre-selects the
        availability evaluator for the analysis that follows Step 8:
        with ``"bdd"`` the service structure is compiled into the
        memoized BDD kernel as part of Step 8, so the first
        :meth:`analyze` (and every campaign evaluation of this UPSIM)
        starts from a warm cache.

        ``reorder`` selects the BDD dynamic variable-reordering mode for
        the Step-8 compile ("auto"/"sift"/"none"; ``None`` defers to
        :func:`repro.dependability.bdd.configure_compile`), and
        ``compile_jobs`` > 1 fans the Step-9 population kernel compiles
        out over the persistent compile pool.
        """
        self._require_inputs()
        assert self._infrastructure and self._service and self._mapping

        # Strict and resilient discovery have different outputs (the latter
        # degrades unreachable pairs to empty PathSets and records
        # diagnostics), so cached Step-7 results do not carry across modes.
        mode = "strict" if resilience is None else "resilient"
        if mode != self._discovery_mode:
            self._dirty |= {"discover_paths", "generate_upsim"}
            self._discovery_mode = mode

        if kernel is not None:
            from repro.analysis.exact import KERNELS

            if kernel not in KERNELS:
                raise ReproError(
                    f"unknown availability kernel {kernel!r}; "
                    f"expected one of {KERNELS}"
                )

        report = PipelineReport()
        _M_RUNS.inc()

        with _trace.span("pipeline.run", mode=mode, jobs=jobs or 1) as run_span:
            if resilience is None:
                self._run_stages(
                    report, max_depth, max_paths, jobs, None, kernel, reorder
                )
                self._run_population_stage(report, shards, jobs, compile_jobs)
                report.upsim = self.upsim
                run_span.set(executed=len(report.executed_stages()))
                return report

            # resilient mode: per-stage error isolation — a failing stage is
            # recorded, its dependents are skipped, and the report returns
            try:
                self._run_stages(
                    report,
                    max_depth,
                    max_paths,
                    jobs,
                    resilience,
                    kernel,
                    reorder,
                )
            except ReproError as exc:
                failed = (
                    report.stages[-1].stage
                    if report.stages
                    else "import_uml"
                )
                if report.stages and report.stages[-1].error is None:
                    report.stages[-1].error = str(exc)
                    report.stages[-1].executed = True
                for stage in STAGES[STAGES.index(failed) + 1 :]:
                    report.stages.append(
                        StageReport(
                            stage,
                            False,
                            0.0,
                            error=f"skipped: upstream stage {failed!r} failed",
                        )
                    )
                report.partial = True
            report.diagnostics = list(self._diagnostics)
            if report.unreachable_pairs() or report.failed_stages():
                report.partial = True
            if not report.failed_stages():
                # Step 9 only runs on a healthy Step 5-8 chain: a partial
                # UPSIM means some positions are unreachable, and the
                # population numbers would silently misrepresent them
                self._run_population_stage(report, shards, jobs, compile_jobs)
            report.upsim = self.upsim
            run_span.set(
                executed=len(report.executed_stages()), partial=report.partial
            )
            return report

    def _run_stages(
        self,
        report: PipelineReport,
        max_depth: Optional[int],
        max_paths: Optional[int],
        jobs: Optional[int],
        resilience: Optional["ResiliencePolicy"],
        kernel: Optional[str] = None,
        reorder: Optional[str] = None,
    ) -> None:
        assert self._infrastructure and self._service and self._mapping

        # Step 5: import UML models into the model space
        if "import_uml" in self._dirty:
            with _executed_stage(report, "import_uml"):
                self.space = ModelSpace()
                importer = UMLImporter(self.space)
                importer.import_object_model(self._infrastructure)
                importer.import_activity(self._service.activity)
                self._dirty.discard("import_uml")
        else:
            _reused_stage(report, "import_uml")
        assert self.space is not None

        # Step 6: import the service mapping
        if "import_mapping" in self._dirty:
            with _executed_stage(report, "import_mapping"):
                self._clear_namespace(MAPPING_NS)
                problems = self._mapping.validate_against(
                    Topology(self._infrastructure)
                )
                if problems:
                    raise MappingError(
                        f"mapping inconsistent with infrastructure: {problems}"
                    )
                MappingImporter(self.space).import_mapping(
                    _RelevantPairs(
                        self._mapping.pairs_for_service(self._service)
                    )
                )
                self._dirty.discard("import_mapping")
        else:
            _reused_stage(report, "import_mapping")

        # Step 7: discover all paths per mapping pair, store in the space
        if "discover_paths" in self._dirty:
            with _executed_stage(report, "discover_paths") as entry:
                self._clear_namespace(PATHS_NS)
                topology = self._topology()
                pairs = self._mapping.pairs_for_service(self._service)
                endpoint_pairs = [(p.requester, p.provider) for p in pairs]
                self._diagnostics = []
                if resilience is None:
                    discovered = discover_many(
                        topology,
                        endpoint_pairs,
                        max_depth=max_depth,
                        max_paths=max_paths,
                        jobs=jobs,
                    )
                else:
                    from repro.resilience.runner import discover_many_resilient

                    if resilience.jobs is None and jobs is not None:
                        from dataclasses import replace

                        resilience = replace(resilience, jobs=jobs)
                    outcome = discover_many_resilient(
                        topology,
                        endpoint_pairs,
                        max_depth=max_depth,
                        max_paths=max_paths,
                        policy=resilience,
                    )
                    self._diagnostics = list(outcome.diagnostics)
                    # unreachable pairs degrade to an *empty* PathSet: Step 8
                    # skips them in partial mode without re-running discovery
                    discovered = {
                        pair: outcome.path_sets.get(
                            pair, PathSet(pair[0], pair[1])
                        )
                        for pair in dict.fromkeys(endpoint_pairs)
                    }
                self._path_sets = {}
                for pair in pairs:
                    path_set = discovered[(pair.requester, pair.provider)]
                    self._path_sets[pair.atomic_service] = path_set
                    store_paths(self.space, pair.atomic_service, path_set.paths)
                if entry.span is not None:
                    entry.span.set(pairs=len(endpoint_pairs))
                self._dirty.discard("discover_paths")
        else:
            _reused_stage(report, "discover_paths")

        # Step 8: generate the UPSIM (model-space filter + object diagram).
        # The Step-7 PathSets are threaded through so each run enumerates
        # every mapping pair exactly once.
        if "generate_upsim" in self._dirty:
            with _executed_stage(report, "generate_upsim"):
                try:
                    self.upsim = generate_upsim(
                        self._topology(),
                        self._service,
                        self._mapping,
                        max_depth=max_depth,
                        max_paths=max_paths,
                        path_sets=self._path_sets,
                        partial=resilience is not None,
                    )
                except UnreachablePairError:
                    # resilient mode only: nothing at all is reachable — there
                    # is no UPSIM, but the diagnostics say why, pair by pair
                    if resilience is None:
                        raise
                    self.upsim = None
                    raise
                self._mark_upsim_entities()
                if kernel is not None:
                    self._warm_kernel(
                        kernel,
                        resilient=resilience is not None,
                        reorder=reorder,
                    )
                self._dirty.discard("generate_upsim")
        else:
            _reused_stage(report, "generate_upsim")
            if kernel is not None and self.upsim is not None:
                # a reused Step 8 still warms the kernel cache (memoized —
                # free when an earlier run already compiled the structure)
                self._warm_kernel(
                    kernel, resilient=resilience is not None, reorder=reorder
                )

    def _run_population_stage(
        self,
        report: PipelineReport,
        shards: Optional[int],
        jobs: Optional[int],
        compile_jobs: Optional[int] = None,
    ) -> None:
        """Optional Step 9: population-scale evaluation (see
        :meth:`set_population`).  A no-op when no population is attached;
        otherwise executes or reuses like any other incremental stage.
        A ``shards`` value different from the cached run's re-executes
        (the numbers agree, but the recorded shard timings would lie).
        """
        if self._population is None:
            return
        assert self._mapping is not None and self._service is not None
        if (
            POPULATION_STAGE not in self._dirty
            and self._population_report is not None
            and self._population_shards == shards
        ):
            _reused_stage(report, POPULATION_STAGE)
            report.population = self._population_report
            return
        from repro.workload.plane import evaluate_population
        from repro.workload.population import mapping_for_user

        with _executed_stage(report, POPULATION_STAGE) as entry:
            user_component = self._user_component
            if user_component is None:
                pairs = self._mapping.pairs_for_service(self._service)
                user_component = pairs[0].requester
            factory = mapping_for_user(self._mapping, user_component)
            self._population_report = evaluate_population(
                self._topology(),
                self._service,
                factory,
                self._population,
                shards=shards,
                jobs=jobs,
                compile_jobs=compile_jobs,
            )
            self._population_shards = shards
            self._dirty.discard(POPULATION_STAGE)
            if entry.span is not None:
                entry.span.set(
                    users=self._population.n_users,
                    keys=self._population_report.keys,
                )
        report.population = self._population_report

    def _warm_kernel(
        self,
        kernel: str,
        *,
        resilient: bool,
        reorder: Optional[str] = None,
    ) -> None:
        """Pre-compile the availability kernel for the generated UPSIM.

        Only ``"bdd"`` has structure to compile; the reference kernels
        evaluate from scratch every time.  Partial UPSIMs (resilient mode
        with unreachable pairs) have no total structure function — the
        warm-up is skipped rather than failed.
        """
        if kernel != "bdd" or self.upsim is None:
            return
        from repro.analysis.transformations import service_availability_kernel

        try:
            service_availability_kernel(
                self.upsim, include_links=True, reorder=reorder
            )
        except ReproError:
            if not resilient:
                raise

    def analyze(self, **kwargs):
        """Section-VII availability analysis of the generated UPSIM
        (delegates to :func:`repro.analysis.report.analyze_upsim`; pass
        ``kernel=...``, ``dimensions=[...]`` and friends through as
        keyword arguments)."""
        if self.upsim is None:
            raise ReproError(
                "pipeline has not produced a UPSIM yet; call run() first"
            )
        from repro.analysis.report import analyze_upsim

        return analyze_upsim(self.upsim, **kwargs)

    def evaluate_dimensions(self, names=None, **kwargs):
        """Registry-backed multi-dimension evaluation of the Step-8 UPSIM
        (delegates to :func:`repro.dimensions.evaluate_dimensions`): one
        compile and one structure pass serve every selected
        probability-valued dimension, reusing the kernel that
        ``run(kernel="bdd")`` warms."""
        if self.upsim is None:
            raise ReproError(
                "pipeline has not produced a UPSIM yet; call run() first"
            )
        from repro.dimensions import evaluate_dimensions

        return evaluate_dimensions(self.upsim, names, **kwargs)

    # -- model-space bookkeeping ---------------------------------------------

    def _clear_namespace(self, namespace: str) -> None:
        assert self.space is not None
        if self.space.has_entity(namespace):
            self.space.delete_entity(namespace)

    def _mark_upsim_entities(self) -> None:
        """Copy retained instances into the ``upsim`` namespace via a
        transformation rule — the model-space face of the Step 8 filter.

        The rule's pattern matches every instance entity visited by at
        least one stored path; its action creates a mirror entity under
        ``upsim.<model-name>`` related to the original with ``sameAs``.
        """
        assert self.space is not None and self.upsim is not None
        space = self.space
        container_fqn = f"upsim.{self.upsim.model.name}"
        self._clear_namespace("upsim")
        container = space.create_entity(container_fqn)

        visited = {
            relation.target.fqn
            for relation in space.relations("visits")
        }

        pattern = Pattern("retained-instances").entity(
            "n",
            namespace=INSTANCES_NS,
            predicate=lambda entity: entity.fqn in visited,
        )

        def copy_instance(model_space, match):
            original = match["n"]
            mirror = container.child(original.name, value=original.value)
            model_space.create_relation("sameAs", mirror, original)

        Transformation("upsim-generation").add_rule(
            "copy-retained", pattern, copy_instance
        ).run(space)

    def stored_paths(self, atomic_service: str) -> List[List[str]]:
        """Paths stored in the model space for *atomic_service* (Step 7)."""
        if self.space is None:
            raise ReproError("pipeline has not run yet")
        return load_paths(self.space, atomic_service)

    def upsim_entity_names(self) -> List[str]:
        """Instance names mirrored into the ``upsim`` namespace (Step 8)."""
        if self.space is None or self.upsim is None:
            raise ReproError("pipeline has not run yet")
        container = self.space.entity(f"upsim.{self.upsim.model.name}")
        return sorted(child.name for child in container.children)


class _RelevantPairs:
    """Adapter exposing only the pairs relevant to the analyzed service.

    Irrelevant pairs in the mapping file "will be ignored when the
    corresponding atomic service is irrelevant for the analyzed service"
    (Section VI-D) — so only the relevant ones are imported.
    """

    def __init__(self, pairs):
        self.pairs = list(pairs)
