"""Exact user-perceived availability by vectorized state enumeration.

The service-level availability is the probability that **every** distinct
requester/provider pair is connected — a conjunction of path-set unions
with heavily shared components (the whole point of the UPSIM: redundant
core components appear in every pair's paths).  Naive series/parallel
multiplication is wrong under sharing; this module computes the exact
value by enumerating all component states, vectorized with numpy:

* the 2^n component states are represented as the integers ``0 … 2^n-1``
  (bit *i* = component *i* up);
* each path becomes a bitmask ``m``; the path works in exactly the states
  with ``state & m == m`` — one vectorized comparison;
* state probabilities are accumulated multiplicatively per bit, again
  vectorized.

With n components this costs O(2^n) memory/time; :data:`MAX_COMPONENTS`
caps n at 22 (≈ 34 MB of float64), which comfortably covers case-study
UPSIMs.  Larger systems should use
:class:`repro.dependability.montecarlo.TwoTerminalMC` or the RBD with
factoring.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

import numpy as np

from repro.errors import AnalysisError

__all__ = ["system_availability", "pair_availability", "MAX_COMPONENTS"]

#: Exact enumeration bound (2^22 states ≈ 34 MB of probabilities).
MAX_COMPONENTS = 22


def _state_probabilities(availabilities: Sequence[float]) -> np.ndarray:
    """Probability of every component state, as a 2^n vector.

    Built iteratively: for each component the state space doubles, the
    lower half (bit clear = down) scaled by ``1-A``, the upper half by
    ``A``.
    """
    probabilities = np.array([1.0])
    for availability in availabilities:
        probabilities = np.concatenate(
            (probabilities * (1.0 - availability), probabilities * availability)
        )
    return probabilities


def system_availability(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    availabilities: Dict[str, float],
) -> float:
    """Exact P(every group has at least one fully-available path set).

    *path_set_groups* holds, per requester/provider pair, that pair's path
    component sets.  Shared components across groups are handled exactly —
    each physical component is one bit, regardless of how many paths and
    pairs it appears in.
    """
    if not path_set_groups:
        raise AnalysisError("system_availability requires at least one group")
    components: List[str] = sorted(
        {c for group in path_set_groups for path in group for c in path}
    )
    if not components:
        raise AnalysisError("system_availability requires at least one component")
    if len(components) > MAX_COMPONENTS:
        raise AnalysisError(
            f"exact enumeration over {len(components)} components exceeds the "
            f"{MAX_COMPONENTS}-component bound; use Monte Carlo instead"
        )
    missing = [c for c in components if c not in availabilities]
    if missing:
        raise AnalysisError(f"no availability for components {missing}")
    values = [availabilities[c] for c in components]
    for name, value in zip(components, values):
        if not 0.0 <= value <= 1.0:
            raise AnalysisError(
                f"availability of {name!r} must be in [0, 1], got {value}"
            )

    bit = {name: 1 << i for i, name in enumerate(components)}
    n = len(components)
    # bit i of the state integer = component i up.  The probability vector
    # from _state_probabilities is indexed identically: appending component
    # i doubled the space with bit i as the new most-significant bit.
    states = np.arange(1 << n, dtype=np.uint64)
    probabilities = _state_probabilities(values)

    system_up = np.ones(1 << n, dtype=bool)
    for group in path_set_groups:
        if not group:
            raise AnalysisError("a pair with no path sets is never connected")
        group_up = np.zeros(1 << n, dtype=bool)
        for path in group:
            mask = np.uint64(sum(bit[c] for c in path))
            group_up |= (states & mask) == mask
        system_up &= group_up
    return float(probabilities[system_up].sum())


def pair_availability(
    path_sets: Sequence[FrozenSet[str]],
    availabilities: Dict[str, float],
) -> float:
    """Exact availability of a single requester/provider pair."""
    return system_availability([list(path_sets)], availabilities)
