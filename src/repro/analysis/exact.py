"""Exact user-perceived availability by vectorized state enumeration.

The service-level availability is the probability that **every** distinct
requester/provider pair is connected — a conjunction of path-set unions
with heavily shared components (the whole point of the UPSIM: redundant
core components appear in every pair's paths).  Naive series/parallel
multiplication is wrong under sharing; this module computes the exact
value by enumerating all component states, vectorized with numpy:

* the 2^n component states are represented as the integers ``0 … 2^n-1``
  (bit *i* = component *i* up);
* each path becomes a bitmask ``m``; the path works in exactly the states
  with ``state & m == m`` — one vectorized comparison;
* state probabilities are accumulated multiplicatively per bit, again
  vectorized.

With n components this costs O(2^n) memory/time; :data:`MAX_COMPONENTS`
caps n at 22 (≈ 34 MB of float64), which comfortably covers case-study
UPSIMs.  The enumeration is kept as the ``*_reference`` oracle; passing
``kernel="bdd"`` routes the same queries through the compiled
:mod:`repro.dependability.bdd` kernel — one O(|BDD|) pass per probability
vector, no component bound, structure memoized across calls — and
``kernel="ie"`` through inclusion–exclusion over the system path sets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.obs import metrics as _metrics

__all__ = [
    "system_availability",
    "pair_availability",
    "system_availability_reference",
    "pair_availability_reference",
    "system_path_sets",
    "MAX_COMPONENTS",
    "KERNELS",
    "DEFAULT_KERNEL",
]

#: Recognized evaluation kernels: compiled BDD, inclusion–exclusion over
#: system path sets, and the seed's state enumeration.
KERNELS = ("bdd", "ie", "enum")

#: The default evaluation kernel **everywhere** — ``system_availability``,
#: ``analyze_upsim``, what-if impact, campaigns, the pipeline.  The
#: compiled BDD is exact, has no component bound, and memoizes by
#: structure; the enumeration stays available as the explicit
#: ``kernel="enum"`` oracle.  (Historically ``exact.py`` defaulted to
#: enum while the analysis layer defaulted to bdd; a single constant
#: keeps every entry point agreeing.)
DEFAULT_KERNEL = "bdd"

#: Exact enumeration bound (2^22 states ≈ 34 MB of probabilities).
MAX_COMPONENTS = 22

_M_EVALUATIONS = _metrics.counter(
    "repro_analysis_evaluations_total",
    "system_availability evaluations by kernel",
    labelnames=("kernel",),
)


def _state_probabilities(availabilities: Sequence[float]) -> np.ndarray:
    """Probability of every component state, as a 2^n vector.

    Built iteratively: for each component the state space doubles, the
    lower half (bit clear = down) scaled by ``1-A``, the upper half by
    ``A``.
    """
    probabilities = np.array([1.0])
    for availability in availabilities:
        probabilities = np.concatenate(
            (probabilities * (1.0 - availability), probabilities * availability)
        )
    return probabilities


def system_availability(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    availabilities: Dict[str, float],
    *,
    kernel: str = DEFAULT_KERNEL,
) -> float:
    """Exact P(every group has at least one fully-available path set).

    *path_set_groups* holds, per requester/provider pair, that pair's path
    component sets.  Shared components across groups are handled exactly —
    each physical component is one random variable, regardless of how many
    paths and pairs it appears in.

    *kernel* selects the evaluation route (default
    :data:`DEFAULT_KERNEL`): ``"enum"`` is the
    seed's vectorized state enumeration, bounded by :data:`MAX_COMPONENTS`;
    ``"bdd"`` compiles the structure into a memoized
    :class:`repro.dependability.bdd.AvailabilityKernel` (no component
    bound, and repeat evaluations of the same structure only re-run the
    O(|BDD|) probability pass); ``"ie"`` runs inclusion–exclusion over the
    minimized system path sets (bounded by
    :data:`repro.dependability.cutsets.MAX_INCLUSION_EXCLUSION_SETS`).
    All three agree to within floating-point noise.
    """
    if kernel not in KERNELS:
        raise AnalysisError(
            f"unknown availability kernel {kernel!r}; expected one of {KERNELS}"
        )
    _M_EVALUATIONS.labels(kernel=kernel).inc()
    if kernel == "bdd":
        from repro.dependability.bdd import system_availability_bdd

        return system_availability_bdd(path_set_groups, availabilities)
    if kernel == "ie":
        from repro.dependability.cutsets import inclusion_exclusion

        return inclusion_exclusion(
            system_path_sets(path_set_groups), availabilities
        )
    return system_availability_reference(path_set_groups, availabilities)


def system_path_sets(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
) -> List[FrozenSet[str]]:
    """The system-level minimal path sets: the conjunction over groups
    distributes into unions of one path per group, minimized.

    This is the shape inclusion–exclusion needs; the cross product can
    grow multiplicatively, so the incremental result is re-minimized after
    every group and the inclusion–exclusion bound is enforced along the
    way.
    """
    from repro.dependability.cutsets import (
        MAX_INCLUSION_EXCLUSION_SETS,
        minimize_sets,
    )

    if not path_set_groups:
        raise AnalysisError("system_availability requires at least one group")
    sets: List[FrozenSet[str]] = [frozenset()]
    for group in path_set_groups:
        if not group:
            raise AnalysisError("a pair with no path sets is never connected")
        sets = minimize_sets(
            partial | path for partial in sets for path in group
        )
        if len(sets) > MAX_INCLUSION_EXCLUSION_SETS:
            raise AnalysisError(
                f"system path sets exceed {MAX_INCLUSION_EXCLUSION_SETS} "
                f"(got {len(sets)}); use the bdd kernel instead"
            )
    if sets == [frozenset()]:
        raise AnalysisError("system_availability requires at least one component")
    return sets


def system_availability_reference(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    availabilities: Dict[str, float],
) -> float:
    """The seed evaluator — vectorized enumeration of all 2^n component
    states.  Kept verbatim as the oracle the compiled kernels are tested
    against (PR-1 ``*_reference`` convention).
    """
    if not path_set_groups:
        raise AnalysisError("system_availability requires at least one group")
    components: List[str] = sorted(
        {c for group in path_set_groups for path in group for c in path}
    )
    if not components:
        raise AnalysisError("system_availability requires at least one component")
    if len(components) > MAX_COMPONENTS:
        raise AnalysisError(
            f"exact enumeration over {len(components)} components exceeds the "
            f"{MAX_COMPONENTS}-component bound; use Monte Carlo instead"
        )
    missing = [c for c in components if c not in availabilities]
    if missing:
        raise AnalysisError(f"no availability for components {missing}")
    values = [availabilities[c] for c in components]
    for name, value in zip(components, values):
        if not 0.0 <= value <= 1.0:
            raise AnalysisError(
                f"availability of {name!r} must be in [0, 1], got {value}"
            )

    bit = {name: 1 << i for i, name in enumerate(components)}
    n = len(components)
    # bit i of the state integer = component i up.  The probability vector
    # from _state_probabilities is indexed identically: appending component
    # i doubled the space with bit i as the new most-significant bit.
    states = np.arange(1 << n, dtype=np.uint64)
    probabilities = _state_probabilities(values)

    system_up = np.ones(1 << n, dtype=bool)
    for group in path_set_groups:
        if not group:
            raise AnalysisError("a pair with no path sets is never connected")
        group_up = np.zeros(1 << n, dtype=bool)
        for path in group:
            mask = np.uint64(sum(bit[c] for c in path))
            group_up |= (states & mask) == mask
        system_up &= group_up
    return float(probabilities[system_up].sum())


def pair_availability(
    path_sets: Sequence[FrozenSet[str]],
    availabilities: Dict[str, float],
    *,
    kernel: str = DEFAULT_KERNEL,
) -> float:
    """Exact availability of a single requester/provider pair."""
    return system_availability([list(path_sets)], availabilities, kernel=kernel)


def pair_availability_reference(
    path_sets: Sequence[FrozenSet[str]],
    availabilities: Dict[str, float],
) -> float:
    """Seed pair evaluator (state enumeration) — the equivalence oracle."""
    return system_availability_reference([list(path_sets)], availabilities)
