"""SLA checking and improvement planning on UPSIMs.

Closes the loop the paper's introduction opens: "businesses are heavily
dependent on predictable service delivery with time, performance and
dependability constraints.  Failing to meet these requirements can cause
a loss of profits."  Given a required availability (the SLA), this module

* checks whether a perspective meets it (:func:`check_sla`),
* and when it does not, proposes the cheapest-to-reason-about fixes
  (:func:`improvement_plan`): for each component, the availability the
  system would reach if that component were made perfect (the improvement
  potential), so operators see which upgrade can close the gap at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.exact import system_availability
from repro.analysis.transformations import (
    component_availabilities,
    service_path_set_groups,
)
from repro.core.upsim import UPSIM
from repro.dependability.availability import downtime_minutes_per_year
from repro.errors import AnalysisError

__all__ = ["SLACheck", "UpgradeOption", "check_sla", "improvement_plan"]


@dataclass(frozen=True)
class SLACheck:
    """Outcome of checking one UPSIM against a required availability."""

    service_name: str
    required: float
    achieved: float
    margin: float  # achieved - required; negative = violated
    allowed_downtime_minutes_per_year: float
    expected_downtime_minutes_per_year: float

    @property
    def met(self) -> bool:
        return self.margin >= 0.0


@dataclass(frozen=True)
class UpgradeOption:
    """Effect of making one component perfectly available."""

    component: str
    current_availability: float
    achievable: float
    closes_gap: bool


def check_sla(
    upsim: UPSIM,
    required: float,
    *,
    include_links: bool = True,
) -> SLACheck:
    """Check the UPSIM's service availability against *required*."""
    if not 0.0 <= required <= 1.0:
        raise AnalysisError(f"required availability must be in [0, 1], got {required}")
    table = component_availabilities(upsim.model, include_links=include_links)
    groups = service_path_set_groups(upsim, include_links=include_links)
    achieved = system_availability(groups, table)
    return SLACheck(
        service_name=upsim.service_name,
        required=required,
        achieved=achieved,
        margin=achieved - required,
        allowed_downtime_minutes_per_year=downtime_minutes_per_year(required),
        expected_downtime_minutes_per_year=downtime_minutes_per_year(achieved),
    )


def improvement_plan(
    upsim: UPSIM,
    required: float,
    *,
    include_links: bool = False,
    components: Optional[Sequence[str]] = None,
) -> List[UpgradeOption]:
    """Rank single-component upgrades by how close they get to the SLA.

    Each option assumes the component is made perfect (A = 1) — an upper
    bound on any real upgrade, so ``closes_gap=False`` is a definite
    verdict: no investment in that component alone can meet the SLA.
    Options are sorted by achievable availability, best first.
    """
    verdict = check_sla(upsim, required, include_links=include_links)
    table = component_availabilities(upsim.model, include_links=include_links)
    groups = service_path_set_groups(upsim, include_links=include_links)
    names = list(components) if components is not None else list(upsim.component_names)
    options: List[UpgradeOption] = []
    for name in names:
        if name not in table:
            raise AnalysisError(f"component {name!r} not in UPSIM")
        perturbed = dict(table)
        perturbed[name] = 1.0
        achievable = system_availability(groups, perturbed)
        options.append(
            UpgradeOption(
                component=name,
                current_availability=table[name],
                achievable=achievable,
                closes_gap=achievable >= required,
            )
        )
    options.sort(key=lambda option: (-option.achievable, option.component))
    return options
