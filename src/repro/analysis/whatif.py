"""What-if failure analysis on a UPSIM (the §VII troubleshooting use-case).

"The generated UPSIM can be used to visualize the set of ICT components
and their connections relevant for a particular pair requester and
provider.  This alone is very helpful in case of service problems, as it
provides a quick overview on which ICT components can be the cause."

:func:`failure_impact` answers the operational question directly: *if
component X fails, what happens to this service invocation?* — which
atomic services lose connectivity entirely, which merely lose redundancy,
and what the degraded availability is.  :func:`impact_table` runs it for
every UPSIM component and ranks by severity, producing the triage list a
service operator would start from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.exact import system_availability
from repro.analysis.transformations import (
    component_availabilities,
    pair_path_sets,
    service_path_set_groups,
)
from repro.core.upsim import UPSIM
from repro.errors import AnalysisError

__all__ = [
    "FailureImpact",
    "failure_impact",
    "combined_failure_impact",
    "impact_table",
]


@dataclass(frozen=True)
class FailureImpact:
    """Consequences of one component being down, for one UPSIM."""

    component: str
    #: atomic services with no remaining path (hard outage)
    disconnected_services: Tuple[str, ...]
    #: atomic services that lost at least one redundant path but still work
    degraded_services: Tuple[str, ...]
    #: service availability with the component forced down
    conditional_availability: float
    #: service availability with all components nominal
    baseline_availability: float

    @property
    def is_single_point_of_failure(self) -> bool:
        return bool(self.disconnected_services)

    @property
    def availability_loss(self) -> float:
        return self.baseline_availability - self.conditional_availability


def _surviving_paths(
    path_sets: Sequence[FrozenSet[str]], components: FrozenSet[str]
) -> List[FrozenSet[str]]:
    return [path for path in path_sets if not (path & components)]


def combined_failure_impact(
    upsim: UPSIM,
    components: Sequence[str],
    *,
    include_links: bool = True,
    availabilities: Optional[Dict[str, float]] = None,
) -> FailureImpact:
    """Assess *components* (nodes and/or ``a|b`` link names) all being down
    at once — the k-fault scenario a resilience campaign sweeps.

    With an empty sequence this degenerates to the nominal evaluation of
    the given availability table (useful for degrade-only fault plans,
    where nothing is structurally down but the table carries overridden
    MTBF/MTTR values).
    """
    table = (
        dict(availabilities)
        if availabilities is not None
        else component_availabilities(upsim.model, include_links=include_links)
    )
    down = frozenset(components)
    for component in down:
        if component not in table:
            raise AnalysisError(
                f"component {component!r} is not part of UPSIM "
                f"{upsim.model.name!r}"
            )

    disconnected: List[str] = []
    degraded: List[str] = []
    if down:
        for atomic_service, path_set in upsim.path_sets.items():
            sets = pair_path_sets(path_set, include_links=include_links)
            surviving = _surviving_paths(sets, down)
            if not surviving:
                disconnected.append(atomic_service)
            elif len(surviving) < len(sets):
                degraded.append(atomic_service)

    groups = service_path_set_groups(upsim, include_links=include_links)
    baseline = system_availability(groups, table)
    if down:
        forced = dict(table)
        for component in down:
            forced[component] = 0.0
        conditional = system_availability(groups, forced)
    else:
        conditional = baseline

    return FailureImpact(
        component="+".join(sorted(down)),
        disconnected_services=tuple(disconnected),
        degraded_services=tuple(degraded),
        conditional_availability=conditional,
        baseline_availability=baseline,
    )


def failure_impact(
    upsim: UPSIM,
    component: str,
    *,
    include_links: bool = True,
    availabilities: Optional[Dict[str, float]] = None,
) -> FailureImpact:
    """Assess the impact of *component* (a node or ``a|b`` link name) being
    down on every atomic service of the UPSIM."""
    return combined_failure_impact(
        upsim,
        (component,),
        include_links=include_links,
        availabilities=availabilities,
    )


def impact_table(
    upsim: UPSIM,
    *,
    include_links: bool = False,
    components: Optional[Sequence[str]] = None,
) -> List[FailureImpact]:
    """Failure impact for every UPSIM component (or the given subset),
    ranked most severe first (hard outages before degradations, then by
    availability loss).

    Defaults to node granularity (``include_links=False``) — the triage
    view an operator wants; pass ``include_links=True`` to rank cables too.
    """
    if components is not None:
        names = list(components)
    else:
        names = list(upsim.component_names)
        if include_links:
            from repro.dependability.cutsets import link_component_name

            names.extend(
                link_component_name(a, b) for a, b in sorted(upsim.used_links())
            )
    table = component_availabilities(upsim.model, include_links=include_links)
    impacts = [
        failure_impact(
            upsim, name, include_links=include_links, availabilities=table
        )
        for name in names
    ]
    impacts.sort(
        key=lambda impact: (
            -len(impact.disconnected_services),
            -impact.availability_loss,
            impact.component,
        )
    )
    return impacts
