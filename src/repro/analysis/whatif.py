"""What-if failure analysis on a UPSIM (the §VII troubleshooting use-case).

"The generated UPSIM can be used to visualize the set of ICT components
and their connections relevant for a particular pair requester and
provider.  This alone is very helpful in case of service problems, as it
provides a quick overview on which ICT components can be the cause."

:func:`failure_impact` answers the operational question directly: *if
component X fails, what happens to this service invocation?* — which
atomic services lose connectivity entirely, which merely lose redundancy,
and what the degraded availability is.  :func:`impact_table` runs it for
every UPSIM component and ranks by severity, producing the triage list a
service operator would start from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.exact import DEFAULT_KERNEL, KERNELS, system_availability
from repro.analysis.transformations import (
    component_availabilities,
    pair_path_sets,
    service_availability_kernel,
    service_path_set_groups,
)
from repro.core.upsim import UPSIM
from repro.errors import AnalysisError
from repro.obs import trace as _trace

__all__ = [
    "FailureImpact",
    "failure_impact",
    "combined_failure_impact",
    "impact_table",
]


@dataclass(frozen=True)
class FailureImpact:
    """Consequences of one component being down, for one UPSIM."""

    component: str
    #: atomic services with no remaining path (hard outage)
    disconnected_services: Tuple[str, ...]
    #: atomic services that lost at least one redundant path but still work
    degraded_services: Tuple[str, ...]
    #: service availability with the component forced down
    conditional_availability: float
    #: service availability with all components nominal
    baseline_availability: float

    @property
    def is_single_point_of_failure(self) -> bool:
        return bool(self.disconnected_services)

    @property
    def availability_loss(self) -> float:
        return self.baseline_availability - self.conditional_availability


def _surviving_paths(
    path_sets: Sequence[FrozenSet[str]], components: FrozenSet[str]
) -> List[FrozenSet[str]]:
    return [path for path in path_sets if not (path & components)]


def combined_failure_impact(
    upsim: UPSIM,
    components: Sequence[str],
    *,
    include_links: bool = True,
    availabilities: Optional[Dict[str, float]] = None,
    kernel: str = DEFAULT_KERNEL,
) -> FailureImpact:
    """Assess *components* (nodes and/or ``a|b`` link names) all being down
    at once — the k-fault scenario a resilience campaign sweeps.

    With an empty sequence this degenerates to the nominal evaluation of
    the given availability table (useful for degrade-only fault plans,
    where nothing is structurally down but the table carries overridden
    MTBF/MTTR values).

    The default ``kernel="bdd"`` compiles the service structure once (and
    finds it in the kernel cache on every subsequent call for the same
    UPSIM — a campaign sweeping hundreds of fault combinations pays one
    compilation); ``"enum"``/``"ie"`` route through
    :func:`repro.analysis.exact.system_availability`.
    """
    if kernel not in KERNELS:
        raise AnalysisError(
            f"unknown availability kernel {kernel!r}; expected one of {KERNELS}"
        )
    with _trace.span(
        "analysis.failure_impact", components=len(components), kernel=kernel
    ):
        return _combined_failure_impact(
            upsim,
            components,
            include_links=include_links,
            availabilities=availabilities,
            kernel=kernel,
        )


def _combined_failure_impact(
    upsim: UPSIM,
    components: Sequence[str],
    *,
    include_links: bool,
    availabilities: Optional[Dict[str, float]],
    kernel: str,
) -> FailureImpact:
    table = (
        dict(availabilities)
        if availabilities is not None
        else component_availabilities(upsim.model, include_links=include_links)
    )
    down = frozenset(components)
    for component in down:
        if component not in table:
            raise AnalysisError(
                f"component {component!r} is not part of UPSIM "
                f"{upsim.model.name!r}"
            )

    disconnected: List[str] = []
    degraded: List[str] = []
    if down:
        for atomic_service, path_set in upsim.path_sets.items():
            sets = pair_path_sets(path_set, include_links=include_links)
            surviving = _surviving_paths(sets, down)
            if not surviving:
                disconnected.append(atomic_service)
            elif len(surviving) < len(sets):
                degraded.append(atomic_service)

    if kernel == "bdd":
        compiled = service_availability_kernel(upsim, include_links=include_links)
        baseline = compiled.availability(table)
        if down:
            forced = dict(table)
            for component in down:
                forced[component] = 0.0
            conditional = compiled.availability(forced)
        else:
            conditional = baseline
    else:
        groups = service_path_set_groups(upsim, include_links=include_links)
        baseline = system_availability(groups, table, kernel=kernel)
        if down:
            forced = dict(table)
            for component in down:
                forced[component] = 0.0
            conditional = system_availability(groups, forced, kernel=kernel)
        else:
            conditional = baseline

    return FailureImpact(
        component="+".join(sorted(down)),
        disconnected_services=tuple(disconnected),
        degraded_services=tuple(degraded),
        conditional_availability=conditional,
        baseline_availability=baseline,
    )


def failure_impact(
    upsim: UPSIM,
    component: str,
    *,
    include_links: bool = True,
    availabilities: Optional[Dict[str, float]] = None,
    kernel: str = DEFAULT_KERNEL,
) -> FailureImpact:
    """Assess the impact of *component* (a node or ``a|b`` link name) being
    down on every atomic service of the UPSIM."""
    return combined_failure_impact(
        upsim,
        (component,),
        include_links=include_links,
        availabilities=availabilities,
        kernel=kernel,
    )


def impact_table(
    upsim: UPSIM,
    *,
    include_links: bool = False,
    components: Optional[Sequence[str]] = None,
    kernel: str = DEFAULT_KERNEL,
) -> List[FailureImpact]:
    """Failure impact for every UPSIM component (or the given subset),
    ranked most severe first (hard outages before degradations, then by
    availability loss).

    Defaults to node granularity (``include_links=False``) — the triage
    view an operator wants; pass ``include_links=True`` to rank cables too.

    With the default ``kernel="bdd"`` the whole scan is one batched
    :meth:`~repro.dependability.bdd.AvailabilityKernel.evaluate_many`
    sweep: one probability matrix with one row per candidate component,
    one vectorized DAG pass, instead of a full evaluation per component.
    """
    if components is not None:
        names = list(components)
    else:
        names = list(upsim.component_names)
        if include_links:
            from repro.dependability.cutsets import link_component_name

            names.extend(
                link_component_name(a, b) for a, b in sorted(upsim.used_links())
            )
    table = component_availabilities(upsim.model, include_links=include_links)
    with _trace.span(
        "analysis.impact_table", components=len(names), kernel=kernel
    ):
        if kernel == "bdd":
            impacts = _impact_table_batched(
                upsim, names, table, include_links=include_links
            )
        else:
            impacts = [
                failure_impact(
                    upsim,
                    name,
                    include_links=include_links,
                    availabilities=table,
                    kernel=kernel,
                )
                for name in names
            ]
    impacts.sort(
        key=lambda impact: (
            -len(impact.disconnected_services),
            -impact.availability_loss,
            impact.component,
        )
    )
    return impacts


def _impact_table_batched(
    upsim: UPSIM,
    names: Sequence[str],
    table: Dict[str, float],
    *,
    include_links: bool,
) -> List[FailureImpact]:
    """One compiled kernel, one probability matrix, one vectorized pass."""
    import numpy as np

    for name in names:
        if name not in table:
            raise AnalysisError(
                f"component {name!r} is not part of UPSIM {upsim.model.name!r}"
            )
    compiled = service_availability_kernel(upsim, include_links=include_links)
    base_vector = compiled.probability_vector(table)
    baseline = float(compiled.evaluate_many(base_vector[np.newaxis, :])[0])
    matrix = np.repeat(base_vector[np.newaxis, :], len(names), axis=0)
    for row, name in enumerate(names):
        column = compiled.index.get(name)
        if column is not None:
            matrix[row, column] = 0.0
    conditionals = compiled.evaluate_many(matrix)

    service_sets = {
        atomic_service: pair_path_sets(path_set, include_links=include_links)
        for atomic_service, path_set in upsim.path_sets.items()
    }
    impacts: List[FailureImpact] = []
    for row, name in enumerate(names):
        down = frozenset((name,))
        disconnected: List[str] = []
        degraded: List[str] = []
        for atomic_service, sets in service_sets.items():
            surviving = _surviving_paths(sets, down)
            if not surviving:
                disconnected.append(atomic_service)
            elif len(surviving) < len(sets):
                degraded.append(atomic_service)
        impacts.append(
            FailureImpact(
                component=name,
                disconnected_services=tuple(disconnected),
                degraded_services=tuple(degraded),
                conditional_availability=float(conditionals[row]),
                baseline_availability=baseline,
            )
        )
    return impacts
