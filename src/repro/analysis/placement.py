"""Provider selection: choosing the best provider for a user perspective.

The case study motivates multiple providers per atomic service ("each
service has at least one provider"; printing is load-balanced across
printers, Section VI).  Because the methodology makes per-pair analysis
cheap — a provider change is a mapping-only update — it enables an
optimization loop the paper's outlook implies: *for this requester, which
provider instance yields the best user-perceived dependability?*

:func:`rank_providers` runs that loop: for each candidate provider it
rewrites the mapping with :func:`repro.core.mapping.ServiceMapping.set_pair`
semantics, regenerates the UPSIM and scores the service availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.exact import system_availability
from repro.analysis.transformations import (
    component_availabilities,
    service_path_set_groups,
)
from repro.core.mapping import ServiceMapping, ServiceMappingPair
from repro.core.upsim import UPSIM, generate_upsim
from repro.errors import AnalysisError
from repro.network.topology import Topology
from repro.services.composite import CompositeService

__all__ = ["PlacementScore", "rank_providers"]


@dataclass(frozen=True)
class PlacementScore:
    """One candidate provider and the dependability it yields."""

    provider: str
    availability: float
    upsim_size: int


def _remap_provider(
    mapping: ServiceMapping, old_provider: str, new_provider: str
) -> ServiceMapping:
    """A copy of *mapping* with every occurrence of *old_provider*
    (as requester or provider) replaced by *new_provider*."""
    pairs: List[ServiceMappingPair] = []
    for pair in mapping.pairs:
        pairs.append(
            ServiceMappingPair(
                pair.atomic_service,
                new_provider if pair.requester == old_provider else pair.requester,
                new_provider if pair.provider == old_provider else pair.provider,
            )
        )
    return ServiceMapping(pairs)


def rank_providers(
    topology: Topology,
    service: CompositeService,
    base_mapping: ServiceMapping,
    *,
    role: str,
    candidates: Sequence[str],
    include_links: bool = True,
) -> List[PlacementScore]:
    """Score each candidate component in place of *role* in the mapping.

    Parameters
    ----------
    role:
        The component name to substitute (e.g. ``"p2"`` to try other
        printers, or ``"printS"`` to try other print servers).
    candidates:
        Candidate component names; each must exist in the topology.
        Typically ``topology.nodes_of_kind("Printer")``.

    Returns scores sorted best-first (highest availability, ties broken by
    smaller UPSIM — fewer components to depend on).
    """
    if not candidates:
        raise AnalysisError("rank_providers needs at least one candidate")
    mentioned = {
        name for pair in base_mapping.pairs for name in pair.endpoints()
    }
    if role not in mentioned:
        raise AnalysisError(
            f"role component {role!r} does not appear in the mapping"
        )
    scores: List[PlacementScore] = []
    for candidate in candidates:
        if not topology.has_node(candidate):
            raise AnalysisError(f"candidate {candidate!r} not in topology")
        mapping = _remap_provider(base_mapping, role, candidate)
        upsim = generate_upsim(topology, service, mapping)
        table = component_availabilities(
            upsim.model, include_links=include_links
        )
        groups = service_path_set_groups(upsim, include_links=include_links)
        availability = system_availability(groups, table)
        scores.append(
            PlacementScore(
                provider=candidate,
                availability=availability,
                upsim_size=upsim.component_count,
            )
        )
    scores.sort(key=lambda s: (-s.availability, s.upsim_size, s.provider))
    return scores
