"""User-perceived availability reports for a generated UPSIM.

Packages the full Section VII analysis of one service invocation
perspective: per atomic service the pair availability (exact, RBD, bounds,
Monte-Carlo cross-check), the composite-service availability, expected
annual downtime, and component importance ranking — rendered as the text
tables the examples and benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.exact import (
    DEFAULT_KERNEL,
    KERNELS,
    MAX_COMPONENTS,
    pair_availability,
    system_availability,
)
from repro.analysis.transformations import (
    component_availabilities,
    pair_path_sets,
    pair_rbd,
    service_availability_kernel,
    service_path_set_groups,
    service_rbd,
)
from repro.core.upsim import UPSIM
from repro.dependability.availability import downtime_minutes_per_year
from repro.dependability.cutsets import (
    esary_proschan_bounds,
    minimal_cut_sets,
    minimize_sets,
)
from repro.dependability.importance import (
    ImportanceRow,
    importance_from_birnbaum,
    importance_table,
)
from repro.dependability.montecarlo import MCEstimate
from repro.errors import AnalysisError
from repro.obs import trace as _trace
from repro.uml.objects import ObjectModel

__all__ = ["PairReport", "AvailabilityReport", "analyze_upsim"]


def _sample_service_availability(
    groups: Sequence[Sequence[FrozenSet[str]]],
    availabilities: Dict[str, float],
    *,
    samples: int,
    seed: int,
    batch: int = 262_144,
) -> MCEstimate:
    """Monte-Carlo estimate of P(every pair connected).

    The conjunction over pairs must be sampled *jointly* — concatenating
    each pair's path sets into independent samplers would compute the
    union, not the conjunction — so the union of all components is
    sampled once per trial and every group tested against it.  Runs in
    batches to bound peak memory.
    """
    import numpy as np

    components = sorted({c for group in groups for path in group for c in path})
    index = {name: i for i, name in enumerate(components)}
    avail = np.array([availabilities[c] for c in components])
    group_indices = [
        [
            np.array(sorted(index[c] for c in path), dtype=np.intp)
            for path in group
        ]
        for group in groups
    ]
    rng = np.random.default_rng(seed)
    remaining = samples
    up_count = 0
    while remaining > 0:
        current = min(remaining, batch)
        states = rng.random((current, len(components))) < avail
        up_all = np.ones(current, dtype=bool)
        for paths in group_indices:
            group_up = np.zeros(current, dtype=bool)
            for idx in paths:
                group_up |= states[:, idx].all(axis=1)
            up_all &= group_up
        up_count += int(up_all.sum())
        remaining -= current
    mean = up_count / samples
    stderr = float(np.sqrt(max(mean * (1.0 - mean), 1e-12) / samples))
    return MCEstimate(mean, stderr, samples)


@dataclass(frozen=True)
class PairReport:
    """Availability of one atomic service's requester/provider pair."""

    atomic_service: str
    requester: str
    provider: str
    path_count: int
    availability: float
    lower_bound: float
    upper_bound: float
    downtime_minutes_per_year: float
    min_cut_sets: Tuple[FrozenSet[str], ...]

    def smallest_cuts(self) -> List[FrozenSet[str]]:
        """The minimal cut sets of smallest order — the single points of
        failure when the order is 1."""
        if not self.min_cut_sets:
            return []
        smallest = min(len(cut) for cut in self.min_cut_sets)
        return [cut for cut in self.min_cut_sets if len(cut) == smallest]


@dataclass
class AvailabilityReport:
    """Full user-perceived dependability report for one UPSIM."""

    service_name: str
    pairs: List[PairReport]
    service_availability: float
    service_downtime_minutes_per_year: float
    importance: List[ImportanceRow] = field(default_factory=list)
    montecarlo: Optional[MCEstimate] = None
    #: Extra user-perceived dimensions (a
    #: :class:`repro.dimensions.DimensionReport`), present when
    #: :func:`analyze_upsim` was called with ``dimensions=``.
    dimensions: Optional[object] = None

    def pair(self, atomic_service: str) -> PairReport:
        for report in self.pairs:
            if report.atomic_service == atomic_service:
                return report
        raise AnalysisError(f"no pair report for atomic service {atomic_service!r}")

    def to_text(self) -> str:
        """Render the report as an aligned text table."""
        lines: List[str] = []
        lines.append(f"User-perceived availability report: {self.service_name}")
        lines.append("")
        header = (
            f"{'atomic service':<22} {'requester':<10} {'provider':<10} "
            f"{'paths':>5} {'availability':>14} {'downtime [min/y]':>17}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for pair in self.pairs:
            lines.append(
                f"{pair.atomic_service:<22} {pair.requester:<10} "
                f"{pair.provider:<10} {pair.path_count:>5} "
                f"{pair.availability:>14.9f} "
                f"{pair.downtime_minutes_per_year:>17.1f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'service (all pairs)':<50} "
            f"{self.service_availability:>14.9f} "
            f"{self.service_downtime_minutes_per_year:>17.1f}"
        )
        if self.montecarlo is not None:
            low, high = self.montecarlo.confidence_interval()
            lines.append(
                f"Monte-Carlo cross-check: {self.montecarlo.mean:.9f} "
                f"(95% CI [{low:.9f}, {high:.9f}], "
                f"n={self.montecarlo.samples})"
            )
        if self.dimensions is not None:
            lines.append("")
            lines.append(self.dimensions.to_text())
        if self.importance:
            lines.append("")
            lines.append("Component importance (Birnbaum ranking):")
            lines.append(
                f"{'component':<14} {'A_i':>12} {'Birnbaum':>12} "
                f"{'FV':>10} {'RAW':>10}"
            )
            for row in self.importance[:10]:
                lines.append(
                    f"{row.component:<14} {row.availability:>12.7f} "
                    f"{row.birnbaum:>12.3e} {row.fussell_vesely:>10.4f} "
                    f"{row.risk_achievement_worth:>10.1f}"
                )
        return "\n".join(lines)


def analyze_upsim(
    upsim: UPSIM,
    *,
    formula: str = "paper",
    include_links: bool = True,
    montecarlo_samples: int = 0,
    importance_components: int = 10,
    seed: int = 0,
    kernel: str = DEFAULT_KERNEL,
    dimensions: Optional[Sequence[str]] = None,
) -> AvailabilityReport:
    """Analyze a UPSIM end to end.

    Parameters
    ----------
    formula:
        ``"paper"`` applies Formula (1), ``"exact"`` the renewal formula.
    include_links:
        Whether link (connector) failures participate.
    montecarlo_samples:
        If > 0, add a Monte-Carlo cross-check of the service availability.
    importance_components:
        Number of node components to rank (0 disables).  Importance is
        evaluated against the exact service availability.
    dimensions:
        Registered dimension names to evaluate alongside the availability
        analysis (one shared structure pass —
        :func:`repro.dimensions.evaluate_dimensions`); the result lands
        in :attr:`AvailabilityReport.dimensions` and its ``to_text()``
        section.
    kernel:
        Evaluation route (see :data:`repro.analysis.exact.KERNELS`).  The
        default ``"bdd"`` compiles the service structure once and answers
        every query — pair and service availabilities, minimal cut sets,
        the full importance gradient — from the same DAG; it is exact at
        any component count.  ``"enum"``/``"ie"`` use the reference
        evaluators (enumeration falls back to Monte Carlo beyond
        :data:`~repro.analysis.exact.MAX_COMPONENTS` components).
    """
    if kernel not in KERNELS:
        raise AnalysisError(
            f"unknown availability kernel {kernel!r}; expected one of {KERNELS}"
        )
    with _trace.span(
        "analysis.analyze_upsim", service=upsim.service_name, kernel=kernel
    ):
        report = _analyze_upsim_traced(
            upsim,
            formula=formula,
            include_links=include_links,
            montecarlo_samples=montecarlo_samples,
            importance_components=importance_components,
            seed=seed,
            kernel=kernel,
        )
        if dimensions:
            from repro.dimensions import evaluate_dimensions

            report.dimensions = evaluate_dimensions(
                upsim,
                list(dimensions),
                include_links=include_links,
                formula=formula,
            )
        return report


def _analyze_upsim_traced(
    upsim: UPSIM,
    *,
    formula: str,
    include_links: bool,
    montecarlo_samples: int,
    importance_components: int,
    seed: int,
    kernel: str,
) -> AvailabilityReport:
    availabilities = component_availabilities(
        upsim.model, formula=formula, include_links=include_links
    )
    groups = service_path_set_groups(upsim, include_links=include_links)

    if kernel == "bdd":
        return _analyze_upsim_bdd(
            upsim,
            availabilities,
            groups,
            include_links=include_links,
            montecarlo_samples=montecarlo_samples,
            importance_components=importance_components,
            seed=seed,
        )

    pair_reports: List[PairReport] = []
    for atomic_service, path_set in upsim.path_sets.items():
        sets = minimize_sets(pair_path_sets(path_set, include_links=include_links))
        exact = pair_availability(sets, availabilities, kernel=kernel)
        cuts = minimal_cut_sets(sets)
        lower, upper = esary_proschan_bounds(sets, cuts, availabilities)
        pair_reports.append(
            PairReport(
                atomic_service=atomic_service,
                requester=path_set.requester,
                provider=path_set.provider,
                path_count=path_set.count,
                availability=exact,
                lower_bound=lower,
                upper_bound=upper,
                downtime_minutes_per_year=downtime_minutes_per_year(exact),
                min_cut_sets=tuple(cuts),
            )
        )

    component_count = len({c for group in groups for path in group for c in path})
    if kernel == "ie" or component_count <= MAX_COMPONENTS:
        service_availability = system_availability(
            groups, availabilities, kernel=kernel
        )
    else:
        # beyond the exact-enumeration bound: estimate with a large
        # vectorized Monte-Carlo run (factoring the service RBD would be
        # exponential in its many repeated components)
        service_availability = _sample_service_availability(
            groups, availabilities, samples=2_000_000, seed=seed
        ).mean

    montecarlo: Optional[MCEstimate] = None
    if montecarlo_samples > 0:
        montecarlo = _sample_service_availability(
            groups, availabilities, samples=montecarlo_samples, seed=seed
        )

    importance: List[ImportanceRow] = []
    if importance_components > 0:
        node_names = [name for name in upsim.component_names]

        if kernel == "ie" or component_count <= MAX_COMPONENTS:

            def evaluator(table: Dict[str, float]) -> float:
                return system_availability(groups, table, kernel=kernel)

        else:
            # beyond the exact bound: a fixed-seed MC evaluator keeps the
            # importance perturbations comparable (common random numbers)
            def evaluator(table: Dict[str, float]) -> float:
                return _sample_service_availability(
                    groups, table, samples=200_000, seed=seed
                ).mean

        importance = importance_table(evaluator, availabilities, node_names)[
            :importance_components
        ]

    return AvailabilityReport(
        service_name=upsim.service_name,
        pairs=pair_reports,
        service_availability=service_availability,
        service_downtime_minutes_per_year=downtime_minutes_per_year(
            service_availability
        ),
        importance=importance,
        montecarlo=montecarlo,
    )


def _analyze_upsim_bdd(
    upsim: UPSIM,
    availabilities: Dict[str, float],
    groups: Sequence[Sequence[FrozenSet[str]]],
    *,
    include_links: bool,
    montecarlo_samples: int,
    importance_components: int,
    seed: int,
) -> AvailabilityReport:
    """The compiled-kernel analysis route: every quantity of the report —
    all pair availabilities, the service availability, per-pair minimal
    cut sets and the full importance gradient — comes from one compiled
    BDD, evaluated in a handful of O(|BDD|) passes (the enumeration route
    re-enumerates 2^n states for each of those queries)."""
    kernel = service_availability_kernel(upsim, include_links=include_links)
    service_availability, group_values = kernel.evaluate_all(availabilities)

    # kernel groups are the distinct unordered pairs in first-seen order;
    # atomic services repeating a pair share its group (same keying as
    # transformations._distinct_pairs)
    group_index: Dict[Tuple[str, str], int] = {}
    group_cuts: Dict[int, Tuple[FrozenSet[str], ...]] = {}
    pair_reports: List[PairReport] = []
    for atomic_service, path_set in upsim.path_sets.items():
        key = tuple(sorted((path_set.requester, path_set.provider)))
        index = group_index.setdefault(key, len(group_index))
        if index not in group_cuts:
            group_cuts[index] = tuple(kernel.minimal_cut_sets(group=index))
        exact = group_values[index]
        cuts = group_cuts[index]
        lower, upper = esary_proschan_bounds(
            kernel.minimal_path_sets(group=index), cuts, availabilities
        )
        pair_reports.append(
            PairReport(
                atomic_service=atomic_service,
                requester=path_set.requester,
                provider=path_set.provider,
                path_count=path_set.count,
                availability=exact,
                lower_bound=lower,
                upper_bound=upper,
                downtime_minutes_per_year=downtime_minutes_per_year(exact),
                min_cut_sets=cuts,
            )
        )

    montecarlo: Optional[MCEstimate] = None
    if montecarlo_samples > 0:
        montecarlo = _sample_service_availability(
            groups, availabilities, samples=montecarlo_samples, seed=seed
        )

    importance: List[ImportanceRow] = []
    if importance_components > 0:
        importance = importance_from_birnbaum(
            availabilities,
            service_availability,
            kernel.birnbaum(availabilities),
            list(upsim.component_names),
        )[:importance_components]

    return AvailabilityReport(
        service_name=upsim.service_name,
        pairs=pair_reports,
        service_availability=service_availability,
        service_downtime_minutes_per_year=downtime_minutes_per_year(
            service_availability
        ),
        importance=importance,
        montecarlo=montecarlo,
    )
