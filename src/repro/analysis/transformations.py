"""Transformation of a UPSIM into dependability models (ref [20]).

Section VII: "Such analysis can be performed by transforming the UPSIM to
a reliability block diagram (RBD) or fault-tree (FT), in which entities
correspond to components of the UPSIM.  The availability for individual
components can be calculated using the component attributes MTBF and
MTTR, as seen in Formula 1."

This module provides that complementary transformation:

* :func:`component_availabilities` — Formula (1) over every UPSIM entity
  (instances *and* links, both carry the «Component» attributes);
* :func:`pair_rbd` — the parallel-of-series RBD of one atomic service's
  discovered paths (every redundant path a series branch);
* :func:`pair_fault_tree` — its dual fault tree;
* :func:`service_rbd` — the whole composite service: series over the
  distinct requester/provider pairs of their path-redundancy structures
  (every atomic service must execute, Section V-A2).

The RBDs contain repeated blocks wherever paths share components, so
evaluation must use factoring (the default ``method="auto"`` does).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.pathdiscovery import PathSet
from repro.core.upsim import UPSIM
from repro.dependability.availability import instance_availability, link_availability
from repro.dependability.cutsets import link_component_name, path_components
from repro.dependability.faulttree import FaultTreeNode, from_rbd
from repro.dependability.rbd import Block, Parallel, RBDNode, Series, simplify
from repro.errors import AnalysisError
from repro.network.topology import Topology
from repro.uml.objects import ObjectModel

__all__ = [
    "component_availabilities",
    "pair_rbd",
    "pair_fault_tree",
    "service_rbd",
    "pair_path_sets",
    "service_path_set_groups",
    "service_availability_kernel",
]


def component_availabilities(
    model: ObjectModel | Topology,
    *,
    formula: str = "paper",
    include_links: bool = True,
) -> Dict[str, float]:
    """Formula (1) for every instance (and link) of a model.

    Link availabilities are keyed by :func:`link_component_name` of their
    endpoints, matching the component names produced by
    :func:`repro.dependability.cutsets.path_components`.
    """
    object_model = model.model if isinstance(model, Topology) else model
    table: Dict[str, float] = {}
    for instance in object_model.instances:
        table[instance.name] = instance_availability(
            instance, formula=formula
        ).availability
    if include_links:
        for link in object_model.links:
            key = link_component_name(link.end1.name, link.end2.name)
            table[key] = link_availability(link, formula=formula).availability
    return table


def pair_path_sets(
    path_set: PathSet, *, include_links: bool = True
) -> List[FrozenSet[str]]:
    """Minimal component sets of the pair's discovered paths."""
    if not path_set:
        raise AnalysisError(
            f"pair ({path_set.requester!r}, {path_set.provider!r}) has no paths"
        )
    return [
        path_components(path, include_links=include_links)
        for path in path_set.paths
    ]


def pair_rbd(path_set: PathSet, *, include_links: bool = True) -> RBDNode:
    """The RBD of one atomic service: redundant paths in parallel, each a
    series of its components.

    Components shared between paths appear as repeated blocks; evaluating
    with ``method="auto"`` (factoring) keeps the result exact.
    """
    if not path_set:
        raise AnalysisError(
            f"pair ({path_set.requester!r}, {path_set.provider!r}) has no paths"
        )
    branches: List[RBDNode] = []
    for path in path_set.paths:
        blocks: List[RBDNode] = []
        for index, node in enumerate(path):
            blocks.append(Block(node))
            if include_links and index + 1 < len(path):
                blocks.append(Block(link_component_name(node, path[index + 1])))
        branches.append(Series(blocks) if len(blocks) > 1 else blocks[0])
    structure = Parallel(branches) if len(branches) > 1 else branches[0]
    return simplify(structure)


def pair_fault_tree(path_set: PathSet, *, include_links: bool = True) -> FaultTreeNode:
    """The dual fault tree of :func:`pair_rbd`."""
    return from_rbd(pair_rbd(path_set, include_links=include_links))


def _distinct_pairs(upsim: UPSIM) -> List[Tuple[Tuple[str, str], PathSet]]:
    """Distinct unordered (requester, provider) pairs of the UPSIM.

    Table I repeats pairs (``login_to_printer`` and ``select_documents``
    share (p2, printS)); repeated pairs describe the *same* connectivity
    event — their availability must be counted once, not multiplied.
    """
    seen: Dict[Tuple[str, str], PathSet] = {}
    for path_set in upsim.path_sets.values():
        key = tuple(sorted((path_set.requester, path_set.provider)))
        if key not in seen:
            seen[key] = path_set
    return list(seen.items())


def service_rbd(upsim: UPSIM, *, include_links: bool = True) -> RBDNode:
    """The composite-service RBD: series over distinct pairs.

    "It is assumed that each atomic service is being executed — in series
    or in parallel" (Section V-A2): all atomic services are required, so
    pair structures combine in series regardless of activity-diagram
    parallelism (a parallel branch is still mandatory).  Identical pairs
    are deduplicated — see :func:`_distinct_pairs`.
    """
    branches = [
        pair_rbd(path_set, include_links=include_links)
        for _, path_set in _distinct_pairs(upsim)
    ]
    if not branches:
        raise AnalysisError("UPSIM has no path sets")
    structure = Series(branches) if len(branches) > 1 else branches[0]
    return simplify(structure)


def service_path_set_groups(
    upsim: UPSIM, *, include_links: bool = True
) -> List[List[FrozenSet[str]]]:
    """Per distinct pair, the component path sets — the input shape of the
    exact evaluator (:func:`repro.analysis.exact.system_availability`)."""
    return [
        pair_path_sets(path_set, include_links=include_links)
        for _, path_set in _distinct_pairs(upsim)
    ]


def service_availability_kernel(
    upsim: UPSIM, *, include_links: bool = True, reorder: Optional[str] = None
):
    """The compiled BDD kernel of the whole service structure.

    Groups follow :func:`service_path_set_groups` order (distinct pairs),
    so ``kernel.group_roots[i]`` is the i-th distinct pair's function.
    The variable order comes from the engine's CSR ids
    (:func:`repro.dependability.bdd.order_from_topology`) and *reorder*
    selects the dynamic-reordering mode on top of that seed order
    (``None`` defers to the process-wide ``configure_compile`` default).
    The compiled kernel is memoized by structure fingerprint — a campaign
    re-evaluating the same UPSIM under hundreds of fault combinations
    compiles once.
    """
    from repro.dependability.bdd import compile_structure, order_from_topology

    groups = service_path_set_groups(upsim, include_links=include_links)
    components = {c for group in groups for path in group for c in path}
    order = order_from_topology(Topology(upsim.model), components)
    return compile_structure(groups, order=order, reorder=reorder)
