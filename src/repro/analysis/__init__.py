"""UPSIM → dependability-model bridge and reporting (Section VII, ref [20]).

Transforms a generated UPSIM into reliability block diagrams and fault
trees, computes exact user-perceived availability (compiled BDD kernel,
inclusion–exclusion, state enumeration), and renders per-pair reports.
"""

from repro.analysis.exact import (
    DEFAULT_KERNEL,
    KERNELS,
    MAX_COMPONENTS,
    pair_availability,
    pair_availability_reference,
    system_availability,
    system_availability_reference,
    system_path_sets,
)
from repro.analysis.placement import PlacementScore, rank_providers
from repro.analysis.report import AvailabilityReport, PairReport, analyze_upsim
from repro.analysis.transformations import (
    component_availabilities,
    pair_fault_tree,
    pair_path_sets,
    pair_rbd,
    service_availability_kernel,
    service_path_set_groups,
    service_rbd,
)
from repro.analysis.sla import SLACheck, UpgradeOption, check_sla, improvement_plan
from repro.analysis.whatif import (
    FailureImpact,
    combined_failure_impact,
    failure_impact,
    impact_table,
)

__all__ = [
    "SLACheck",
    "UpgradeOption",
    "check_sla",
    "improvement_plan",
    "FailureImpact",
    "failure_impact",
    "combined_failure_impact",
    "impact_table",
    "PlacementScore",
    "rank_providers",
    "system_availability",
    "system_availability_reference",
    "pair_availability",
    "pair_availability_reference",
    "system_path_sets",
    "KERNELS",
    "DEFAULT_KERNEL",
    "MAX_COMPONENTS",
    "component_availabilities",
    "service_availability_kernel",
    "pair_rbd",
    "pair_fault_tree",
    "pair_path_sets",
    "service_rbd",
    "service_path_set_groups",
    "AvailabilityReport",
    "PairReport",
    "analyze_upsim",
]
