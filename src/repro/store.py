"""Content-addressed on-disk artifact store: zero-copy warm starts.

The engine and the BDD kernel already key every compiled structure by a
blake2b content fingerprint, and every hot structure already linearizes
to flat numpy arrays (CSR ``indptr``/``indices``, the kernel's
``var``/``low``/``high`` node tables).  This module persists exactly
those arrays so a **fresh process** — a CLI run, a campaign worker, a
future service deploy — skips recompilation entirely:

* objects live under ``<root>/objects/<digest[:2]>/<digest>`` where the
  digest is a blake2b hash of ``(kind, key parts)`` — the same logical
  key the in-process LRUs use, so the store is a transparent second
  cache tier underneath them (LRU miss → store lookup → recompile with
  write-through);
* writes are atomic (``tmp`` file + :func:`os.replace`) and serialized
  by an advisory file lock, so concurrent writers — shard workers,
  parallel CLI runs — can race on the same object without ever exposing
  a half-written file;
* every container carries a payload digest that is verified on open; a
  truncated or corrupted artifact reads as a **miss** (the file is
  deleted and the caller recompiles) — integrity problems never crash
  an evaluation;
* loaded arrays are read-only views over an ``mmap`` of the file
  (``ACCESS_READ``): zero copy, zero parse, and safe against concurrent
  GC — POSIX keeps unlinked pages valid while any reader maps them;
* :meth:`ArtifactStore.gc` bounds the store size by evicting the least
  recently *used* objects first (reads bump mtime).

Container format (version 1, little-endian)::

    [ 0:4  ]  magic  b"RPAS"
    [ 4:6  ]  format version (u16) == 1
    [ 6:8  ]  reserved (u16) == 0
    [ 8:12 ]  meta length in bytes (u32)
    [12:20 ]  payload length in bytes (u64)
    [20:36 ]  blake2b-128 digest of everything after the header
    [36:...]  meta JSON (kind, key parts, scalars, array directory)
    [ pad to 64-byte alignment ]
    [ payload: concatenated arrays, each 64-byte aligned ]

The array directory records ``(name, dtype, shape, offset)`` with
offsets relative to the payload start, so readers slice typed views
straight out of the mapping.  Meta stays JSON (names tables, scalars,
provenance) — it is tiny next to the arrays.

Nothing in this module imports the engine or the kernel: the store
moves raw arrays and metadata; ``repro.core.engine`` and
``repro.dependability.bdd`` reconstruct their objects from them.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import StoreError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

try:  # advisory locks are POSIX-only; elsewhere writers rely on atomic rename
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "Artifact",
    "ArtifactStore",
    "StoredObject",
    "active_store",
    "configure",
    "key_digest",
    "open_artifact",
    "write_artifact_file",
    "encode_paths",
    "decode_paths",
    "ENV_STORE",
    "ENV_MAX_BYTES",
]

ENV_STORE = "REPRO_STORE"
ENV_MAX_BYTES = "REPRO_STORE_MAX_BYTES"

_MAGIC = b"RPAS"
_VERSION = 1
_HEADER = struct.Struct("<4sHHIQ16s")
_ALIGN = 64

_M_HITS = _metrics.counter(
    "repro_store_hits_total", "Artifact-store lookups served from disk"
)
_M_MISSES = _metrics.counter(
    "repro_store_misses_total", "Artifact-store lookups that found no object"
)
_M_WRITES = _metrics.counter(
    "repro_store_writes_total", "Artifacts written through to the store"
)
_M_CORRUPT = _metrics.counter(
    "repro_store_corrupt_total",
    "Truncated/corrupted artifacts detected (deleted and treated as misses)",
)
_M_BYTES_READ = _metrics.counter(
    "repro_store_bytes_read_total", "Artifact bytes mapped on store hits"
)
_M_BYTES_WRITTEN = _metrics.counter(
    "repro_store_bytes_written_total", "Artifact bytes written to the store"
)
_M_GC_REMOVED = _metrics.counter(
    "repro_store_gc_removed_total", "Artifacts evicted by size-bounded GC"
)
_M_GC_BYTES = _metrics.counter(
    "repro_store_gc_bytes_total", "Artifact bytes reclaimed by GC"
)


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def key_digest(kind: str, key_parts: Sequence[str]) -> str:
    """The store address of a logical cache key: blake2b over the kind
    and the key parts (unit-separated, so parts can never alias)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(kind.encode("utf-8"))
    for part in key_parts:
        digest.update(b"\x1f")
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# container encode / decode
# ---------------------------------------------------------------------------


def _encode(
    kind: str,
    key_parts: Sequence[str],
    arrays: Mapping[str, np.ndarray],
    meta: Optional[Mapping[str, object]] = None,
) -> bytes:
    directory: List[Dict[str, object]] = []
    offset = 0
    chunks: List[np.ndarray] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        directory.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        chunks.append(array)
        offset += array.nbytes
    payload_len = offset
    meta_doc = {
        "kind": kind,
        "key": list(key_parts),
        "arrays": directory,
        "meta": dict(meta or {}),
    }
    meta_bytes = json.dumps(
        meta_doc, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    payload_start = _align(_HEADER.size + len(meta_bytes))
    buffer = bytearray(payload_start + payload_len)
    buffer[_HEADER.size : _HEADER.size + len(meta_bytes)] = meta_bytes
    for record, array in zip(directory, chunks):
        start = payload_start + int(record["offset"])  # type: ignore[arg-type]
        buffer[start : start + array.nbytes] = array.tobytes()
    digest = hashlib.blake2b(
        bytes(buffer[_HEADER.size :]), digest_size=16
    ).digest()
    buffer[: _HEADER.size] = _HEADER.pack(
        _MAGIC, _VERSION, 0, len(meta_bytes), payload_len, digest
    )
    return bytes(buffer)


class Artifact:
    """A decoded artifact: read-only mmap-backed array views plus meta.

    The views hold the mapping alive through their ``.base`` chain, so an
    artifact (and even its store entry — see POSIX unlink semantics) can
    be dropped while callers keep using the arrays.
    """

    __slots__ = ("path", "kind", "key", "meta", "arrays", "nbytes")

    def __init__(
        self,
        path: Path,
        kind: str,
        key: Tuple[str, ...],
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
        nbytes: int,
    ):
        self.path = path
        self.kind = kind
        self.key = key
        self.meta = meta
        self.arrays = arrays
        self.nbytes = nbytes


def _read_meta(buffer, path: Path) -> Tuple[Dict[str, object], int, int]:
    """Parse and sanity-check the header + meta JSON; returns
    ``(meta document, payload start, payload length)``."""
    if len(buffer) < _HEADER.size:
        raise StoreError(f"artifact {path} is truncated (no header)")
    magic, version, _, meta_len, payload_len, _ = _HEADER.unpack_from(buffer)
    if magic != _MAGIC:
        raise StoreError(f"artifact {path} has a bad magic number")
    if version != _VERSION:
        raise StoreError(
            f"artifact {path} has unsupported format version {version}"
        )
    payload_start = _align(_HEADER.size + meta_len)
    if len(buffer) != payload_start + payload_len:
        raise StoreError(
            f"artifact {path} is truncated "
            f"({len(buffer)} bytes, expected {payload_start + payload_len})"
        )
    try:
        meta_doc = json.loads(
            bytes(buffer[_HEADER.size : _HEADER.size + meta_len])
        )
    except ValueError as exc:
        raise StoreError(f"artifact {path} has unreadable meta: {exc}") from exc
    return meta_doc, payload_start, payload_len


def open_artifact(path: Union[str, Path], *, verify: bool = True) -> Artifact:
    """Map an artifact file read-only and decode its typed views.

    With ``verify=True`` (the default, and what :meth:`ArtifactStore.get`
    uses) the stored payload digest is recomputed over the mapping; any
    mismatch — truncation, bit rot, a torn write that somehow bypassed
    the atomic rename — raises :class:`StoreError`.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            if os.fstat(handle.fileno()).st_size == 0:
                raise StoreError(f"artifact {path} is empty")
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except OSError as exc:
        raise StoreError(f"cannot map artifact {path}: {exc}") from exc
    view = memoryview(mapped)
    meta_doc, payload_start, _ = _read_meta(view, path)
    if verify:
        recorded = _HEADER.unpack_from(view)[5]
        actual = hashlib.blake2b(
            view[_HEADER.size :], digest_size=16
        ).digest()
        if actual != recorded:
            raise StoreError(f"artifact {path} failed digest verification")
    arrays: Dict[str, np.ndarray] = {}
    for record in meta_doc.get("arrays", ()):
        dtype = np.dtype(record["dtype"])
        shape = tuple(record["shape"])
        count = int(np.prod(shape)) if shape else 1
        start = payload_start + int(record["offset"])
        array = np.frombuffer(mapped, dtype=dtype, count=count, offset=start)
        arrays[record["name"]] = array.reshape(shape)
    return Artifact(
        path=path,
        kind=str(meta_doc.get("kind", "")),
        key=tuple(meta_doc.get("key", ())),
        meta=dict(meta_doc.get("meta", {})),
        arrays=arrays,
        nbytes=len(view),
    )


def write_artifact_file(
    path: Union[str, Path],
    kind: str,
    key_parts: Sequence[str],
    arrays: Mapping[str, np.ndarray],
    meta: Optional[Mapping[str, object]] = None,
) -> int:
    """Write one container to an explicit *path* (atomic within its
    directory); returns the byte size.  The sharding plane uses this for
    its per-task scratch artifacts — no :class:`ArtifactStore` needed."""
    path = Path(path)
    blob = _encode(kind, key_parts, arrays, meta)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
    os.replace(tmp, path)
    return len(blob)


# ---------------------------------------------------------------------------
# path-set packing (shared by the engine tier and tests)
# ---------------------------------------------------------------------------


def encode_paths(
    paths: Sequence[Tuple[str, ...]],
) -> Tuple[Dict[str, np.ndarray], List[str]]:
    """Pack name-tuple paths into ``(arrays, names table)``: ``nodes`` is
    every hop as an index into the table, ``offsets[i]:offsets[i+1]``
    delimits path *i*."""
    table: Dict[str, int] = {}
    nodes: List[int] = []
    offsets = np.empty(len(paths) + 1, dtype=np.int64)
    offsets[0] = 0
    for i, path in enumerate(paths):
        for name in path:
            ix = table.get(name)
            if ix is None:
                ix = len(table)
                table[name] = ix
            nodes.append(ix)
        offsets[i + 1] = len(nodes)
    return (
        {
            "nodes": np.array(nodes, dtype=np.int32),
            "offsets": offsets,
        },
        list(table),
    )


def decode_paths(
    arrays: Mapping[str, np.ndarray], names: Sequence[str]
) -> List[Tuple[str, ...]]:
    """Inverse of :func:`encode_paths`."""
    nodes = arrays["nodes"].tolist()
    offsets = arrays["offsets"].tolist()
    names = list(names)
    return [
        tuple(names[ix] for ix in nodes[offsets[i] : offsets[i + 1]])
        for i in range(len(offsets) - 1)
    ]


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class StoredObject:
    """One ``store ls`` row: address, kind, logical key, size, mtime."""

    __slots__ = ("digest", "path", "kind", "key", "nbytes", "mtime")

    def __init__(self, digest, path, kind, key, nbytes, mtime):
        self.digest = digest
        self.path = path
        self.kind = kind
        self.key = key
        self.nbytes = nbytes
        self.mtime = mtime


class ArtifactStore:
    """A content-addressed object directory with atomic, locked writes.

    ``max_bytes`` (also settable via ``REPRO_STORE_MAX_BYTES``) bounds
    the store: :meth:`put` triggers :meth:`gc` once the total object size
    exceeds it, evicting least-recently-used objects first.
    """

    def __init__(
        self, root: Union[str, Path], max_bytes: Optional[int] = None
    ):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.counts = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "corrupt": 0,
            "gc_removed": 0,
        }
        self._lock = threading.Lock()
        try:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            (self.root / "tmp").mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot initialize artifact store at {self.root}: {exc}"
            ) from exc

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counts[name] += n

    def _flocked(self):
        """Advisory exclusive lock held for the duration of a write/GC.

        Readers never take it — they only ever see complete files thanks
        to the atomic rename.  On platforms without ``fcntl`` this
        degrades to rename-only atomicity.
        """

        class _Lock:
            def __init__(self, root: Path):
                self._root = root
                self._handle = None

            def __enter__(self):
                if fcntl is not None:
                    self._handle = open(self._root / ".lock", "a+b")
                    fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
                return self

            def __exit__(self, *exc_info):
                if self._handle is not None:
                    fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
                    self._handle.close()
                return False

        return _Lock(self.root)

    def object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    # -- read ----------------------------------------------------------------

    def get(self, kind: str, key_parts: Sequence[str]) -> Optional[Artifact]:
        """Look one logical key up; ``None`` means miss — including the
        corruption case, where the bad file is deleted so the caller's
        recompile + write-through heals the store."""
        digest = key_digest(kind, key_parts)
        path = self.object_path(digest)
        with _trace.span("store.get", kind=kind, digest=digest) as span:
            if not path.exists():
                span.set(hit=False)
                self._count("misses")
                _M_MISSES.inc()
                return None
            try:
                artifact = open_artifact(path)
                if artifact.kind != kind:
                    raise StoreError(
                        f"artifact {path} has kind {artifact.kind!r}, "
                        f"expected {kind!r}"
                    )
            except StoreError:
                span.set(hit=False, corrupt=True)
                self._count("corrupt")
                self._count("misses")
                _M_CORRUPT.inc()
                _M_MISSES.inc()
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing unlink
                    pass
                return None
            span.set(hit=True, bytes=artifact.nbytes)
            self._count("hits")
            _M_HITS.inc()
            _M_BYTES_READ.inc(artifact.nbytes)
            try:  # reads bump mtime so GC evicts least-recently-used first
                os.utime(path)
            except OSError:  # pragma: no cover - read-only store
                pass
            return artifact

    # -- write ---------------------------------------------------------------

    def put(
        self,
        kind: str,
        key_parts: Sequence[str],
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, object]] = None,
    ) -> str:
        """Write one artifact through (idempotent — content-addressed
        writers racing on the same key all produce the same object)."""
        digest = key_digest(kind, key_parts)
        path = self.object_path(digest)
        with _trace.span("store.put", kind=kind, digest=digest) as span:
            if path.exists():
                span.set(bytes=0, deduplicated=True)
                return digest
            blob = _encode(kind, key_parts, arrays, meta)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f"{digest}.", dir=self.root / "tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                with self._flocked():
                    path.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(tmp_name, path)
            except OSError as exc:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise StoreError(
                    f"cannot write artifact {path}: {exc}"
                ) from exc
            span.set(bytes=len(blob))
            self._count("writes")
            _M_WRITES.inc()
            _M_BYTES_WRITTEN.inc(len(blob))
        if self.max_bytes is not None and self.total_bytes() > self.max_bytes:
            self.gc()
        return digest

    # -- inventory / maintenance ---------------------------------------------

    def objects(self) -> Iterator[StoredObject]:
        """Every stored object, with kind/key read from its meta (cheap:
        header + meta only, no digest verification)."""
        objects_root = self.root / "objects"
        for shard in sorted(objects_root.iterdir() if objects_root.exists() else ()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                try:
                    stat = path.stat()
                    with open(path, "rb") as handle:
                        head = handle.read(_HEADER.size)
                        if len(head) < _HEADER.size:
                            raise StoreError(f"artifact {path} is truncated")
                        meta_len = _HEADER.unpack(head)[3]
                        meta_doc = json.loads(handle.read(meta_len))
                    kind = str(meta_doc.get("kind", "?"))
                    key = tuple(meta_doc.get("key", ()))
                except (OSError, ValueError, StoreError, struct.error):
                    kind, key = "?", ()
                    stat = path.stat()
                yield StoredObject(
                    digest=path.name,
                    path=path,
                    kind=kind,
                    key=key,
                    nbytes=stat.st_size,
                    mtime=stat.st_mtime,
                )

    def total_bytes(self) -> int:
        return sum(obj.nbytes for obj in self.objects())

    def verify_all(self) -> Tuple[List[StoredObject], List[StoredObject]]:
        """Full-digest check of every object; returns ``(ok, corrupt)``."""
        ok: List[StoredObject] = []
        corrupt: List[StoredObject] = []
        with _trace.span("store.verify") as span:
            for obj in self.objects():
                try:
                    artifact = open_artifact(obj.path)
                    if key_digest(artifact.kind, artifact.key) != obj.digest:
                        raise StoreError(
                            f"artifact {obj.path} is filed under the wrong "
                            f"address"
                        )
                    ok.append(obj)
                except StoreError:
                    corrupt.append(obj)
            span.set(ok=len(ok), corrupt=len(corrupt))
        return ok, corrupt

    def gc(self, max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Evict least-recently-used objects until the store fits in
        *max_bytes* (default: the configured bound; 0 empties the store).
        Returns ``(objects removed, bytes reclaimed)``.  Readers holding
        mmaps of evicted objects are unaffected (POSIX unlink)."""
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None:
            raise StoreError(
                "gc needs a size bound: pass max_bytes or configure the "
                "store with one"
            )
        removed = 0
        reclaimed = 0
        with _trace.span("store.gc", max_bytes=bound) as span, self._flocked():
            entries = sorted(self.objects(), key=lambda o: o.mtime)
            total = sum(obj.nbytes for obj in entries)
            for obj in entries:
                if total <= bound:
                    break
                try:
                    obj.path.unlink()
                except OSError:  # pragma: no cover - racing unlink
                    continue
                total -= obj.nbytes
                removed += 1
                reclaimed += obj.nbytes
            span.set(removed=removed, reclaimed=reclaimed)
        if removed:
            self._count("gc_removed", removed)
            _M_GC_REMOVED.inc(removed)
            _M_GC_BYTES.inc(reclaimed)
        return removed, reclaimed

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counts)


# ---------------------------------------------------------------------------
# process-wide configuration (REPRO_STORE / --store DIR)
# ---------------------------------------------------------------------------

_UNSET = object()
_CONFIGURED: object = _UNSET
_BY_ROOT: Dict[str, ArtifactStore] = {}
_CONFIG_LOCK = threading.Lock()


def _store_for(root: str) -> ArtifactStore:
    with _CONFIG_LOCK:
        store = _BY_ROOT.get(root)
        if store is None:
            max_bytes_env = os.environ.get(ENV_MAX_BYTES)
            store = ArtifactStore(
                root,
                max_bytes=int(max_bytes_env) if max_bytes_env else None,
            )
            _BY_ROOT[root] = store
        return store


def configure(
    store: Union[ArtifactStore, str, Path, None]
) -> Optional[ArtifactStore]:
    """Set the process-wide store: a directory (created on demand), an
    :class:`ArtifactStore`, or ``None`` to disable even when
    ``REPRO_STORE`` is set.  Call :func:`reset` to fall back to the
    environment variable."""
    global _CONFIGURED
    if isinstance(store, (str, Path)):
        store = _store_for(str(store))
    _CONFIGURED = store
    return store  # type: ignore[return-value]


def reset() -> None:
    """Forget any explicit :func:`configure` call (tests; CLI teardown)."""
    global _CONFIGURED
    _CONFIGURED = _UNSET


def active_store() -> Optional[ArtifactStore]:
    """The store the cache tiers should consult, or ``None``.

    An explicit :func:`configure` wins; otherwise the ``REPRO_STORE``
    environment variable names the root directory (resolved per call, so
    tests and long-running services can repoint it)."""
    if _CONFIGURED is not _UNSET:
        return _CONFIGURED  # type: ignore[return-value]
    root = os.environ.get(ENV_STORE)
    if not root:
        return None
    try:
        return _store_for(root)
    except StoreError:
        return None
