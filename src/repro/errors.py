"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """Structural problem in a UML model (metamodel violation)."""


class ConstraintViolationError(ModelError):
    """A well-formedness constraint was violated.

    Carries the list of :class:`repro.uml.constraints.Violation` objects
    that describe each individual failure.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "; ".join(str(v) for v in self.violations)
        super().__init__(f"{len(self.violations)} constraint violation(s): {lines}")


class StereotypeError(ModelError):
    """Illegal stereotype application or attribute access."""


class SerializationError(ReproError):
    """Failure while reading or writing a model from/to XML."""


class ModelSpaceError(ReproError):
    """Problem inside the VPM model space (unknown entity, duplicate name...)."""


class ImportError_(ModelSpaceError):
    """An importer could not translate an input model into the model space.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`ImportError`.
    """


class PatternError(ModelSpaceError):
    """Malformed graph pattern or pattern-matching failure."""


class MappingError(ReproError):
    """Invalid service mapping (unknown component, duplicate atomic service...)."""


class ServiceError(ReproError):
    """Invalid service description (malformed activity, empty composition...)."""


class TopologyError(ReproError):
    """Invalid network topology operation (unknown node, duplicate link...)."""


class PathDiscoveryError(ReproError):
    """Path discovery failed (endpoint not in topology, budget exceeded...)."""


class AnalysisError(ReproError):
    """Dependability analysis failure (missing attribute, invalid structure...)."""
