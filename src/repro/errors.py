"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed::

    ReproError
    ├── ModelError                    structural UML problems
    │   ├── ConstraintViolationError  well-formedness suite failures
    │   └── StereotypeError           illegal stereotype use
    ├── SerializationError            XML read/write failures
    ├── ModelSpaceError               VPM model-space problems
    │   ├── ImportError_              importer translation failures
    │   └── PatternError              malformed/failed pattern matching
    ├── MappingError                  invalid service mapping
    ├── ServiceError                  invalid service description
    ├── TopologyError                 invalid topology operation
    ├── PathDiscoveryError            path discovery failures
    │   ├── PathDiscoveryTimeout      a per-pair discovery deadline expired
    │   └── UnreachablePairError      a (requester, provider) pair has no path
    ├── AnalysisError                 dependability analysis failures
    ├── FaultPlanError                invalid fault-injection plan
    └── StoreError                    artifact-store failures

The three leaf classes under :class:`PathDiscoveryError` and
:class:`FaultPlanError` belong to the resilience subsystem
(:mod:`repro.resilience`): strict pipeline runs raise them, resilient
runs convert them into structured
:class:`~repro.resilience.runner.PairDiagnostic` records instead.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """Structural problem in a UML model (metamodel violation)."""


class ConstraintViolationError(ModelError):
    """A well-formedness constraint was violated.

    Carries the list of :class:`repro.uml.constraints.Violation` objects
    that describe each individual failure.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "; ".join(str(v) for v in self.violations)
        super().__init__(f"{len(self.violations)} constraint violation(s): {lines}")


class StereotypeError(ModelError):
    """Illegal stereotype application or attribute access."""


class SerializationError(ReproError):
    """Failure while reading or writing a model from/to XML."""


class ModelSpaceError(ReproError):
    """Problem inside the VPM model space (unknown entity, duplicate name...)."""


class ImportError_(ModelSpaceError):
    """An importer could not translate an input model into the model space.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`ImportError`.
    """


class PatternError(ModelSpaceError):
    """Malformed graph pattern or pattern-matching failure."""


class MappingError(ReproError):
    """Invalid service mapping (unknown component, duplicate atomic service...)."""


class ServiceError(ReproError):
    """Invalid service description (malformed activity, empty composition...)."""


class TopologyError(ReproError):
    """Invalid network topology operation (unknown node, duplicate link...)."""


class PathDiscoveryError(ReproError):
    """Path discovery failed (endpoint not in topology, budget exceeded...)."""


class PathDiscoveryTimeout(PathDiscoveryError):
    """A per-pair path-discovery deadline expired.

    Raised by the resilient runner when one (requester, provider) pair
    exceeds its :class:`~repro.resilience.runner.ResiliencePolicy`
    ``pair_timeout``.  Carries the pair so batch callers can report which
    discovery stalled.
    """

    def __init__(self, requester: str, provider: str, timeout: float):
        self.requester = requester
        self.provider = provider
        self.timeout = timeout
        super().__init__(
            f"path discovery for pair ({requester!r}, {provider!r}) exceeded "
            f"the {timeout:g}s deadline"
        )


class UnreachablePairError(PathDiscoveryError):
    """A (requester, provider) pair has no connecting path.

    In strict mode an unreachable pair aborts the run; in resilient mode
    it degrades into a diagnostic attached to a partial UPSIM.
    """

    def __init__(self, requester: str, provider: str, reason: str = ""):
        self.requester = requester
        self.provider = provider
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"no path between requester {requester!r} and provider "
            f"{provider!r}{detail}"
        )


class AnalysisError(ReproError):
    """Dependability analysis failure (missing attribute, invalid structure...)."""


class FaultPlanError(ReproError):
    """Invalid fault-injection plan (unknown kind, bad spec, missing target...)."""


class StoreError(ReproError):
    """Content-addressed artifact store failure (bad container, unusable
    store directory...).

    Read-path integrity problems — a truncated or corrupted artifact —
    are raised by the low-level container reader but are **absorbed** by
    :meth:`repro.store.ArtifactStore.get`, which treats them as a cache
    miss (delete + recompile), so they never abort an evaluation.
    """
