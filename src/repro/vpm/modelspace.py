"""VPM-style model space: hierarchical entities and typed relations.

VIATRA2 stores all models in its Visual and Precise Metamodeling (VPM)
model space, "which provides a flexible way to capture languages and models
from various domains by identifying their entities and relations"
(Section V-C).  This module reimplements that substrate:

* :class:`Entity` — a named node in a hierarchical namespace tree; entities
  have a fully-qualified name (``"uml.instances.t1"``), may carry a value,
  and may be declared *instances of* other entities (their type);
* :class:`Relation` — a named, directed, typed edge between two entities;
* :class:`ModelSpace` — the container: root entity, lookup by qualified
  name, type-extent queries, and relation queries.

Metamodels are ordinary entities (conventionally under ``metamodel.…``);
conformance is expressed through ``instance_of`` typing, exactly as VPM
does with its ``instanceOf`` relation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.errors import ModelSpaceError

__all__ = ["Entity", "Relation", "ModelSpace"]

_SEPARATOR = "."


class Entity:
    """A node in the model space's containment tree.

    Entities are created through :meth:`ModelSpace.create_entity` (or
    :meth:`Entity.child`); direct construction is reserved for the root.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["Entity"] = None,
        *,
        value: Any = None,
        space: Optional["ModelSpace"] = None,
    ):
        if not name or _SEPARATOR in name:
            raise ModelSpaceError(f"invalid entity name {name!r}")
        self.name = name
        self.parent = parent
        self.value = value
        self._children: Dict[str, Entity] = {}
        self._types: List[Entity] = []
        self._supertypes: List[Entity] = []
        self.space = space if space is not None else (parent.space if parent else None)

    # -- namespace ---------------------------------------------------------

    @property
    def fqn(self) -> str:
        """Fully-qualified name, dot-separated from (but excluding) the root."""
        parts: List[str] = []
        node: Optional[Entity] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return _SEPARATOR.join(reversed(parts))

    @property
    def children(self) -> List["Entity"]:
        return list(self._children.values())

    def child(self, name: str, *, value: Any = None) -> "Entity":
        """Create (or return existing) child entity *name*."""
        if name in self._children:
            existing = self._children[name]
            if value is not None:
                existing.value = value
            return existing
        entity = Entity(name, self, value=value)
        self._children[name] = entity
        if self.space is not None:
            self.space._register(entity)
        return entity

    def get(self, name: str) -> "Entity":
        try:
            return self._children[name]
        except KeyError:
            raise ModelSpaceError(
                f"entity {self.fqn or '<root>'!r} has no child {name!r}"
            ) from None

    def has_child(self, name: str) -> bool:
        return name in self._children

    def remove_child(self, name: str) -> None:
        if name not in self._children:
            raise ModelSpaceError(
                f"entity {self.fqn or '<root>'!r} has no child {name!r}"
            )
        child = self._children.pop(name)
        if self.space is not None:
            self.space._unregister(child)

    def walk(self) -> Iterator["Entity"]:
        """Yield this entity and all descendants, depth-first."""
        yield self
        for child in self._children.values():
            yield from child.walk()

    # -- typing ---------------------------------------------------------------

    def declare_instance_of(self, type_entity: "Entity") -> None:
        """Declare this entity an instance of *type_entity* (VPM instanceOf)."""
        if any(t is type_entity for t in self._types):
            return
        self._types.append(type_entity)
        if self.space is not None:
            self.space._register_instance(type_entity, self)

    def declare_supertype(self, supertype: "Entity") -> None:
        """Declare *supertype* a supertype of this (type) entity — VPM's
        ``supertypeOf`` relation.  Instances of this entity then also count
        as instances of *supertype*."""
        if any(t is supertype for t in self._supertypes):
            return
        self._supertypes.append(supertype)
        if self.space is not None:
            self.space._register_subtype(supertype, self)

    @property
    def types(self) -> List["Entity"]:
        return list(self._types)

    @property
    def supertypes(self) -> List["Entity"]:
        return list(self._supertypes)

    def is_instance_of(self, type_entity: "Entity") -> bool:
        """Whether this entity is an instance of *type_entity*, directly or
        through the supertype closure of its declared types."""
        stack = list(self._types)
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            if current is type_entity:
                return True
            stack.extend(current._supertypes)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Entity {self.fqn or '<root>'}>"


class Relation:
    """A named, directed edge between two entities, optionally typed."""

    def __init__(
        self,
        name: str,
        source: Entity,
        target: Entity,
        *,
        type_entity: Optional[Entity] = None,
        value: Any = None,
    ):
        self.name = name
        self.source = source
        self.target = target
        self.type_entity = type_entity
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.name!r} {self.source.fqn} -> {self.target.fqn}>"


class ModelSpace:
    """The VPM model space: one containment tree plus a relation store."""

    def __init__(self):
        self.root = Entity("root", None, space=self)
        self.root.space = self
        self._by_fqn: Dict[str, Entity] = {}
        self._relations: List[Relation] = []
        self._out: Dict[int, List[Relation]] = {}
        self._in: Dict[int, List[Relation]] = {}
        self._extent: Dict[int, List[Entity]] = {}
        self._subtypes: Dict[int, List[Entity]] = {}

    # -- registration internals -------------------------------------------

    def _register(self, entity: Entity) -> None:
        fqn = entity.fqn
        if fqn in self._by_fqn:
            raise ModelSpaceError(f"duplicate entity fqn {fqn!r}")
        self._by_fqn[fqn] = entity

    def _unregister(self, entity: Entity) -> None:
        removed = {id(descendant) for descendant in entity.walk()}
        for descendant in list(entity.walk()):
            self._by_fqn.pop(descendant.fqn, None)
        self._relations = [
            r
            for r in self._relations
            if id(r.source) not in removed and id(r.target) not in removed
        ]
        # rebuild the per-entity indexes so surviving entities do not keep
        # stale references to relations of deleted entities
        self._out = {}
        self._in = {}
        for relation in self._relations:
            self._out.setdefault(id(relation.source), []).append(relation)
            self._in.setdefault(id(relation.target), []).append(relation)
        for index in (self._extent, self._subtypes):
            for type_id in list(index):
                if type_id in removed:
                    del index[type_id]
                    continue
                kept = [e for e in index[type_id] if id(e) not in removed]
                if kept:
                    index[type_id] = kept
                else:
                    del index[type_id]

    def _register_instance(self, type_entity: Entity, instance: Entity) -> None:
        self._extent.setdefault(id(type_entity), []).append(instance)

    def _register_subtype(self, supertype: Entity, subtype: Entity) -> None:
        self._subtypes.setdefault(id(supertype), []).append(subtype)

    # -- entities ---------------------------------------------------------------

    def create_entity(
        self,
        fqn: str,
        *,
        value: Any = None,
        type_entity: Optional[Entity] = None,
    ) -> Entity:
        """Create the entity at *fqn*, creating intermediate namespaces.

        Idempotent for the intermediate containers; the leaf may already
        exist, in which case its value/typing is extended.
        """
        if not fqn:
            raise ModelSpaceError("empty fqn")
        node = self.root
        parts = fqn.split(_SEPARATOR)
        for part in parts[:-1]:
            node = node.child(part)
        leaf = node.child(parts[-1], value=value)
        if type_entity is not None:
            leaf.declare_instance_of(type_entity)
        return leaf

    def entity(self, fqn: str) -> Entity:
        try:
            return self._by_fqn[fqn]
        except KeyError:
            raise ModelSpaceError(f"no entity with fqn {fqn!r}") from None

    def has_entity(self, fqn: str) -> bool:
        return fqn in self._by_fqn

    def find(self, fqn: str) -> Optional[Entity]:
        return self._by_fqn.get(fqn)

    def delete_entity(self, fqn: str) -> None:
        entity = self.entity(fqn)
        if entity.parent is None:
            raise ModelSpaceError("cannot delete the root entity")
        entity.parent.remove_child(entity.name)

    def entities(self) -> Iterator[Entity]:
        """All entities except the root, in containment order."""
        for entity in self.root.walk():
            if entity.parent is not None:
                yield entity

    def instances_of(self, type_entity: Entity | str) -> List[Entity]:
        """All instances of a type entity or any of its (transitive) subtypes."""
        if isinstance(type_entity, str):
            type_entity = self.entity(type_entity)
        result: List[Entity] = []
        seen: set[int] = set()
        stack = [type_entity]
        type_seen: set[int] = set()
        while stack:
            current = stack.pop()
            if id(current) in type_seen:
                continue
            type_seen.add(id(current))
            for instance in self._extent.get(id(current), []):
                if id(instance) not in seen:
                    seen.add(id(instance))
                    result.append(instance)
            stack.extend(self._subtypes.get(id(current), []))
        return result

    # -- relations --------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        source: Entity | str,
        target: Entity | str,
        *,
        type_entity: Optional[Entity] = None,
        value: Any = None,
    ) -> Relation:
        source_e = self.entity(source) if isinstance(source, str) else source
        target_e = self.entity(target) if isinstance(target, str) else target
        relation = Relation(
            name, source_e, target_e, type_entity=type_entity, value=value
        )
        self._relations.append(relation)
        self._out.setdefault(id(source_e), []).append(relation)
        self._in.setdefault(id(target_e), []).append(relation)
        return relation

    def relations(self, name: Optional[str] = None) -> List[Relation]:
        if name is None:
            return list(self._relations)
        return [r for r in self._relations if r.name == name]

    def relations_from(self, entity: Entity | str, name: Optional[str] = None) -> List[Relation]:
        entity_e = self.entity(entity) if isinstance(entity, str) else entity
        out = self._out.get(id(entity_e), [])
        if name is None:
            return list(out)
        return [r for r in out if r.name == name]

    def relations_to(self, entity: Entity | str, name: Optional[str] = None) -> List[Relation]:
        entity_e = self.entity(entity) if isinstance(entity, str) else entity
        incoming = self._in.get(id(entity_e), [])
        if name is None:
            return list(incoming)
        return [r for r in incoming if r.name == name]

    def relations_of(self, entity: Entity | str, name: Optional[str] = None) -> List[Relation]:
        """Relations touching *entity* in either direction."""
        entity_e = self.entity(entity) if isinstance(entity, str) else entity
        return self.relations_from(entity_e, name) + self.relations_to(entity_e, name)

    def neighbors(self, entity: Entity | str, relation_name: Optional[str] = None) -> List[Entity]:
        """Entities reachable over one relation hop, either direction."""
        entity_e = self.entity(entity) if isinstance(entity, str) else entity
        result: List[Entity] = []
        seen: set[int] = set()
        for relation in self.relations_of(entity_e, relation_name):
            other = relation.target if relation.source is entity_e else relation.source
            if id(other) not in seen:
                seen.add(id(other))
                result.append(other)
        return result

    # -- bulk helpers --------------------------------------------------------

    def ensure_namespace(self, fqn: str) -> Entity:
        """Create (if necessary) and return the namespace entity at *fqn*."""
        return self.create_entity(fqn)

    def size(self) -> int:
        return len(self._by_fqn)

    def relation_count(self) -> int:
        return len(self._relations)

    def __contains__(self, fqn: str) -> bool:
        return fqn in self._by_fqn
