"""Declarative graph patterns over the model space (VTCL-style queries).

The VIATRA2 textual command language (VTCL) "provides declarative model
queries and manipulation" based on graph pattern matching (Section V-C);
model transformations "rely on identifying graph patterns as model elements
and match them to given structures of the metamodel" [14].  This module is
a compact reimplementation: a :class:`Pattern` declares variables with
entity constraints (type membership, namespace, fqn, value predicates) and
relation constraints between variables; :meth:`Pattern.match` enumerates
all bindings via backtracking search with most-constrained-variable
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PatternError
from repro.vpm.modelspace import Entity, ModelSpace, Relation

__all__ = [
    "EntityConstraint",
    "RelationConstraint",
    "Match",
    "Pattern",
]


@dataclass
class EntityConstraint:
    """Restrictions on the entity a pattern variable may bind to."""

    variable: str
    type_fqn: Optional[str] = None
    namespace: Optional[str] = None
    fqn: Optional[str] = None
    predicate: Optional[Callable[[Entity], bool]] = None

    def admits(self, entity: Entity, space: ModelSpace) -> bool:
        if self.fqn is not None and entity.fqn != self.fqn:
            return False
        if self.namespace is not None:
            prefix = self.namespace + "."
            if not entity.fqn.startswith(prefix):
                return False
        if self.type_fqn is not None:
            type_entity = space.find(self.type_fqn)
            if type_entity is None or not entity.is_instance_of(type_entity):
                return False
        if self.predicate is not None and not self.predicate(entity):
            return False
        return True

    def candidates(self, space: ModelSpace) -> List[Entity]:
        """Smallest easily-computed candidate set for this constraint."""
        if self.fqn is not None:
            entity = space.find(self.fqn)
            return [entity] if entity is not None else []
        if self.type_fqn is not None:
            type_entity = space.find(self.type_fqn)
            if type_entity is None:
                return []
            pool = space.instances_of(type_entity)
        else:
            pool = list(space.entities())
        return [e for e in pool if self.admits(e, space)]


@dataclass
class RelationConstraint:
    """Requires a relation named *name* between two bound variables.

    ``directed=False`` accepts the relation in either direction.
    """

    name: str
    source: str
    target: str
    directed: bool = True
    predicate: Optional[Callable[[Relation], bool]] = None

    def holds(self, src: Entity, dst: Entity, space: ModelSpace) -> bool:
        for relation in space.relations_from(src, self.name):
            if relation.target is dst and (
                self.predicate is None or self.predicate(relation)
            ):
                return True
        if not self.directed:
            for relation in space.relations_from(dst, self.name):
                if relation.target is src and (
                    self.predicate is None or self.predicate(relation)
                ):
                    return True
        return False


@dataclass(frozen=True)
class Match:
    """One complete binding of pattern variables to entities."""

    bindings: Tuple[Tuple[str, Entity], ...]

    def __getitem__(self, variable: str) -> Entity:
        for name, entity in self.bindings:
            if name == variable:
                return entity
        raise KeyError(variable)

    def as_dict(self) -> Dict[str, Entity]:
        return dict(self.bindings)

    def __contains__(self, variable: str) -> bool:
        return any(name == variable for name, _ in self.bindings)


class Pattern:
    """A graph pattern: variables + entity/relation constraints.

    Example — all instances connected to a given switch::

        pattern = (
            Pattern("neighbors")
            .entity("n", type_fqn="metamodel.uml.Instance")
            .entity("sw", fqn="uml.instances.c1")
            .relation("link", "n", "sw", directed=False)
        )
        for match in pattern.match(space):
            print(match["n"].fqn)
    """

    def __init__(self, name: str = "pattern"):
        self.name = name
        self._entities: Dict[str, EntityConstraint] = {}
        self._relations: List[RelationConstraint] = []
        self._injective = True

    # -- construction (fluent) ----------------------------------------------

    def entity(
        self,
        variable: str,
        *,
        type_fqn: Optional[str] = None,
        namespace: Optional[str] = None,
        fqn: Optional[str] = None,
        predicate: Optional[Callable[[Entity], bool]] = None,
    ) -> "Pattern":
        if variable in self._entities:
            raise PatternError(f"variable {variable!r} declared twice")
        self._entities[variable] = EntityConstraint(
            variable, type_fqn, namespace, fqn, predicate
        )
        return self

    def relation(
        self,
        name: str,
        source: str,
        target: str,
        *,
        directed: bool = True,
        predicate: Optional[Callable[[Relation], bool]] = None,
    ) -> "Pattern":
        self._relations.append(
            RelationConstraint(name, source, target, directed, predicate)
        )
        return self

    def allow_repeated_bindings(self) -> "Pattern":
        """Permit two variables to bind to the same entity (default is an
        injective match, the common convention in graph transformation)."""
        self._injective = False
        return self

    # -- matching -------------------------------------------------------------

    def _check_declared(self) -> None:
        for constraint in self._relations:
            for variable in (constraint.source, constraint.target):
                if variable not in self._entities:
                    raise PatternError(
                        f"relation constraint references undeclared variable "
                        f"{variable!r}"
                    )

    def match(
        self, space: ModelSpace, *, bindings: Optional[Dict[str, Entity]] = None
    ) -> Iterator[Match]:
        """Enumerate all matches, optionally with some variables pre-bound."""
        self._check_declared()
        if not self._entities:
            return iter(())
        pre = dict(bindings or {})
        for variable in pre:
            if variable not in self._entities:
                raise PatternError(f"pre-binding for undeclared variable {variable!r}")

        candidate_sets: Dict[str, List[Entity]] = {}
        for variable, constraint in self._entities.items():
            if variable in pre:
                entity = pre[variable]
                candidate_sets[variable] = (
                    [entity] if constraint.admits(entity, space) else []
                )
            else:
                candidate_sets[variable] = constraint.candidates(space)

        # most-constrained-variable first
        order = sorted(candidate_sets, key=lambda v: len(candidate_sets[v]))
        return self._search(space, order, candidate_sets, {}, 0)

    def _relations_checkable(self, bound: Dict[str, Entity]) -> List[RelationConstraint]:
        return [
            c
            for c in self._relations
            if c.source in bound and c.target in bound
        ]

    def _search(
        self,
        space: ModelSpace,
        order: Sequence[str],
        candidates: Dict[str, List[Entity]],
        bound: Dict[str, Entity],
        depth: int,
    ) -> Iterator[Match]:
        if depth == len(order):
            yield Match(tuple(sorted(bound.items())))
            return
        variable = order[depth]
        for entity in candidates[variable]:
            if self._injective and any(e is entity for e in bound.values()):
                continue
            bound[variable] = entity
            ok = True
            for constraint in self._relations:
                if constraint.source in bound and constraint.target in bound:
                    # only re-check constraints that involve the new variable
                    if variable not in (constraint.source, constraint.target):
                        continue
                    if not constraint.holds(
                        bound[constraint.source], bound[constraint.target], space
                    ):
                        ok = False
                        break
            if ok:
                yield from self._search(space, order, candidates, bound, depth + 1)
            del bound[variable]

    def match_one(
        self, space: ModelSpace, *, bindings: Optional[Dict[str, Entity]] = None
    ) -> Optional[Match]:
        """First match or ``None``."""
        for match in self.match(space, bindings=bindings):
            return match
        return None

    def count(self, space: ModelSpace) -> int:
        return sum(1 for _ in self.match(space))
