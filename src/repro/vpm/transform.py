"""Rule-based model-to-model transformation over the model space.

VIATRA2 "complements the Eclipse framework with a transformation language
based on graph theory techniques and abstract state machines"
(Section V).  This module provides the corresponding engine: a
:class:`Rule` couples a :class:`~repro.vpm.patterns.Pattern` (the left-hand
side) with an action callback (the right-hand side); a
:class:`Transformation` executes rules in order — either *forall* (apply
the action to every match of the current state) or *iterate* (re-match
after each application until a fixpoint, with a safety bound).

The UPSIM generation of Step 8 is expressed as such a transformation in
:mod:`repro.core.upsim` (entities matched in the discovered-path tree are
copied into the output model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ModelSpaceError
from repro.vpm.modelspace import Entity, ModelSpace
from repro.vpm.patterns import Match, Pattern

__all__ = ["Rule", "Transformation", "TransformationTrace"]

#: Safety bound for ``iterate`` rules to guarantee termination even when a
#: rule keeps producing new matches.
MAX_ITERATIONS = 100_000


@dataclass
class TransformationTrace:
    """Execution record: how often each rule fired."""

    firings: Dict[str, int] = field(default_factory=dict)

    def record(self, rule_name: str) -> None:
        self.firings[rule_name] = self.firings.get(rule_name, 0) + 1

    def total(self) -> int:
        return sum(self.firings.values())


class Rule:
    """One transformation rule: pattern (LHS) + action (RHS).

    Parameters
    ----------
    name:
        Rule name, used in traces and error messages.
    pattern:
        The graph pattern to match.
    action:
        ``action(space, match)``; may create/delete entities and relations.
    mode:
        ``"forall"`` (default) — snapshot all matches of the current state,
        then apply the action once per match.  ``"iterate"`` — repeatedly
        find one match and apply the action until no match remains; the
        action must eventually invalidate the pattern or the engine raises.
    """

    def __init__(
        self,
        name: str,
        pattern: Pattern,
        action: Callable[[ModelSpace, Match], None],
        *,
        mode: str = "forall",
    ):
        if mode not in ("forall", "iterate"):
            raise ModelSpaceError(f"unknown rule mode {mode!r}")
        self.name = name
        self.pattern = pattern
        self.action = action
        self.mode = mode

    def apply(self, space: ModelSpace, trace: TransformationTrace) -> int:
        """Execute the rule; return the number of firings."""
        fired = 0
        if self.mode == "forall":
            for match in list(self.pattern.match(space)):
                self.action(space, match)
                trace.record(self.name)
                fired += 1
            return fired
        # iterate
        while True:
            match = self.pattern.match_one(space)
            if match is None:
                return fired
            self.action(space, match)
            trace.record(self.name)
            fired += 1
            if fired > MAX_ITERATIONS:
                raise ModelSpaceError(
                    f"rule {self.name!r} exceeded {MAX_ITERATIONS} iterations; "
                    f"the action likely does not invalidate the pattern"
                )


class Transformation:
    """An ordered sequence of rules executed against one model space."""

    def __init__(self, name: str = "transformation"):
        self.name = name
        self.rules: List[Rule] = []

    def add_rule(
        self,
        name: str,
        pattern: Pattern,
        action: Callable[[ModelSpace, Match], None],
        *,
        mode: str = "forall",
    ) -> "Transformation":
        self.rules.append(Rule(name, pattern, action, mode=mode))
        return self

    def run(self, space: ModelSpace) -> TransformationTrace:
        """Execute all rules in order; return the firing trace."""
        trace = TransformationTrace()
        for rule in self.rules:
            rule.apply(space, trace)
        return trace
