"""VPM-style model space and transformation engine (VIATRA2 substrate).

Reimplements the slice of VIATRA2 the methodology relies on: the Visual and
Precise Metamodeling (VPM) model space with hierarchical entities and typed
relations, declarative graph-pattern queries, rule-based model-to-model
transformations, and the UML / service-mapping importers of methodology
Steps 5–6.
"""

from repro.vpm.importers import (
    CLASSES_NS,
    INSTANCES_NS,
    MAPPING_NS,
    METAMODEL_NS,
    PATHS_NS,
    SERVICES_NS,
    MappingImporter,
    UMLImporter,
    install_metamodel,
    load_paths,
    store_paths,
)
from repro.vpm.modelspace import Entity, ModelSpace, Relation
from repro.vpm.patterns import EntityConstraint, Match, Pattern, RelationConstraint
from repro.vpm.transform import Rule, Transformation, TransformationTrace
from repro.vpm.vtcl import parse_pattern, parse_patterns, run_query

__all__ = [
    "parse_pattern",
    "parse_patterns",
    "run_query",
    "Entity",
    "ModelSpace",
    "Relation",
    "Pattern",
    "Match",
    "EntityConstraint",
    "RelationConstraint",
    "Rule",
    "Transformation",
    "TransformationTrace",
    "UMLImporter",
    "MappingImporter",
    "install_metamodel",
    "store_paths",
    "load_paths",
    "METAMODEL_NS",
    "CLASSES_NS",
    "INSTANCES_NS",
    "SERVICES_NS",
    "MAPPING_NS",
    "PATHS_NS",
]
