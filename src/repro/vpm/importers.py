"""Importers that load input models into the VPM model space.

Two importers mirror the original tool chain (methodology Steps 5 and 6):

* :class:`UMLImporter` — the "native UML importer": translates class
  models, object models and activity diagrams into entities and relations
  ("VIATRA2 creates entities for model elements and their relations.
  Also, atomic services are transformed into entities of the model
  space.");
* :class:`MappingImporter` — the "custom service mapping importer":
  translates service mapping pairs into entities linked to the imported
  infrastructure ("parse the XML file, traverse the content tree and find
  appropriate VPM entities in the metamodel corresponding to the type of
  each element").

A third helper, :func:`store_paths`, implements the path bookkeeping of
Step 7: discovered paths are "stored separately in the model space" in a
reserved tree (``paths.…``) for further manipulation by the UPSIM
transformation.

Namespace layout used in the model space::

    metamodel.uml.{Class,Association,Instance,AtomicService,CompositeService}
    uml.classes.<ClassName>          -- value: the Class object
    uml.instances.<instanceName>     -- value: the InstanceSpecification
    services.atomic.<serviceName>
    services.composite.<activityName>
    mapping.<atomicServiceName>      -- relations: requester, provider
    paths.<pairKey>.p<i>             -- relations: visits (ordered)
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ImportError_
from repro.uml.activity import Action, Activity
from repro.uml.classes import ClassModel
from repro.uml.objects import ObjectModel
from repro.vpm.modelspace import Entity, ModelSpace

__all__ = [
    "UMLImporter",
    "MappingImporter",
    "store_paths",
    "METAMODEL_NS",
    "CLASSES_NS",
    "INSTANCES_NS",
    "SERVICES_NS",
    "MAPPING_NS",
    "PATHS_NS",
]

METAMODEL_NS = "metamodel.uml"
CLASSES_NS = "uml.classes"
INSTANCES_NS = "uml.instances"
SERVICES_NS = "services"
MAPPING_NS = "mapping"
PATHS_NS = "paths"

_META_TYPES = (
    "Class",
    "Association",
    "Instance",
    "Link",
    "Stereotype",
    "AtomicService",
    "CompositeService",
)


def install_metamodel(space: ModelSpace) -> None:
    """Create the UML metamodel entities (idempotent)."""
    for type_name in _META_TYPES:
        space.create_entity(f"{METAMODEL_NS}.{type_name}")


class UMLImporter:
    """Translates UML models into model-space entities and relations."""

    def __init__(self, space: ModelSpace):
        self.space = space
        install_metamodel(space)

    # -- class model -------------------------------------------------------

    def import_class_model(self, class_model: ClassModel) -> List[Entity]:
        """Import classes and associations.

        Classes become entities under ``uml.classes`` typed by the
        ``Class`` metamodel entity; generalizations become typing between
        the class entities themselves so that type-extent queries follow
        the hierarchy.  Associations become ``association`` relations
        between the class entities (carrying the Association object).
        """
        class_meta = self.space.entity(f"{METAMODEL_NS}.Class")
        created: List[Entity] = []
        for cls in class_model.classes:
            entity = self.space.create_entity(
                f"{CLASSES_NS}.{cls.name}", value=cls, type_entity=class_meta
            )
            created.append(entity)
        for cls in class_model.classes:
            entity = self.space.entity(f"{CLASSES_NS}.{cls.name}")
            for parent in cls.superclasses:
                parent_fqn = f"{CLASSES_NS}.{parent.name}"
                if not self.space.has_entity(parent_fqn):
                    raise ImportError_(
                        f"superclass {parent.name!r} of {cls.name!r} not imported"
                    )
                entity.declare_supertype(self.space.entity(parent_fqn))
        for assoc in class_model.associations:
            source_fqn = f"{CLASSES_NS}.{assoc.end1.type.name}"
            target_fqn = f"{CLASSES_NS}.{assoc.end2.type.name}"
            for fqn in (source_fqn, target_fqn):
                if not self.space.has_entity(fqn):
                    raise ImportError_(
                        f"association {assoc.name!r} references class entity "
                        f"{fqn!r} not in the model space"
                    )
            self.space.create_relation(
                "association", source_fqn, target_fqn, value=assoc
            )
        return created

    # -- object model --------------------------------------------------------

    def import_object_model(self, object_model: ObjectModel) -> List[Entity]:
        """Import instances and links.

        Instances are typed both by the generic ``Instance`` metamodel
        entity and by their class entity (so ``instances_of`` a class entity
        returns its deployed instances).  Links become undirected-by-
        convention ``link`` relations carrying the Link object.
        """
        self.import_class_model(object_model.class_model)
        instance_meta = self.space.entity(f"{METAMODEL_NS}.Instance")
        created: List[Entity] = []
        for instance in object_model.instances:
            entity = self.space.create_entity(
                f"{INSTANCES_NS}.{instance.name}",
                value=instance,
                type_entity=instance_meta,
            )
            class_fqn = f"{CLASSES_NS}.{instance.classifier.name}"
            if not self.space.has_entity(class_fqn):
                raise ImportError_(
                    f"instance {instance.name!r} has classifier "
                    f"{instance.classifier.name!r} with no class entity"
                )
            entity.declare_instance_of(self.space.entity(class_fqn))
            created.append(entity)
        for link in object_model.links:
            self.space.create_relation(
                "link",
                f"{INSTANCES_NS}.{link.end1.name}",
                f"{INSTANCES_NS}.{link.end2.name}",
                value=link,
            )
        return created

    # -- activities ------------------------------------------------------------

    def import_activity(self, activity: Activity) -> Entity:
        """Import a composite-service activity.

        The composite service becomes an entity under
        ``services.composite``; each referenced atomic service becomes an
        entity under ``services.atomic`` (created once, shared between
        composites); ``contains`` relations connect composite to atomics in
        topological order (the relation value is the 0-based position).
        """
        problems = activity.validate()
        if problems:
            raise ImportError_(
                f"activity {activity.name!r} is not well-formed: {problems}"
            )
        atomic_meta = self.space.entity(f"{METAMODEL_NS}.AtomicService")
        composite_meta = self.space.entity(f"{METAMODEL_NS}.CompositeService")
        composite = self.space.create_entity(
            f"{SERVICES_NS}.composite.{activity.name}",
            value=activity,
            type_entity=composite_meta,
        )
        for position, service_name in enumerate(activity.atomic_service_names()):
            atomic = self.space.create_entity(
                f"{SERVICES_NS}.atomic.{service_name}", type_entity=atomic_meta
            )
            self.space.create_relation("contains", composite, atomic, value=position)
        return composite

    def import_bundle(self, bundle) -> None:
        """Import a full :class:`repro.uml.xmi.ModelBundle`."""
        if bundle.object_model is not None:
            self.import_object_model(bundle.object_model)
        elif bundle.class_model is not None:
            self.import_class_model(bundle.class_model)
        for activity in bundle.activities:
            self.import_activity(activity)


class MappingImporter:
    """Translates service mapping pairs into model-space entities.

    Works with any mapping object exposing ``pairs`` where each pair has
    ``atomic_service``, ``requester`` and ``provider`` string attributes
    (duck-typed to keep this substrate independent of
    :mod:`repro.core.mapping`).  Requester/provider must already exist as
    instance entities — matching "appropriate VPM entities … corresponding
    to the type of each element" — otherwise the import fails.
    """

    def __init__(self, space: ModelSpace):
        self.space = space
        install_metamodel(space)

    def import_mapping(self, mapping) -> List[Entity]:
        created: List[Entity] = []
        for pair in mapping.pairs:
            for role, component in (
                ("requester", pair.requester),
                ("provider", pair.provider),
            ):
                fqn = f"{INSTANCES_NS}.{component}"
                if not self.space.has_entity(fqn):
                    raise ImportError_(
                        f"mapping pair for {pair.atomic_service!r}: {role} "
                        f"component {component!r} has no instance entity"
                    )
            entity = self.space.create_entity(
                f"{MAPPING_NS}.{pair.atomic_service}", value=pair
            )
            self.space.create_relation(
                "requester", entity, f"{INSTANCES_NS}.{pair.requester}"
            )
            self.space.create_relation(
                "provider", entity, f"{INSTANCES_NS}.{pair.provider}"
            )
            created.append(entity)
        return created


def store_paths(
    space: ModelSpace,
    pair_key: str,
    paths: Iterable[Sequence[str]],
) -> Entity:
    """Store discovered paths in the reserved ``paths`` tree (Step 7).

    Each path (a sequence of instance names) becomes an entity
    ``paths.<pair_key>.p<i>`` with ordered ``visits`` relations to the
    instance entities; the relation value is the hop index so the path can
    be reconstructed exactly.

    Returns the ``paths.<pair_key>`` container entity.
    """
    container = space.create_entity(f"{PATHS_NS}.{pair_key}")
    for index, path in enumerate(paths):
        path_entity = container.child(f"p{index}")
        for hop, node_name in enumerate(path):
            fqn = f"{INSTANCES_NS}.{node_name}"
            if not space.has_entity(fqn):
                raise ImportError_(
                    f"path {pair_key}/p{index} visits unknown instance "
                    f"{node_name!r}"
                )
            space.create_relation("visits", path_entity, fqn, value=hop)
    return container


def load_paths(space: ModelSpace, pair_key: str) -> List[List[str]]:
    """Reconstruct the paths stored under ``paths.<pair_key>``."""
    container = space.entity(f"{PATHS_NS}.{pair_key}")
    paths: List[List[str]] = []
    for path_entity in sorted(container.children, key=lambda e: int(e.name[1:])):
        visits = space.relations_from(path_entity, "visits")
        visits.sort(key=lambda r: r.value)
        paths.append([r.target.name for r in visits])
    return paths
