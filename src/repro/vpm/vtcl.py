"""A small VTCL-style textual pattern language.

VIATRA2's textual command language (VTCL) "provides a flexible syntax to
access the VPM model space … based on mathematical formalisms and provides
declarative model queries" (Section V-C).  This module implements a
compact textual front end over :class:`repro.vpm.patterns.Pattern`, so
queries can be written as text (in files, configuration, or a REPL) rather
than built programmatically::

    pattern clients_on_edge(c, sw) {
        c : instanceof "uml.classes.Comp"
        sw = "uml.instances.e1"
        link(c, sw) undirected
    }

Statement forms inside a pattern body (one per line, ``//`` and ``#``
comments allowed):

``VAR = "FQN"``
    bind the variable to the entity with that fully-qualified name;
``VAR : instanceof "TYPE_FQN"``
    the variable's entity must be an instance of the type entity;
``VAR in "NAMESPACE"``
    the variable's entity must live under the namespace;
``NAME(SRC, DST) [undirected]``
    a relation named ``NAME`` must connect the two variables.

Multiple constraint clauses for one variable may be chained:
``c : instanceof "X" in "ns"``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import PatternError
from repro.vpm.modelspace import ModelSpace
from repro.vpm.patterns import Pattern

__all__ = ["parse_pattern", "parse_patterns", "run_query"]

_HEADER_RE = re.compile(
    r"^\s*pattern\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"\(\s*(?P<params>[^)]*)\)\s*\{\s*$"
)
_BINDING_RE = re.compile(
    r"^(?P<var>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*\"(?P<fqn>[^\"]+)\"$"
)
_CONSTRAINT_RE = re.compile(
    r"^(?P<var>[A-Za-z_][A-Za-z0-9_]*)\s*:?\s*"
    r"(?P<clauses>(?:instanceof|in)\s+.+)$"
)
_CLAUSE_RE = re.compile(
    r"(instanceof\s+\"(?P<type>[^\"]+)\")|(in\s+\"(?P<ns>[^\"]+)\")"
)
_RELATION_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(\s*(?P<src>[A-Za-z_][A-Za-z0-9_]*)\s*,"
    r"\s*(?P<dst>[A-Za-z_][A-Za-z0-9_]*)\s*\)\s*(?P<undirected>undirected)?$"
)


def _strip_comment(line: str) -> str:
    for marker in ("//", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


class _PatternBuilder:
    """Accumulates per-variable constraints before building the Pattern."""

    def __init__(self, name: str, variables: List[str]):
        self.name = name
        self.variables = variables
        self.fqn: Dict[str, str] = {}
        self.type_fqn: Dict[str, str] = {}
        self.namespace: Dict[str, str] = {}
        self.relations: List[Tuple[str, str, str, bool]] = []

    def check_declared(self, variable: str, line_number: int) -> None:
        if variable not in self.variables:
            raise PatternError(
                f"line {line_number}: variable {variable!r} not declared in "
                f"pattern {self.name!r} header"
            )

    def build(self) -> Pattern:
        pattern = Pattern(self.name)
        for variable in self.variables:
            pattern.entity(
                variable,
                fqn=self.fqn.get(variable),
                type_fqn=self.type_fqn.get(variable),
                namespace=self.namespace.get(variable),
            )
        for name, source, target, directed in self.relations:
            pattern.relation(name, source, target, directed=directed)
        return pattern


def _parse_body_line(
    builder: _PatternBuilder, line: str, line_number: int
) -> None:
    binding = _BINDING_RE.match(line)
    if binding:
        builder.check_declared(binding.group("var"), line_number)
        builder.fqn[binding.group("var")] = binding.group("fqn")
        return
    constraint = _CONSTRAINT_RE.match(line)
    if constraint:
        variable = constraint.group("var")
        builder.check_declared(variable, line_number)
        clauses = constraint.group("clauses")
        matched_any = False
        consumed = 0
        for clause in _CLAUSE_RE.finditer(clauses):
            matched_any = True
            consumed += len(clause.group(0))
            if clause.group("type"):
                builder.type_fqn[variable] = clause.group("type")
            if clause.group("ns"):
                builder.namespace[variable] = clause.group("ns")
        leftovers = _CLAUSE_RE.sub("", clauses).strip()
        if not matched_any or leftovers:
            raise PatternError(
                f"line {line_number}: cannot parse constraint clause(s) "
                f"{clauses!r}"
            )
        return
    relation = _RELATION_RE.match(line)
    if relation:
        for variable in (relation.group("src"), relation.group("dst")):
            builder.check_declared(variable, line_number)
        builder.relations.append(
            (
                relation.group("name"),
                relation.group("src"),
                relation.group("dst"),
                relation.group("undirected") is None,
            )
        )
        return
    raise PatternError(f"line {line_number}: cannot parse statement {line!r}")


def parse_patterns(text: str) -> Dict[str, Pattern]:
    """Parse all ``pattern … { … }`` blocks in *text*."""
    patterns: Dict[str, Pattern] = {}
    builder: Optional[_PatternBuilder] = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        header = _HEADER_RE.match(raw)
        if header:
            if builder is not None:
                raise PatternError(
                    f"line {line_number}: nested pattern definition"
                )
            params = [
                p.strip() for p in header.group("params").split(",") if p.strip()
            ]
            if not params:
                raise PatternError(
                    f"line {line_number}: pattern "
                    f"{header.group('name')!r} declares no variables"
                )
            if len(set(params)) != len(params):
                raise PatternError(
                    f"line {line_number}: duplicate pattern variables"
                )
            builder = _PatternBuilder(header.group("name"), params)
            continue
        if line == "}":
            if builder is None:
                raise PatternError(f"line {line_number}: unmatched '}}'")
            if builder.name in patterns:
                raise PatternError(
                    f"line {line_number}: duplicate pattern {builder.name!r}"
                )
            patterns[builder.name] = builder.build()
            builder = None
            continue
        if builder is None:
            raise PatternError(
                f"line {line_number}: statement outside a pattern block"
            )
        _parse_body_line(builder, line, line_number)
    if builder is not None:
        raise PatternError(f"pattern {builder.name!r} not closed with '}}'")
    if not patterns:
        raise PatternError("no pattern definitions found")
    return patterns


def parse_pattern(text: str) -> Pattern:
    """Parse exactly one pattern block."""
    patterns = parse_patterns(text)
    if len(patterns) != 1:
        raise PatternError(
            f"expected exactly one pattern, found {sorted(patterns)}"
        )
    return next(iter(patterns.values()))


def run_query(space: ModelSpace, text: str) -> List[Dict[str, str]]:
    """Parse one pattern and return its matches as variable→fqn dicts."""
    pattern = parse_pattern(text)
    return [
        {variable: entity.fqn for variable, entity in match.bindings}
        for match in pattern.match(space)
    ]
