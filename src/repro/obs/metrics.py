"""Counters, gauges, histograms; JSON / Prometheus / table exporters.

A :class:`MetricsRegistry` holds named metric families.  Three kinds:

* :class:`Counter` — monotonically increasing totals (paths discovered,
  BDD nodes allocated, retries);
* :class:`Gauge` — point-in-time values, either set explicitly or read
  from a callback at collection time (the cache-statistics gauges poll
  the engine / kernel LRUs this way, so the registry never holds stale
  copies);
* :class:`Histogram` — cumulative-bucket distributions (stage latency).

Families may declare label names; :meth:`Counter.labels` (etc.) returns
the child series for one label-value combination.  Collection output is
deterministic: families sort by name, series by label values, and label
pairs render sorted by label name — equal registries always produce
byte-identical exposition, whatever the insertion order was.

Exporters: :meth:`MetricsRegistry.to_json` (machine-readable snapshot),
:meth:`MetricsRegistry.to_prometheus` (Prometheus text exposition format
0.0.4, with the required HELP/label-value escaping), and
:meth:`MetricsRegistry.summary` (an aligned human table for the CLI).

Everything here is dependency-free and thread-safe; the module-global
:func:`registry` is the default sink the instrumented subsystems write
to.
"""

from __future__ import annotations

import json
import math
import re
import threading
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds) — tuned for stage/pair timings.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(items: Sequence[Tuple[str, str]]) -> str:
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in items
    )
    return "{" + body + "}"


class _Metric:
    """Shared family bookkeeping: name, help text, label names, series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, Any] = {}
        if not self.labelnames:
            self._series[()] = self._new_series()

    def _new_series(self) -> Any:
        raise NotImplementedError

    def _series_for(self, labels: Dict[str, str]) -> Any:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels "
                f"{sorted(self.labelnames)}, got {sorted(labels)}"
            )
        key: LabelKey = tuple(
            sorted((name, str(value)) for name, value in labels.items())
        )
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._new_series()
                self._series[key] = series
        return series

    def _default(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled "
                f"({sorted(self.labelnames)}); use .labels(...)"
            )
        return self._series[()]

    def series(self) -> List[Tuple[LabelKey, Any]]:
        with self._lock:
            return sorted(self._series.items())


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    class _Series:
        __slots__ = ("value", "lock")

        def __init__(self):
            self.value = 0.0
            self.lock = threading.Lock()

        def inc(self, amount: float = 1.0) -> None:
            if amount < 0:
                raise ValueError("counters only go up")
            with self.lock:
                self.value += amount

    def _new_series(self) -> "Counter._Series":
        return Counter._Series()

    def labels(self, **labels: str) -> "Counter._Series":
        return self._series_for(labels)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        return [
            (self.name, key, series.value) for key, series in self.series()
        ]


class Gauge(_Metric):
    """Point-in-time value, settable or callback-backed."""

    kind = "gauge"

    class _Series:
        __slots__ = ("_value", "fn", "lock")

        def __init__(self):
            self._value = 0.0
            self.fn: Optional[Callable[[], float]] = None
            self.lock = threading.Lock()

        def set(self, value: float) -> None:
            with self.lock:
                self.fn = None
                self._value = float(value)

        def set_function(self, fn: Callable[[], float]) -> None:
            with self.lock:
                self.fn = fn

        @property
        def value(self) -> float:
            with self.lock:
                if self.fn is not None:
                    return float(self.fn())
                return self._value

    def _new_series(self) -> "Gauge._Series":
        return Gauge._Series()

    def labels(self, **labels: str) -> "Gauge._Series":
        return self._series_for(labels)

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge from *fn* at every collection — the pattern the
        cache-statistics gauges use, so values are never stale."""
        self._default().set_function(fn)

    @property
    def value(self) -> float:
        return self._default().value

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        return [
            (self.name, key, series.value) for key, series in self.series()
        ]


class Histogram(_Metric):
    """Cumulative-bucket distribution (Prometheus histogram semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b != b or b == math.inf for b in bounds):
            raise ValueError("bucket bounds must be finite numbers")
        self.bounds = bounds
        super().__init__(name, help, labelnames)

    class _Series:
        __slots__ = ("bounds", "bucket_counts", "total", "count", "lock")

        def __init__(self, bounds: Tuple[float, ...]):
            self.bounds = bounds
            self.bucket_counts = [0] * (len(bounds) + 1)  # +Inf last
            self.total = 0.0
            self.count = 0
            self.lock = threading.Lock()

        def observe(self, value: float) -> None:
            with self.lock:
                index = len(self.bounds)
                for i, bound in enumerate(self.bounds):
                    if value <= bound:
                        index = i
                        break
                self.bucket_counts[index] += 1
                self.total += value
                self.count += 1

    def _new_series(self) -> "Histogram._Series":
        return Histogram._Series(self.bounds)

    def labels(self, **labels: str) -> "Histogram._Series":
        return self._series_for(labels)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        """Flattened cumulative samples: ``_bucket`` per bound (plus
        ``+Inf``), then ``_sum`` and ``_count`` — the exposition shape."""
        out: List[Tuple[str, LabelKey, float]] = []
        for key, series in self.series():
            with series.lock:
                counts = list(series.bucket_counts)
                total = series.total
                count = series.count
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, counts):
                cumulative += bucket_count
                le = ((("le", _format_value(bound)),))
                out.append((f"{self.name}_bucket", key + le, float(cumulative)))
            out.append(
                (f"{self.name}_bucket", key + (("le", "+Inf"),), float(count))
            )
            out.append((f"{self.name}_sum", key, total))
            out.append((f"{self.name}_count", key, float(count)))
        return out


class MetricsRegistry:
    """A named collection of metric families with deterministic export."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()

    # -- registration ---------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(
            Counter, name, help, labelnames=labelnames
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def clear(self) -> None:
        """Drop every family — a fresh registry (tests)."""
        with self._lock:
            self._metrics.clear()

    # -- collection -----------------------------------------------------------

    def collect(self) -> List[Dict[str, Any]]:
        """Deterministic snapshot: families sorted by name, each with its
        kind, help, and ``(sample name, label items, value)`` samples."""
        with self._lock:
            families = sorted(self._metrics.items())
        snapshot: List[Dict[str, Any]] = []
        for name, metric in families:
            snapshot.append(
                {
                    "name": name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "samples": metric.samples(),
                }
            )
        return snapshot

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        payload = [
            {
                "name": family["name"],
                "kind": family["kind"],
                "help": family["help"],
                "samples": [
                    {
                        "name": sample_name,
                        "labels": {k: v for k, v in key},
                        "value": value,
                    }
                    for sample_name, key, value in family["samples"]
                ],
            }
            for family in self.collect()
        ]
        return json.dumps(payload, indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4.

        HELP lines escape ``\\`` and newlines; label values additionally
        escape ``"``.  Output is byte-deterministic for equal registry
        contents (sorted families, series, and label names).
        """
        lines: List[str] = []
        for family in self.collect():
            name = family["name"]
            if family["help"]:
                lines.append(f"# HELP {name} {_escape_help(family['help'])}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for sample_name, key, value in family["samples"]:
                lines.append(
                    f"{sample_name}{_label_suffix(key)} {_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self) -> str:
        """Aligned human-readable table of every sample (the CLI view)."""
        rows: List[Tuple[str, str, str]] = []
        for family in self.collect():
            for sample_name, key, value in family["samples"]:
                label_text = ",".join(f"{k}={v}" for k, v in key)
                rows.append((sample_name, label_text, _format_value(value)))
        if not rows:
            return "(no metrics recorded)"
        name_width = max(len(r[0]) for r in rows)
        label_width = max((len(r[1]) for r in rows), default=0)
        lines = [
            f"{'metric':<{name_width}}  {'labels':<{label_width}}  value",
            "-" * (name_width + label_width + 9),
        ]
        for sample_name, label_text, value in rows:
            lines.append(
                f"{sample_name:<{name_width}}  {label_text:<{label_width}}  "
                f"{value}"
            )
        return "\n".join(lines)


#: The process-wide default registry the instrumented subsystems write to.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _DEFAULT


def counter(
    name: str, help: str = "", labelnames: Sequence[str] = ()
) -> Counter:
    """Get-or-create a counter on the default registry."""
    return _DEFAULT.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return _DEFAULT.gauge(name, help, labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return _DEFAULT.histogram(name, help, labelnames, buckets)
