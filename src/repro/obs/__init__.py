"""Structured observability: tracing and metrics for the whole chain.

The methodology is pitched as an automated pipeline (import → path
discovery → UPSIM → dependability analysis); this package makes that
chain observable without adding a single dependency:

* :mod:`repro.obs.trace` — hierarchical spans with thread-safe context
  propagation (``discover_many(jobs=N)`` workers nest correctly), JSON
  trace files, and a tree renderer (the ``upsim obs`` subcommand);
* :mod:`repro.obs.metrics` — counters / gauges / histograms with JSON,
  Prometheus-text and human-table exporters; the engine / BDD-kernel
  cache statistics are exposed as callback gauges so collection always
  reads the live values.

Tracing is off by default: the active tracer is a no-op whose ``span()``
returns one shared do-nothing context manager, so instrumentation points
cost a method call when disabled.  Enable it per scope::

    from repro import obs

    tracer = obs.Tracer()
    with obs.activate(tracer):
        report = pipeline.run(jobs=4)
    tracer.save("trace.json")
    print(obs.render(tracer))
    print(obs.registry().to_prometheus())

Counters are always on — they are coarse-grained (per stage, per pair,
per compilation, never per DFS step) and amount to one locked float add
at points that each do orders of magnitude more work.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    activate,
    current_span,
    get_tracer,
    load,
    render,
    set_tracer,
    span,
)

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "activate",
    "get_tracer",
    "set_tracer",
    "span",
    "current_span",
    "load",
    "render",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
]
