"""Hierarchical tracing: spans, context propagation, JSON export.

A :class:`Span` records one timed operation (name, attributes, wall time,
children); a :class:`Tracer` collects spans into trees.  The current span
is tracked **per thread**, so nested ``with tracer.span(...)`` blocks
build the tree automatically on any single thread; code that fans work
out over a thread pool (``discover_many(jobs=N)``, campaign workers)
captures :meth:`Tracer.current` in the submitting thread and re-attaches
it on the worker with :meth:`Tracer.context`, so cross-thread children
nest under the right parent.

The module-global *active tracer* defaults to :data:`NOOP_TRACER`, whose
``span()`` hands back one shared, do-nothing context manager — tracing
that is not explicitly enabled costs a dictionary-free method call per
instrumentation point and allocates nothing.  Enable tracing for a block
of code with::

    from repro.obs import Tracer, activate

    tracer = Tracer()
    with activate(tracer):
        pipeline.run()
    tracer.save("trace.json")

Trace files are plain JSON (see :meth:`Tracer.to_dict`); :func:`load`
reads them back and :func:`render` pretty-prints either a live tracer or
a loaded file as an indented tree — the ``upsim obs`` subcommand.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "activate",
    "span",
    "current_span",
    "load",
    "render",
]


class Span:
    """One timed, attributed operation in a trace tree."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, duration={self.duration:.6f})"


class _SpanContext:
    """Context manager for one span's lifetime on one thread."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_: Span):
        self._tracer = tracer
        self._span = span_

    def __enter__(self) -> Span:
        self._tracer._start(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self._span.attrs.setdefault(
                "error", f"{type(exc).__name__}: {exc}"
            )
        self._tracer._finish(self._span)
        return None


class Tracer:
    """Collects spans into per-thread trees with a shared clock.

    Thread-safe: span start/finish mutate shared state under a lock, and
    every thread keeps its own current-span stack, so concurrent workers
    never corrupt each other's nesting.
    """

    enabled = True

    def __init__(self):
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: List[Span] = []
        self.span_count = 0

    # -- per-thread stack -----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread (None outside spans).

        Capture this before handing work to another thread, then wrap the
        worker body in :meth:`context` to parent its spans correctly.
        """
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def context(self, parent: Optional[Span]) -> Iterator[None]:
        """Adopt *parent* as the current span for this thread.

        The no-parent case is accepted (and does nothing) so call sites
        can pass ``tracer.current()`` captured on another thread without
        branching.
        """
        if parent is None:
            yield
            return
        stack = self._stack()
        stack.append(parent)
        try:
            yield
        finally:
            stack.pop()

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """A context manager opening a child of the current span.

        Attributes are arbitrary JSON-serializable keyword pairs; more
        can be attached later through :meth:`Span.set` on the object the
        ``with`` statement binds.
        """
        return _SpanContext(self, Span(name, attrs))

    def _start(self, span_: Span) -> None:
        span_.start = time.perf_counter() - self._t0
        stack = self._stack()
        with self._lock:
            if stack:
                stack[-1].children.append(span_)
            else:
                self.roots.append(span_)
            self.span_count += 1
        stack.append(span_)

    def _finish(self, span_: Span) -> None:
        span_.end = time.perf_counter() - self._t0
        stack = self._stack()
        if stack and stack[-1] is span_:
            stack.pop()

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "version": 1,
                "span_count": self.span_count,
                "spans": [root.to_dict() for root in self.roots],
            }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def find(self, name: str) -> List[Span]:
        """Every span with *name*, depth-first across all roots."""
        found: List[Span] = []
        stack = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            if node.name == name:
                found.append(node)
            stack.extend(reversed(node.children))
        return found


class _NoopSpan:
    """The shared do-nothing span: every no-op trace call returns it."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    children: List[Any] = []
    duration = 0.0

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """API-compatible tracer that records nothing and allocates nothing."""

    enabled = False
    roots: List[Span] = []
    span_count = 0

    def span(self, name: str, **attrs: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def current(self) -> None:
        return None

    def context(self, parent: Optional[Span]) -> _NoopSpan:
        # the no-op span doubles as a no-op context manager
        return _NOOP_SPAN

    def find(self, name: str) -> List[Span]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {"version": 1, "span_count": 0, "spans": []}


NOOP_TRACER = NoopTracer()

_ACTIVE: Union[Tracer, NoopTracer] = NOOP_TRACER
_ACTIVE_LOCK = threading.Lock()


def get_tracer() -> Union[Tracer, NoopTracer]:
    """The process-wide active tracer (the no-op tracer by default)."""
    return _ACTIVE


def set_tracer(
    tracer: Optional[Union[Tracer, NoopTracer]],
) -> Union[Tracer, NoopTracer]:
    """Install *tracer* (None restores the no-op) and return the previous
    active tracer, so callers can restore it."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = tracer if tracer is not None else NOOP_TRACER
    return previous


@contextmanager
def activate(tracer: Union[Tracer, NoopTracer]) -> Iterator[Union[Tracer, NoopTracer]]:
    """Scoped :func:`set_tracer`: active inside the block, restored after."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs: Any):
    """Open a span on the active tracer (no-op unless tracing is enabled).

    This is the one call every instrumentation point makes; keeping it a
    plain module function keeps the disabled cost to a function call that
    returns a shared singleton.
    """
    return _ACTIVE.span(name, **attrs)


def current_span():
    """The active tracer's current span on this thread (None when off)."""
    return _ACTIVE.current()


# -- trace files --------------------------------------------------------------


def load(path: str) -> Dict[str, Any]:
    """Read a trace file written by :meth:`Tracer.save`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "spans" not in data:
        raise ValueError(f"{path!r} is not a trace file (no 'spans' key)")
    return data


def render(
    trace: Union[Tracer, Dict[str, Any]],
    *,
    max_depth: Optional[int] = None,
    min_seconds: float = 0.0,
) -> str:
    """Pretty-print a tracer or a loaded trace dict as an indented tree.

    ``max_depth`` truncates deep traces; ``min_seconds`` hides spans
    faster than the threshold (their children are hidden with them).
    """
    data = trace.to_dict() if not isinstance(trace, dict) else trace
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        duration = float(node.get("duration", 0.0))
        if duration < min_seconds:
            return
        if max_depth is not None and depth > max_depth:
            return
        attrs = node.get("attrs") or {}
        attr_text = " ".join(
            f"{key}={attrs[key]}" for key in sorted(attrs)
        )
        label = f"{'  ' * depth}{node['name']}"
        line = f"{label:<48} {duration * 1000.0:>10.3f} ms"
        if attr_text:
            line += f"  {attr_text}"
        lines.append(line)
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in data.get("spans", ()):
        walk(root, 0)
    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines)
