"""Command-line interface: the methodology end to end from model files.

Subcommands::

    upsim casestudy [--client t1] [--printer p2] [--server printS]
        Run the built-in USI case study: print Table I, the discovered
        paths for every mapping pair (filter with --service, parallelize
        with --jobs), the UPSIM and the availability report.

    upsim generate --models bundle.xml --service NAME --mapping mapping.xml
        Steps 5-8 on externally-authored models; writes the UPSIM as an
        XML bundle (--out) and/or Graphviz DOT (--dot).

    upsim paths --models bundle.xml --requester A --provider B
        Path discovery between two components.

    upsim analyze --models bundle.xml --service NAME --mapping mapping.xml
        Full availability analysis of the generated UPSIM.

    upsim validate --models bundle.xml
        Well-formedness constraint check of the infrastructure model.

    upsim campaign [--k 2] [--faults crash:c1 ...] [--json]
        Fault-injection campaign over the case-study service: sweep
        single- and k-fault combinations, rank by user-perceived impact.

    upsim population [--users N] [--classes SPEC] [--shards K]
        Population-scale evaluation of the case-study printing service:
        generate N simulated users over the client positions, evaluate
        per-user availability through the vectorized plane, and print
        per-class percentiles plus the worst-served users.  SPEC is
        ``NAME[:WEIGHT[:DEVICE_A[:JITTER]]],...``.

    upsim churn [--events N] [--seed S] [--deadline MS] [--full]
        Live-churn evaluation on a generated campus network: drive a
        deterministic seeded event stream (link cut/restore/flap,
        component crash/restore) through the delta-aware
        :class:`~repro.core.churn.LiveEvaluator` and report epochs,
        deadline misses, coalescing, quarantined events and the final
        availability snapshot.  ``--full`` switches to the
        full-recompile oracle for comparison.

    upsim dimensions ls
        List the registered user-perceived dimensions
        (:mod:`repro.dimensions`): name, evaluation mode, fold semiring,
        probability rule, unit and description.  ``casestudy`` and
        ``analyze`` accept ``--dimensions NAME,NAME,...`` to evaluate any
        registered subset in one kernel pass alongside the availability
        report.

    upsim obs trace.json
        Pretty-print a trace file produced by ``--trace`` as an indented
        span tree.

    upsim store {ls|verify|gc} --store DIR
        Inspect the content-addressed artifact store (:mod:`repro.store`):
        list stored objects, verify every digest, or garbage-collect down
        to ``--max-bytes``.

``casestudy`` and ``campaign`` accept ``--trace FILE.json`` (record a
hierarchical span trace of the whole run) and ``--metrics`` (print the
collected counters/gauges/histograms as a table plus the Prometheus text
exposition) — see :mod:`repro.obs`.  They also accept ``--store DIR``
(equivalent to setting ``REPRO_STORE=DIR``): compiled topologies, path
enumerations and availability kernels are persisted there and mapped
back zero-copy on the next run, so a fresh process warm-starts instead
of recompiling.

Model files use the XML dialect of :mod:`repro.uml.xmi`; mapping files use
the Figure 3 schema of :mod:`repro.core.mapping`.

Exit codes
----------
Every :class:`~repro.errors.ReproError` subclass maps to a distinct
non-zero exit code with a one-line ``error:`` message (no traceback), so
scripts can branch on the failure class:

====  ========================
code  failure
====  ========================
   0  success
   1  ``validate`` found constraint violations / ``sla`` not met
   2  other error (generic :class:`ReproError`, ``OSError``, usage)
   3  :class:`ModelError` (incl. constraint/stereotype violations)
   4  :class:`SerializationError`
   5  :class:`ModelSpaceError`
   6  :class:`MappingError`
   7  :class:`ServiceError`
   8  :class:`TopologyError`
   9  :class:`PathDiscoveryTimeout`
  10  :class:`UnreachablePairError`
  11  :class:`PathDiscoveryError`
  12  :class:`AnalysisError`
  13  :class:`FaultPlanError`
  14  :class:`StoreError`
====  ========================
"""

from __future__ import annotations

import argparse
import sys
from types import SimpleNamespace
from typing import List, Optional

from repro import store as _artifact_store
from repro.analysis import analyze_upsim
from repro.core.engine import discover_many
from repro.core.mapping import ServiceMapping
from repro.core.pathdiscovery import discover_paths
from repro.core.pipeline import MethodologyPipeline
from repro.errors import (
    AnalysisError,
    FaultPlanError,
    MappingError,
    ModelError,
    ModelSpaceError,
    PathDiscoveryError,
    PathDiscoveryTimeout,
    ReproError,
    SerializationError,
    ServiceError,
    StoreError,
    TopologyError,
    UnreachablePairError,
)
from repro.network.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.services.composite import CompositeService
from repro.uml import xmi
from repro.uml.constraints import check_infrastructure
from repro.viz import (
    mapping_table,
    object_model_dot,
    object_model_text,
    paths_text,
)

__all__ = ["main", "build_parser", "EXIT_CODES", "exit_code_for"]

#: most-derived classes first — the first ``isinstance`` match wins, so a
#: :class:`PathDiscoveryTimeout` maps to 9, not to its base class's 11.
EXIT_CODES = (
    (PathDiscoveryTimeout, 9),
    (UnreachablePairError, 10),
    (PathDiscoveryError, 11),
    (SerializationError, 4),
    (ModelSpaceError, 5),
    (MappingError, 6),
    (ServiceError, 7),
    (TopologyError, 8),
    (AnalysisError, 12),
    (FaultPlanError, 13),
    (StoreError, 14),
    (ModelError, 3),
)


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI exit code documented above."""
    for exc_class, code in EXIT_CODES:
        if isinstance(exc, exc_class):
            return code
    return 2


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE.json",
        help="record a hierarchical span trace of the run to FILE.json "
        "(inspect with 'upsim obs FILE.json')",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print collected metrics (table + Prometheus text exposition)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="content-addressed artifact store directory: compiled "
        "engines/kernels persist here and warm-start the next run "
        "(equivalent to REPRO_STORE=DIR)",
    )


def _add_compile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reorder",
        choices=("auto", "sift", "none"),
        default=None,
        help="BDD dynamic variable reordering: 'auto' sifts only "
        "badly-bloated diagrams (default), 'sift' always runs a "
        "sifting pass, 'none' keeps the seed order",
    )
    parser.add_argument(
        "--compile-jobs",
        type=int,
        default=None,
        metavar="N",
        help="BDD compile workers for multi-structure fan-out "
        "(default: in-process serial compilation)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="upsim",
        description="User-perceived service infrastructure model generation "
        "and dependability analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    case = sub.add_parser("casestudy", help="run the built-in USI case study")
    case.add_argument("--client", default="t1")
    case.add_argument("--printer", default="p2")
    case.add_argument("--server", default="printS")
    case.add_argument(
        "--mc", type=int, default=0, help="Monte-Carlo cross-check samples"
    )
    case.add_argument(
        "--service",
        default=None,
        help="only report discovered paths for this atomic service",
    )
    case.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel path-discovery workers (default: serial)",
    )
    case.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject a fault (repeatable), e.g. crash:c1, cut:e1|d1, "
        "degrade:c2:mtbf=100; runs in degradation-tolerant mode and "
        "reports per-pair diagnostics plus the partial UPSIM",
    )
    case.add_argument(
        "--kernel",
        choices=("bdd", "ie", "enum"),
        default="bdd",
        help="availability evaluator: compiled BDD kernel (default), "
        "inclusion-exclusion, or reference state enumeration",
    )
    case.add_argument(
        "--dimensions",
        default=None,
        metavar="NAMES",
        help="comma-separated registered user-perceived dimensions to "
        "evaluate alongside the availability report "
        "(see 'upsim dimensions ls'), e.g. "
        "availability,responsiveness,performability",
    )
    _add_compile_args(case)
    _add_observability_args(case)

    campaign = sub.add_parser(
        "campaign",
        help="fault-injection campaign over the case-study service",
    )
    campaign.add_argument("--client", default="t1")
    campaign.add_argument("--printer", default="p2")
    campaign.add_argument("--server", default="printS")
    campaign.add_argument(
        "--k", type=int, default=1, help="sweep 1..k simultaneous faults"
    )
    campaign.add_argument(
        "--links", action="store_true", help="also inject link cuts"
    )
    campaign.add_argument(
        "--faults",
        action="append",
        default=None,
        metavar="SPEC",
        help="explicit candidate fault (repeatable); default: one crash "
        "per UPSIM component",
    )
    campaign.add_argument(
        "--ticks", type=int, default=4, help="schedule ticks for flap faults"
    )
    campaign.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    campaign.add_argument(
        "--limit", type=int, default=10, help="rows in the text ranking"
    )
    campaign.add_argument(
        "--kernel",
        choices=("bdd", "ie", "enum"),
        default="bdd",
        help="availability evaluator for the sweep (default: compiled BDD)",
    )
    _add_compile_args(campaign)
    _add_observability_args(campaign)

    population = sub.add_parser(
        "population",
        help="population-scale availability of the case-study service",
    )
    population.add_argument(
        "--users", type=int, default=10_000, help="population size"
    )
    population.add_argument(
        "--classes",
        default="std:4:0.98:0.05,gold:1:0.9999",
        metavar="SPEC",
        help="user classes as NAME[:WEIGHT[:DEVICE_A[:JITTER]]],... "
        "(default: %(default)s)",
    )
    population.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shared-memory shard workers (default: single-process batching)",
    )
    population.add_argument("--printer", default="p2")
    population.add_argument("--server", default="printS")
    population.add_argument(
        "--seed", type=int, default=0, help="population generator seed"
    )
    population.add_argument(
        "--top", type=int, default=5, help="worst-served users to list"
    )
    population.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel path-discovery workers (default: serial)",
    )
    _add_compile_args(population)
    _add_observability_args(population)

    churn = sub.add_parser(
        "churn",
        help="live-churn evaluation with delta-aware recomputation",
    )
    churn.add_argument(
        "--events", type=int, default=200, help="churn events to drive"
    )
    churn.add_argument(
        "--seed", type=int, default=0, help="event stream seed"
    )
    churn.add_argument(
        "--pairs", type=int, default=4, help="client→server pairs to evaluate"
    )
    churn.add_argument(
        "--dist", type=int, default=2, help="campus distribution switches"
    )
    churn.add_argument(
        "--edges", type=int, default=2, help="edge switches per distribution"
    )
    churn.add_argument(
        "--clients", type=int, default=3, help="clients per edge switch"
    )
    churn.add_argument(
        "--single-homed",
        action="store_true",
        help="drop the redundant edge uplinks (default: dual-homed)",
    )
    churn.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="MS",
        help="per-event recompute deadline in milliseconds "
        "(default: unbounded)",
    )
    churn.add_argument(
        "--retries",
        type=int,
        default=2,
        help="recompute retries before an event is quarantined",
    )
    churn.add_argument(
        "--window",
        type=int,
        default=8,
        help="events coalesced per catch-up attempt while degraded",
    )
    churn.add_argument(
        "--full",
        action="store_true",
        help="full-recompile oracle instead of delta-aware recomputation",
    )
    churn.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    _add_compile_args(churn)
    _add_observability_args(churn)

    store_cmd = sub.add_parser(
        "store", help="inspect the content-addressed artifact store"
    )
    store_cmd.add_argument(
        "action",
        choices=("ls", "verify", "gc"),
        help="ls: list stored objects; verify: recheck every digest; "
        "gc: evict least-recently-used objects down to --max-bytes",
    )
    store_cmd.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store directory (default: $REPRO_STORE)",
    )
    store_cmd.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc target size in bytes (default: $REPRO_STORE_MAX_BYTES)",
    )

    dimensions_cmd = sub.add_parser(
        "dimensions",
        help="inspect the user-perceived dimension registry",
    )
    dimensions_cmd.add_argument(
        "action",
        choices=("ls",),
        help="ls: list the registered dimensions (built-in and any "
        "loaded via the repro.dimensions registry)",
    )

    obs_cmd = sub.add_parser(
        "obs", help="pretty-print a trace file written by --trace"
    )
    obs_cmd.add_argument("tracefile", help="JSON trace file")
    obs_cmd.add_argument(
        "--max-depth", type=int, default=None, help="truncate deep traces"
    )
    obs_cmd.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        help="hide spans faster than this many milliseconds",
    )

    def add_model_args(p: argparse.ArgumentParser, with_service: bool) -> None:
        p.add_argument("--models", required=True, help="XML model bundle")
        if with_service:
            p.add_argument("--service", required=True, help="activity name")
            p.add_argument("--mapping", required=True, help="mapping XML file")
            p.add_argument(
                "--jobs",
                type=int,
                default=None,
                help="parallel path-discovery workers (default: serial)",
            )

    gen = sub.add_parser("generate", help="generate a UPSIM from model files")
    add_model_args(gen, True)
    gen.add_argument("--out", help="write the UPSIM as an XML bundle")
    gen.add_argument("--dot", help="write the UPSIM as Graphviz DOT")

    paths = sub.add_parser("paths", help="discover all requester→provider paths")
    add_model_args(paths, False)
    paths.add_argument("--requester", required=True)
    paths.add_argument("--provider", required=True)
    paths.add_argument("--max-depth", type=int, default=None)
    paths.add_argument("--max-paths", type=int, default=None)

    analyze = sub.add_parser("analyze", help="availability analysis of a UPSIM")
    add_model_args(analyze, True)
    _add_compile_args(analyze)
    analyze.add_argument("--formula", choices=("paper", "exact"), default="paper")
    analyze.add_argument("--mc", type=int, default=0)
    analyze.add_argument(
        "--no-links", action="store_true", help="ignore link failures"
    )
    analyze.add_argument(
        "--kernel",
        choices=("bdd", "ie", "enum"),
        default="bdd",
        help="availability evaluator (default: compiled BDD)",
    )
    analyze.add_argument(
        "--dimensions",
        default=None,
        metavar="NAMES",
        help="comma-separated registered user-perceived dimensions to "
        "evaluate alongside the availability report "
        "(see 'upsim dimensions ls')",
    )

    validate = sub.add_parser("validate", help="constraint-check a model bundle")
    validate.add_argument("--models", required=True)

    impact = sub.add_parser(
        "impact", help="failure-impact triage list for a UPSIM"
    )
    add_model_args(impact, True)
    impact.add_argument(
        "--links", action="store_true", help="also rank cable failures"
    )

    inventory_cmd = sub.add_parser(
        "inventory", help="per-class inventory and availability budget"
    )
    inventory_cmd.add_argument("--models", required=True)

    diversity = sub.add_parser(
        "diversity", help="path-diversity profile of a requester/provider pair"
    )
    add_model_args(diversity, False)
    diversity.add_argument("--requester", required=True)
    diversity.add_argument("--provider", required=True)

    sla = sub.add_parser(
        "sla", help="check a required availability and plan upgrades"
    )
    add_model_args(sla, True)
    sla.add_argument(
        "--required", type=float, required=True, help="required availability, e.g. 0.999"
    )

    query = sub.add_parser(
        "query", help="run a VTCL-style pattern query against the model space"
    )
    query.add_argument("--models", required=True)
    query.add_argument(
        "--pattern-file", required=True, help="file with one pattern block"
    )
    return parser


def _load_bundle(path: str) -> xmi.ModelBundle:
    bundle = xmi.load(path)
    if bundle.object_model is None:
        raise ReproError(f"model bundle {path!r} contains no object model")
    return bundle


def _composite_from_bundle(bundle: xmi.ModelBundle, name: str) -> CompositeService:
    from repro.services.atomic import AtomicService

    activity = bundle.activity(name)
    atomics = [
        AtomicService(service_name)
        for service_name in dict.fromkeys(activity.atomic_service_names())
    ]
    return CompositeService(activity, atomics)


def _run_pipeline(args: argparse.Namespace):
    bundle = _load_bundle(args.models)
    service = _composite_from_bundle(bundle, args.service)
    mapping = ServiceMapping.load(args.mapping)
    pipeline = (
        MethodologyPipeline()
        .set_infrastructure(bundle.object_model)
        .set_service(service)
        .set_mapping(mapping)
    )
    report = pipeline.run(jobs=getattr(args, "jobs", None))
    assert report.upsim is not None
    return bundle, report.upsim


def _parse_dimensions(args: argparse.Namespace) -> Optional[List[str]]:
    """The --dimensions option as a name list (None when not given)."""
    raw = getattr(args, "dimensions", None)
    if raw is None:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if not names:
        raise AnalysisError(
            "--dimensions needs at least one dimension name; "
            "see 'upsim dimensions ls'"
        )
    return names


def cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.casestudy import printing_mapping, printing_service, usi_builder
    from repro.core.pathdiscovery import PathSet
    from repro.core.upsim import generate_upsim
    from repro.vpm import MappingImporter, ModelSpace, UMLImporter

    # One span per methodology step (paper Figure 4): Steps 1-4 construct
    # the input models, Steps 5-8 are the automated chain.
    with _trace.span("casestudy.step1_annotate_profiles"):
        builder = usi_builder()
    with _trace.span("casestudy.step2_object_diagram"):
        infrastructure = builder.build()
    topology = Topology(infrastructure)
    plan = None
    if args.inject:
        from repro.resilience import FaultPlan

        plan = FaultPlan.parse(args.inject)
        if not plan.is_resolved:
            plan = plan.at(0)
        topology = plan.apply(topology)
        print(f"injected faults: {', '.join(plan.specs())}")
        print()
    with _trace.span("casestudy.step3_service_description"):
        service = printing_service()
    with _trace.span("casestudy.step4_mapping"):
        mapping = printing_mapping(args.client, args.printer, args.server)
    print(mapping_table(mapping, title="Service mapping (Table I schema):"))
    print()
    pairs = mapping.pairs_for_service(service)
    if args.service is not None:
        pairs = [p for p in pairs if p.atomic_service == args.service]
        if not pairs:
            known = ", ".join(p.atomic_service for p in mapping.pairs)
            raise ReproError(
                f"no mapping pair for atomic service {args.service!r} "
                f"(known: {known})"
            )
    with _trace.span("casestudy.step5_import_uml"):
        space = ModelSpace()
        importer = UMLImporter(space)
        importer.import_object_model(infrastructure)
        importer.import_activity(service.activity)
    with _trace.span("casestudy.step6_import_mapping"):
        # pairs naming unknown components are left to Step 7, which
        # diagnoses them properly (missing endpoint -> PathDiscoveryError)
        importable = SimpleNamespace(
            pairs=[
                p
                for p in pairs
                if infrastructure.has_instance(p.requester)
                and infrastructure.has_instance(p.provider)
            ]
        )
        MappingImporter(space).import_mapping(importable)
    endpoint_pairs = [(p.requester, p.provider) for p in pairs]
    with _trace.span(
        "casestudy.step7_path_discovery", pairs=len(endpoint_pairs)
    ):
        if plan is None:
            discovered = discover_many(topology, endpoint_pairs, jobs=args.jobs)
            supplied = None
        else:
            from repro.resilience import (
                ResiliencePolicy,
                discover_many_resilient,
            )

            outcome = discover_many_resilient(
                topology,
                endpoint_pairs,
                policy=ResiliencePolicy(jobs=args.jobs),
            )
            discovered = {
                pair: outcome.path_sets.get(pair, PathSet(pair[0], pair[1]))
                for pair in dict.fromkeys(endpoint_pairs)
            }
            print("pair diagnostics:")
            for diagnostic in outcome.diagnostics:
                print(f"  {diagnostic.describe()}")
            print()
            supplied = {
                p.atomic_service: discovered[(p.requester, p.provider)]
                for p in pairs
            }
    for pair in pairs:
        print(f"atomic service {pair.atomic_service!r}:")
        print(paths_text(discovered[(pair.requester, pair.provider)]))
    print()
    with _trace.span("casestudy.step8_generate_upsim"):
        upsim = generate_upsim(
            topology,
            service,
            mapping,
            path_sets=supplied,
            partial=plan is not None,
        )
    print(object_model_text(upsim.model))
    print()
    print(
        analyze_upsim(
            upsim,
            montecarlo_samples=args.mc,
            kernel=args.kernel,
            dimensions=_parse_dimensions(args),
        ).to_text()
    )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.casestudy import printing_mapping, printing_service, usi_topology
    from repro.resilience import run_campaign

    report = run_campaign(
        usi_topology(),
        printing_service(),
        printing_mapping(args.client, args.printer, args.server),
        candidates=args.faults,
        k=args.k,
        ticks=args.ticks,
        include_links=args.links,
        kernel=args.kernel,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.to_text(limit=args.limit))
        spofs = report.single_points_of_failure()
        if spofs:
            print()
            print(
                "single points of failure: "
                + ", ".join(" + ".join(r.faults) for r in spofs)
            )
    return 0


def cmd_population(args: argparse.Namespace) -> int:
    from repro.casestudy import (
        CLIENTS,
        printing_mapping,
        printing_service,
        usi_topology,
    )
    from repro.workload import (
        Population,
        evaluate_population,
        parse_user_classes,
    )

    if args.users < 1:
        raise AnalysisError(f"--users must be >= 1, got {args.users}")
    classes = parse_user_classes(args.classes)
    population = Population.generate(
        args.users, classes, CLIENTS, seed=args.seed
    )
    report = evaluate_population(
        usi_topology(),
        printing_service(),
        lambda client: printing_mapping(client, args.printer, args.server),
        population,
        shards=args.shards,
        jobs=args.jobs,
        top=args.top,
    )
    print(report.to_text())
    if report.shards:
        timings = ", ".join(f"{s:.3f}s" for s in report.shard_seconds)
        print()
        print(f"shard timings: {timings}")
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    import json as _json

    from repro.core.churn import ChurnPolicy, ChurnStream, LiveEvaluator
    from repro.network.generators import campus

    if args.events < 1:
        raise AnalysisError(f"--events must be >= 1, got {args.events}")
    builder = campus(
        dist_switches=args.dist,
        edges_per_dist=args.edges,
        clients_per_edge=args.clients,
        dual_homed=not args.single_homed,
    )
    model = builder.object_model
    clients = sorted(
        (inst.name for inst in model.instances if inst.name.startswith("client")),
        key=lambda n: (len(n), n),
    )
    if args.pairs < 1 or args.pairs > len(clients):
        raise TopologyError(
            f"--pairs must be in [1, {len(clients)}] for this campus, "
            f"got {args.pairs}"
        )
    pairs = [(client, "server") for client in clients[: args.pairs]]
    policy = ChurnPolicy(
        deadline=None if args.deadline is None else args.deadline / 1000.0,
        max_retries=args.retries,
        coalesce_window=args.window,
        delta=not args.full,
    )
    # the incremental kernel only understands explicit sift-at-epoch
    # ("auto" is a compile_structure policy, meaningless mid-churn)
    churn_reorder = "sift" if getattr(args, "reorder", None) == "sift" else "none"
    evaluator = LiveEvaluator(model, pairs, policy=policy, reorder=churn_reorder)
    stream = ChurnStream(model, pairs, seed=args.seed)
    report = evaluator.run(stream.events(args.events))
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    mode = "full-recompile oracle" if args.full else "delta-aware"
    final = report.final
    assert final is not None
    print(
        f"churn over campus({args.dist}x{args.edges}x{args.clients}, "
        f"{'single' if args.single_homed else 'dual'}-homed), "
        f"{len(pairs)} pair(s), mode: {mode}"
    )
    print(
        f"  events {report.events}  applied {report.applied}  "
        f"coalesced {report.coalesced}  quarantined {len(report.quarantined)}"
    )
    print(
        f"  recomputes {report.recomputes}  epochs {report.epochs}  "
        f"deadline misses {report.deadline_misses}  retries {report.retries}"
    )
    print(
        f"  elapsed {report.elapsed:.3f}s "
        f"({report.events / report.elapsed:.0f} events/s)"
        if report.elapsed > 0
        else f"  elapsed {report.elapsed:.3f}s"
    )
    snap = final.snapshot
    staleness = (
        f"stale ({final.lag_events} event(s) behind, "
        f"{final.age_seconds:.3f}s old)"
        if final.stale
        else "fresh"
    )
    print(f"  final epoch {snap.epoch}: {staleness}")
    print(f"  service availability: {snap.availability:.9f}")
    for pair, value in sorted(snap.pair_availability.items()):
        marker = "  (disconnected)" if tuple(sorted(pair)) in snap.disconnected else ""
        print(f"    {pair[0]} -> {pair[1]}: {value:.9f}{marker}")
    for parked in report.quarantined:
        print(
            f"  quarantined: {parked.event!r} after {parked.attempts} "
            f"attempt(s): {parked.error}"
        )
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    import os as _os

    root = args.store or _os.environ.get(_artifact_store.ENV_STORE)
    if not root:
        raise StoreError(
            "no store directory: pass --store DIR or set "
            f"{_artifact_store.ENV_STORE}"
        )
    store = _artifact_store._store_for(root)
    if args.action == "ls":
        rows = sorted(store.objects(), key=lambda o: o.mtime, reverse=True)
        header = f"{'digest':<32} {'kind':<8} {'bytes':>10}  key"
        print(header)
        print("-" * len(header))
        for obj in rows:
            print(
                f"{obj.digest:<32} {obj.kind:<8} {obj.nbytes:>10}  "
                + "/".join(obj.key)
            )
        total = sum(obj.nbytes for obj in rows)
        print(f"({len(rows)} object(s), {total} bytes)")
        return 0
    if args.action == "verify":
        ok, corrupt = store.verify_all()
        print(f"verified {len(ok) + len(corrupt)} object(s): {len(ok)} ok")
        for obj in corrupt:
            print(f"  corrupt: {obj.digest} ({obj.kind}) at {obj.path}")
        return 1 if corrupt else 0
    removed, reclaimed = store.gc(args.max_bytes)
    print(
        f"gc removed {removed} object(s), reclaimed {reclaimed} bytes "
        f"({store.total_bytes()} bytes remain)"
    )
    return 0


def cmd_dimensions(args: argparse.Namespace) -> int:
    from repro.dimensions import default_registry

    registry = default_registry()
    header = (
        f"{'name':<16} {'mode':<9} {'fold':<17} {'rule':<12} "
        f"{'unit':<5} description"
    )
    print(header)
    print("-" * len(header))
    for dimension in registry:
        rule = dimension.prob_rule if dimension.mode == "bdd-prob" else "-"
        print(
            f"{dimension.name:<16} {dimension.mode:<9} "
            f"{dimension.semiring.name:<17} {rule:<12} "
            f"{dimension.unit or '-':<5} {dimension.description}"
        )
    print(f"({len(registry)} dimension(s) registered)")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    try:
        data = _trace.load(args.tracefile)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    print(
        _trace.render(
            data,
            max_depth=args.max_depth,
            min_seconds=args.min_ms / 1000.0,
        )
    )
    print(f"({data.get('span_count', 0)} span(s) recorded)")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    bundle, upsim = _run_pipeline(args)
    print(object_model_text(upsim.model))
    if args.out:
        out_bundle = xmi.ModelBundle(
            profiles=bundle.profiles,
            class_model=bundle.class_model,
            object_model=upsim.model,
        )
        xmi.dump(out_bundle, args.out)
        print(f"UPSIM written to {args.out}")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(object_model_dot(upsim.model))
        print(f"DOT written to {args.dot}")
    return 0


def cmd_paths(args: argparse.Namespace) -> int:
    bundle = _load_bundle(args.models)
    topology = Topology(bundle.object_model)
    path_set = discover_paths(
        topology,
        args.requester,
        args.provider,
        max_depth=args.max_depth,
        max_paths=args.max_paths,
    )
    print(paths_text(path_set))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    _, upsim = _run_pipeline(args)
    report = analyze_upsim(
        upsim,
        formula=args.formula,
        include_links=not args.no_links,
        montecarlo_samples=args.mc,
        kernel=args.kernel,
        dimensions=_parse_dimensions(args),
    )
    print(report.to_text())
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    bundle = _load_bundle(args.models)
    violations = check_infrastructure(bundle.object_model)
    if not violations:
        print(
            f"model {bundle.object_model.name!r} is well-formed "
            f"({len(bundle.object_model)} instances, "
            f"{len(bundle.object_model.links)} links)"
        )
        return 0
    for violation in violations:
        print(violation)
    return 1


def cmd_impact(args: argparse.Namespace) -> int:
    from repro.analysis import impact_table

    _, upsim = _run_pipeline(args)
    header = (
        f"{'component':<14} {'hard outages':>12} {'degraded':>9} "
        f"{'A | component down':>19}"
    )
    print(header)
    print("-" * len(header))
    for impact in impact_table(upsim, include_links=args.links):
        print(
            f"{impact.component:<14} {len(impact.disconnected_services):>12} "
            f"{len(impact.degraded_services):>9} "
            f"{impact.conditional_availability:>19.9f}"
        )
    return 0


def cmd_inventory(args: argparse.Namespace) -> int:
    from repro.network import articulation_points, availability_budget, inventory

    bundle = _load_bundle(args.models)
    topology = Topology(bundle.object_model)
    budget = availability_budget(topology)
    header = (
        f"{'class':<12} {'kind':<9} {'count':>6} {'MTBF [h]':>10} "
        f"{'MTTR [h]':>9} {'A':>11} {'downtime share':>15}"
    )
    print(header)
    print("-" * len(header))
    for row in inventory(topology):
        print(
            f"{row.class_name:<12} {row.kind:<9} {row.count:>6} "
            f"{row.mtbf:>10.0f} {row.mttr:>9.2f} {row.availability:>11.7f} "
            f"{budget[row.class_name]:>14.1%}"
        )
    points = sorted(articulation_points(topology))
    print(f"\narticulation points (topology-level SPOFs): {', '.join(points)}")
    return 0


def cmd_diversity(args: argparse.Namespace) -> int:
    from repro.core.diversity import diversity_report

    bundle = _load_bundle(args.models)
    topology = Topology(bundle.object_model)
    report = diversity_report(topology, args.requester, args.provider)
    print(f"diversity profile {report.requester} -> {report.provider}:")
    print(f"  discovered paths:      {report.path_count}")
    print(f"  node-disjoint paths:   {report.node_disjoint_paths}")
    print(f"  edge-disjoint paths:   {report.edge_disjoint_paths}")
    print(f"  hops (min..max):       {report.shortest_hops}..{report.longest_hops}")
    spofs = ", ".join(report.single_points_of_failure) or "(none)"
    print(f"  single points of failure: {spofs}")
    verdict = (
        "survives any single intermediate node failure"
        if report.survives_any_single_node_failure
        else "a single node failure can disconnect this pair"
    )
    print(f"  verdict: {verdict}")
    return 0


def cmd_sla(args: argparse.Namespace) -> int:
    from repro.analysis import check_sla, improvement_plan

    _, upsim = _run_pipeline(args)
    verdict = check_sla(upsim, args.required)
    status = "MET" if verdict.met else "VIOLATED"
    print(
        f"SLA {args.required:.6f} for {verdict.service_name!r}: {status} "
        f"(achieved {verdict.achieved:.9f}, margin {verdict.margin:+.2e})"
    )
    print(
        f"expected downtime {verdict.expected_downtime_minutes_per_year:.0f} "
        f"min/year vs allowed "
        f"{verdict.allowed_downtime_minutes_per_year:.0f} min/year"
    )
    if not verdict.met:
        print("\nsingle-component upgrade options (A_component -> 1):")
        for option in improvement_plan(upsim, args.required)[:5]:
            marker = "closes gap" if option.closes_gap else "insufficient"
            print(
                f"  {option.component:<14} achievable {option.achievable:.9f} "
                f"({marker})"
            )
        return 1
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.vpm import ModelSpace, UMLImporter, run_query

    bundle = _load_bundle(args.models)
    space = ModelSpace()
    importer = UMLImporter(space)
    importer.import_object_model(bundle.object_model)
    for activity in bundle.activities:
        importer.import_activity(activity)
    with open(args.pattern_file, "r", encoding="utf-8") as handle:
        text = handle.read()
    results = run_query(space, text)
    if not results:
        print("no matches")
        return 0
    variables = sorted(results[0])
    print("  ".join(f"{v:<24}" for v in variables))
    for row in results:
        print("  ".join(f"{row[v]:<24}" for v in variables))
    print(f"({len(results)} match(es))")
    return 0


_COMMANDS = {
    "casestudy": cmd_casestudy,
    "campaign": cmd_campaign,
    "population": cmd_population,
    "churn": cmd_churn,
    "dimensions": cmd_dimensions,
    "obs": cmd_obs,
    "store": cmd_store,
    "generate": cmd_generate,
    "paths": cmd_paths,
    "analyze": cmd_analyze,
    "validate": cmd_validate,
    "impact": cmd_impact,
    "inventory": cmd_inventory,
    "diversity": cmd_diversity,
    "sla": cmd_sla,
    "query": cmd_query,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path: Optional[str] = getattr(args, "trace", None)
    show_metrics: bool = getattr(args, "metrics", False)
    store_dir: Optional[str] = getattr(args, "store", None)
    tracer = _trace.Tracer() if trace_path else _trace.NOOP_TRACER
    reorder_opt: Optional[str] = getattr(args, "reorder", None)
    compile_jobs_opt: Optional[int] = getattr(args, "compile_jobs", None)
    try:
        if reorder_opt is not None or compile_jobs_opt is not None:
            from repro.dependability.bdd import configure_compile

            configure_compile(reorder=reorder_opt, jobs=compile_jobs_opt)
        if store_dir and args.command != "store":
            _artifact_store.configure(store_dir)
        with _trace.activate(tracer):
            code = _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = exit_code_for(exc)
    finally:
        if store_dir and args.command != "store":
            _artifact_store.reset()
    if trace_path:
        assert isinstance(tracer, _trace.Tracer)
        tracer.save(trace_path)
        print()
        print(f"trace written to {trace_path} ({tracer.span_count} span(s))")
    if show_metrics:
        print()
        print(_metrics.registry().summary())
        print()
        print(_metrics.registry().to_prometheus(), end="")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
