"""Synthetic topology generators for scalability experiments.

Section V-D claims the all-paths discovery "reach[es] O(n!) for a fully
interconnected graph of n nodes" while "real networks usually contain few
loops, [and] most clients are located in tree-like structures with a low
number of edges."  These generators produce the graph families that bench
suite ``benchmarks/test_bench_pathdiscovery.py`` sweeps to reproduce that
claim:

* :func:`campus` — tree-like periphery hanging off a redundant core, the
  same shape as the USI network (benign path counts);
* :func:`balanced_tree` — the extreme tree case (exactly one path);
* :func:`ring` — one cycle (exactly two paths between any pair);
* :func:`ladder` — cycle rank grows linearly, path count grows
  exponentially in the number of rungs;
* :func:`complete` — the factorial worst case;
* :func:`erdos_renyi` — random graphs for average-case behaviour.

All generators return a :class:`~repro.network.builder.TopologyBuilder`
whose object model is fully profile-annotated, so the generated networks
run through the *same* pipeline as the case study (path discovery, UPSIM
generation, availability analysis).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.network.builder import TopologyBuilder
from repro.network.components import DeviceSpec

__all__ = [
    "generic_specs",
    "campus",
    "balanced_tree",
    "ring",
    "ladder",
    "complete",
    "erdos_renyi",
    "endpoints",
]


def generic_specs() -> List[DeviceSpec]:
    """Device types shared by the synthetic generators.

    MTBF/MTTR values follow the magnitudes of Figure 8: infrastructure
    switches are far more reliable than clients.
    """
    return [
        DeviceSpec("CoreSwitch", "Switch", mtbf=183498.0, mttr=0.5),
        DeviceSpec("DistSwitch", "Switch", mtbf=188575.0, mttr=0.5),
        DeviceSpec("EdgeSwitch", "Switch", mtbf=199000.0, mttr=0.5),
        DeviceSpec("GenServer", "Server", mtbf=60000.0, mttr=0.1),
        DeviceSpec("GenClient", "Client", mtbf=3000.0, mttr=24.0),
    ]


def _builder(name: str) -> TopologyBuilder:
    builder = TopologyBuilder(name)
    for spec in generic_specs():
        builder.device_type(spec)
    return builder


def endpoints(builder: TopologyBuilder) -> Tuple[str, str]:
    """Conventional (requester, provider) pair of a generated topology.

    Generators attach a client named ``client`` and a server named
    ``server`` at structurally distant positions.
    """
    model = builder.object_model
    for name in ("client", "server"):
        if not model.has_instance(name):
            raise TopologyError(
                f"generated topology lacks conventional endpoint {name!r}"
            )
    return "client", "server"


def campus(
    *,
    dist_switches: int = 2,
    edges_per_dist: int = 2,
    clients_per_edge: int = 3,
    dual_homed: bool = False,
    name: str = "campus",
) -> TopologyBuilder:
    """A campus network: redundant 2-switch core, tree periphery.

    The core pair is cross-linked and every distribution switch is dual
    homed to both core switches, mirroring the USI core ("the central
    switches with redundant connections").  Edge switches hang off one
    distribution switch — or two when ``dual_homed`` — and clients hang
    off edge switches.  A server block (one server) hangs off the core.
    """
    builder = _builder(name)
    builder.add("core1", "CoreSwitch")
    builder.add("core2", "CoreSwitch")
    builder.connect("core1", "core2")
    builder.add("server_dist", "DistSwitch")
    builder.connect("server_dist", "core1")
    builder.connect("server_dist", "core2")
    builder.add("server", "GenServer")
    builder.connect("server", "server_dist")

    client_counter = 0
    for d in range(dist_switches):
        dist = f"dist{d}"
        builder.add(dist, "DistSwitch")
        builder.connect(dist, "core1")
        builder.connect(dist, "core2")
    for d in range(dist_switches):
        dist = f"dist{d}"
        for e in range(edges_per_dist):
            edge = f"edge{d}_{e}"
            builder.add(edge, "EdgeSwitch")
            builder.connect(edge, dist)
            if dual_homed and dist_switches > 1:
                other = f"dist{(d + 1) % dist_switches}"
                builder.connect(edge, other)
            for c in range(clients_per_edge):
                client_counter += 1
                client = (
                    "client"
                    if (d, e, c) == (0, 0, 0)
                    else f"client{client_counter}"
                )
                builder.add(client, "GenClient")
                builder.connect(client, edge)
    return builder


def balanced_tree(
    branching: int = 2, depth: int = 3, *, name: str = "tree"
) -> TopologyBuilder:
    """A balanced tree of switches; requester at a leaf, provider at root."""
    if branching < 1 or depth < 1:
        raise TopologyError("balanced_tree requires branching >= 1 and depth >= 1")
    builder = _builder(name)
    builder.add("server", "GenServer")
    builder.add("root", "CoreSwitch")
    builder.connect("server", "root")
    frontier = ["root"]
    node_id = 0
    for level in range(depth):
        next_frontier: List[str] = []
        for parent in frontier:
            for _ in range(branching):
                node_id += 1
                child = f"sw{node_id}"
                builder.add(child, "DistSwitch")
                builder.connect(parent, child)
                next_frontier.append(child)
        frontier = next_frontier
    builder.add("client", "GenClient")
    builder.connect("client", frontier[0])
    return builder


def ring(n: int, *, name: str = "ring") -> TopologyBuilder:
    """A ring of *n* switches with client/server on opposite sides.

    Every requester/provider pair has exactly two paths (clockwise and
    counter-clockwise) — the minimal redundant structure.
    """
    if n < 3:
        raise TopologyError("ring requires n >= 3 switches")
    builder = _builder(name)
    switches = [f"sw{i}" for i in range(n)]
    for switch in switches:
        builder.add(switch, "DistSwitch")
    for i in range(n):
        builder.connect(switches[i], switches[(i + 1) % n])
    builder.add("client", "GenClient")
    builder.connect("client", switches[0])
    builder.add("server", "GenServer")
    builder.connect("server", switches[n // 2])
    return builder


def ladder(rungs: int, *, name: str = "ladder") -> TopologyBuilder:
    """A ladder graph: two parallel switch rails with cross rungs.

    The number of simple client→server paths grows exponentially with the
    number of rungs, while nodes/edges grow only linearly — the
    pathological middle ground between tree and complete graph.
    """
    if rungs < 1:
        raise TopologyError("ladder requires at least 1 rung")
    builder = _builder(name)
    top = [f"top{i}" for i in range(rungs)]
    bottom = [f"bot{i}" for i in range(rungs)]
    for node in [*top, *bottom]:
        builder.add(node, "DistSwitch")
    builder.connect_chain(top)
    builder.connect_chain(bottom)
    for t, b in zip(top, bottom):
        builder.connect(t, b)
    builder.add("client", "GenClient")
    builder.connect("client", top[0])
    builder.add("server", "GenServer")
    builder.connect("server", bottom[-1])
    return builder


def complete(n: int, *, name: str = "complete") -> TopologyBuilder:
    """A complete graph over *n* switches — the O(n!) worst case of §V-D."""
    if n < 2:
        raise TopologyError("complete requires n >= 2 switches")
    builder = _builder(name)
    switches = [f"sw{i}" for i in range(n)]
    for switch in switches:
        builder.add(switch, "DistSwitch")
    for i in range(n):
        for j in range(i + 1, n):
            builder.connect(switches[i], switches[j])
    builder.add("client", "GenClient")
    builder.connect("client", switches[0])
    builder.add("server", "GenServer")
    builder.connect("server", switches[-1])
    return builder


def erdos_renyi(
    n: int,
    p: float,
    *,
    seed: int = 0,
    connect_components: bool = True,
    name: str = "er",
) -> TopologyBuilder:
    """An Erdős–Rényi G(n, p) switch fabric with client/server attached.

    With ``connect_components`` (default) a spanning chain over component
    representatives is added so path discovery always has at least one
    path — isolated infrastructures are not interesting for the sweep.
    Deterministic for a given *seed*.
    """
    if n < 2:
        raise TopologyError("erdos_renyi requires n >= 2 switches")
    if not 0.0 <= p <= 1.0:
        raise TopologyError(f"edge probability must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    builder = _builder(name)
    switches = [f"sw{i}" for i in range(n)]
    for switch in switches:
        builder.add(switch, "DistSwitch")
    draws = rng.random((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if draws[i, j] < p:
                builder.connect(switches[i], switches[j])
    if connect_components:
        components = builder.object_model.connected_components()
        representatives = sorted(min(component) for component in components)
        for left, right in zip(representatives, representatives[1:]):
            if builder.object_model.find_link(left, right) is None:
                builder.connect(left, right)
    builder.add("client", "GenClient")
    builder.connect("client", switches[0])
    builder.add("server", "GenServer")
    builder.connect("server", switches[-1])
    return builder
