"""Standard profiles and component-class factories for ICT infrastructures.

Reproduces the two UML profiles of the case study:

* the **availability profile** (Figure 6): abstract stereotype
  ``Component`` with attributes ``MTBF``, ``MTTR`` and
  ``redundantComponents``, specialized by ``Device`` (extends Class) and
  ``Connector`` (extends Association);
* the **network profile** (Figure 7): abstract ``Network Device`` (with
  ``manufacturer`` and ``model``) specialized by ``Router``, ``Switch``,
  ``Printer`` and abstract ``Computer`` (with ``processor``), the latter
  specialized into ``Client`` and ``Server``; plus ``Communication``
  (extends Association, with ``channel`` and ``throughput``).

:func:`make_device_class` and :func:`make_connector_association` build
stereotyped classes/associations in one call, the way Section VI-A
describes ("the corresponding class is created, with Component and Switch
stereotypes applied from the availability and network profiles").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ModelError
from repro.uml.classes import Association, AssociationEnd, Class, ClassModel
from repro.uml.metamodel import Property
from repro.uml.profiles import Profile, Stereotype

__all__ = [
    "AVAILABILITY_ATTRIBUTES",
    "availability_profile",
    "network_profile",
    "DeviceSpec",
    "make_device_class",
    "make_connector_association",
    "StandardProfiles",
]

#: The dependability attributes imposed by the availability profile.
AVAILABILITY_ATTRIBUTES = ("MTBF", "MTTR", "redundantComponents")

#: Network-profile stereotype names usable for device classes.
DEVICE_KINDS = ("Router", "Switch", "Printer", "Client", "Server")


def availability_profile() -> Profile:
    """Build the availability profile of Figure 6.

    ``Component`` is abstract and holds the dependability attributes;
    ``Device`` and ``Connector`` specialize it "in order to be applied —
    respectively and exclusively — to Class and Association elements".
    """
    component = Stereotype(
        "Component",
        attributes=[
            Property("MTBF", "Real", comment="mean time between failures [h]"),
            Property("MTTR", "Real", comment="mean time to repair [h]"),
            Property(
                "redundantComponents",
                "Integer",
                0,
                comment="number of cold-standby replicas of the component",
            ),
        ],
        is_abstract=True,
        comment="intrinsic dependability attributes of an ICT component",
    )
    device = Stereotype("Device", extends=("Class",), generalizations=[component])
    connector = Stereotype(
        "Connector", extends=("Association",), generalizations=[component]
    )
    return Profile("availability", [component, device, connector])


def network_profile() -> Profile:
    """Build the network profile of Figure 7."""
    network_device = Stereotype(
        "NetworkDevice",
        extends=("Class",),
        attributes=[
            Property("manufacturer", "String"),
            Property("model", "String"),
        ],
        is_abstract=True,
    )
    computer = Stereotype(
        "Computer",
        generalizations=[network_device],
        attributes=[Property("processor", "String")],
        is_abstract=True,
    )
    router = Stereotype("Router", generalizations=[network_device])
    switch = Stereotype("Switch", generalizations=[network_device])
    printer = Stereotype("Printer", generalizations=[network_device])
    client = Stereotype("Client", generalizations=[computer])
    server = Stereotype("Server", generalizations=[computer])
    communication = Stereotype(
        "Communication",
        extends=("Association",),
        attributes=[
            Property("channel", "String"),
            Property("throughput", "Real", comment="nominal throughput [Mbit/s]"),
        ],
    )
    return Profile(
        "network",
        [network_device, computer, router, switch, printer, client, server, communication],
    )


@dataclass(frozen=True)
class DeviceSpec:
    """Declarative description of one device class (a row of Figure 8).

    ``kind`` selects the network-profile stereotype (``"Switch"``,
    ``"Client"``, ...); the dependability numbers feed the availability
    profile's ``Device`` stereotype.
    """

    name: str
    kind: str
    mtbf: float
    mttr: float
    redundant_components: int = 0
    manufacturer: str = ""
    model: str = ""
    processor: str = ""

    def __post_init__(self):
        if self.kind not in DEVICE_KINDS:
            raise ModelError(
                f"device spec {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {DEVICE_KINDS}"
            )
        if self.mtbf <= 0:
            raise ModelError(f"device spec {self.name!r}: MTBF must be > 0")
        if self.mttr < 0:
            raise ModelError(f"device spec {self.name!r}: MTTR must be >= 0")
        if self.redundant_components < 0:
            raise ModelError(
                f"device spec {self.name!r}: redundantComponents must be >= 0"
            )


class StandardProfiles:
    """Bundle of the two standard profiles with cached stereotype lookups."""

    def __init__(self):
        self.availability = availability_profile()
        self.network = network_profile()

    @property
    def device(self) -> Stereotype:
        return self.availability.stereotype("Device")

    @property
    def connector(self) -> Stereotype:
        return self.availability.stereotype("Connector")

    @property
    def communication(self) -> Stereotype:
        return self.network.stereotype("Communication")

    def kind(self, name: str) -> Stereotype:
        return self.network.stereotype(name)

    def as_list(self):
        return [self.availability, self.network]


def make_device_class(
    spec: DeviceSpec, profiles: Optional[StandardProfiles] = None
) -> Class:
    """Create a class for *spec* with both profiles applied (Figure 8 style)."""
    profiles = profiles if profiles is not None else StandardProfiles()
    cls = Class(spec.name)
    cls.apply_stereotype(
        profiles.device,
        MTBF=spec.mtbf,
        MTTR=spec.mttr,
        redundantComponents=spec.redundant_components,
    )
    kind_values: Dict[str, str] = {}
    if spec.manufacturer:
        kind_values["manufacturer"] = spec.manufacturer
    if spec.model:
        kind_values["model"] = spec.model
    if spec.processor:
        if spec.kind not in ("Client", "Server"):
            raise ModelError(
                f"device spec {spec.name!r}: only computers have a processor"
            )
        kind_values["processor"] = spec.processor
    cls.apply_stereotype(profiles.kind(spec.kind), **kind_values)
    return cls


def make_connector_association(
    name: str,
    end1: Class,
    end2: Class,
    *,
    mtbf: float,
    mttr: float,
    redundant_components: int = 0,
    channel: str = "",
    throughput: float = 0.0,
    profiles: Optional[StandardProfiles] = None,
) -> Association:
    """Create an association stereotyped «Component»+«Communication».

    This mirrors Figure 8's ``<<communication,connector>>`` association:
    links instantiate it and inherit its MTBF/MTTR, so communication
    failures participate in the availability analysis alongside device
    failures.
    """
    profiles = profiles if profiles is not None else StandardProfiles()
    association = Association(
        name,
        AssociationEnd(end1, lower=0, upper=None),
        AssociationEnd(end2, lower=0, upper=None),
    )
    association.apply_stereotype(
        profiles.connector,
        MTBF=mtbf,
        MTTR=mttr,
        redundantComponents=redundant_components,
    )
    comm_values: Dict[str, object] = {}
    if channel:
        comm_values["channel"] = channel
    if throughput:
        comm_values["throughput"] = throughput
    association.apply_stereotype(profiles.communication, **comm_values)
    return association
