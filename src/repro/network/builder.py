"""Fluent construction of typed, profile-annotated infrastructures.

Building a network by hand takes three UML artifacts (profiles, class
diagram, object diagram — methodology Steps 1 and 2).
:class:`TopologyBuilder` wraps those steps behind a declarative API::

    builder = TopologyBuilder("campus")
    builder.device_type(DeviceSpec("C6500", "Switch", mtbf=183498, mttr=0.5))
    builder.device_type(DeviceSpec("Comp", "Client", mtbf=3000, mttr=24.0))
    builder.add("c1", "C6500")
    builder.add("t1", "Comp")
    builder.connect("c1", "t1")
    infrastructure = builder.build()      # validated ObjectModel
    topology = builder.topology()         # graph view

A single connector association (default name ``Cable``) between an abstract
root device class is created automatically, so any two devices can be
linked; additional connector types (e.g. a fibre trunk with different
MTBF) can be declared with :meth:`connector_type`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConstraintViolationError, ModelError, TopologyError
from repro.network.components import (
    DeviceSpec,
    StandardProfiles,
    make_connector_association,
    make_device_class,
)
from repro.network.topology import Topology
from repro.uml.classes import Class, ClassModel
from repro.uml.constraints import standard_suite
from repro.uml.objects import ObjectModel

__all__ = ["TopologyBuilder", "DEFAULT_CABLE_MTBF", "DEFAULT_CABLE_MTTR"]

#: Default dependability numbers for the generic cable connector.  The
#: paper's Figure 8 shows the «communication,connector» association but its
#: attribute values are not legible in the available copy; these defaults
#: model a very reliable passive cable and are recorded as a reproduction
#: assumption in EXPERIMENTS.md.
DEFAULT_CABLE_MTBF = 1_000_000.0
DEFAULT_CABLE_MTTR = 0.5

#: Name of the abstract root class every device class specializes, so that
#: one connector association can link any device pair.
ROOT_CLASS_NAME = "ICTDevice"


class TopologyBuilder:
    """Incrementally builds a validated infrastructure object model."""

    def __init__(
        self,
        name: str = "infrastructure",
        *,
        profiles: Optional[StandardProfiles] = None,
        cable_mtbf: float = DEFAULT_CABLE_MTBF,
        cable_mttr: float = DEFAULT_CABLE_MTTR,
    ):
        self.profiles = profiles if profiles is not None else StandardProfiles()
        self.class_model = ClassModel(f"{name}-classes")
        self._root = Class(ROOT_CLASS_NAME, is_abstract=True)
        self.class_model.add_class(self._root)
        self._default_cable = make_connector_association(
            "Cable",
            self._root,
            self._root,
            mtbf=cable_mtbf,
            mttr=cable_mttr,
            channel="copper",
            throughput=1000.0,
            profiles=self.profiles,
        )
        self.class_model.add_association(self._default_cable)
        self.object_model = ObjectModel(name, self.class_model)
        self._specs: Dict[str, DeviceSpec] = {}

    # -- type declarations ---------------------------------------------------

    def device_type(self, spec: DeviceSpec) -> Class:
        """Declare a device class from *spec* (idempotent per name)."""
        if self.class_model.has_class(spec.name):
            if self._specs.get(spec.name) != spec:
                raise ModelError(
                    f"device type {spec.name!r} already declared with a "
                    f"different spec"
                )
            return self.class_model.get_class(spec.name)
        cls = make_device_class(spec, self.profiles)
        cls.superclasses.append(self._root)
        self.class_model.add_class(cls)
        self._specs[spec.name] = spec
        return cls

    def connector_type(
        self,
        name: str,
        *,
        mtbf: float,
        mttr: float,
        redundant_components: int = 0,
        channel: str = "",
        throughput: float = 0.0,
    ):
        """Declare an additional connector association usable by name."""
        association = make_connector_association(
            name,
            self._root,
            self._root,
            mtbf=mtbf,
            mttr=mttr,
            redundant_components=redundant_components,
            channel=channel,
            throughput=throughput,
            profiles=self.profiles,
        )
        return self.class_model.add_association(association)

    # -- population -------------------------------------------------------------

    def add(self, name: str, type_name: str):
        """Add a device instance of an already-declared type."""
        if not self.class_model.has_class(type_name):
            raise TopologyError(
                f"device type {type_name!r} not declared; call device_type first"
            )
        return self.object_model.add_instance(name, type_name)

    def add_many(self, names: Iterable[str], type_name: str) -> List:
        return [self.add(name, type_name) for name in names]

    def connect(self, a: str, b: str, connector: str = "Cable"):
        """Link two devices with the named connector type."""
        return self.object_model.add_link(a, b, connector)

    def connect_chain(self, names: Sequence[str], connector: str = "Cable") -> None:
        """Link consecutive names: a—b—c—…"""
        for left, right in zip(names, names[1:]):
            self.connect(left, right, connector)

    def connect_star(
        self, hub: str, leaves: Iterable[str], connector: str = "Cable"
    ) -> None:
        """Link *hub* to every leaf."""
        for leaf in leaves:
            self.connect(hub, leaf, connector)

    # -- output ------------------------------------------------------------------

    def build(self, *, validate: bool = True) -> ObjectModel:
        """Return the object model, optionally enforcing the standard
        constraint suite with availability-profile completeness."""
        if validate:
            suite = standard_suite(
                class_stereotype="Component",
                association_stereotype="Component",
                required_attributes=("MTBF", "MTTR"),
            )
            suite.enforce(self.object_model)
        return self.object_model

    def topology(self) -> Topology:
        return Topology(self.object_model)
