"""Infrastructure inventory and availability-budget reporting.

The methodology's inputs are infrastructure models maintained by
operators; this module provides the summary views that make a model
reviewable before analysis: per-device-kind inventories, availability
budgets (which component class contributes how much expected downtime),
and structural health indicators (articulation points — nodes whose loss
splits the network, the topology-level single points of failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.dependability.availability import (
    downtime_minutes_per_year,
    instance_availability,
)
from repro.network.topology import Topology

__all__ = ["KindSummary", "inventory", "availability_budget", "articulation_points"]


@dataclass(frozen=True)
class KindSummary:
    """Aggregate of one device class in a deployed model."""

    class_name: str
    kind: str
    count: int
    mtbf: float
    mttr: float
    availability: float
    expected_downtime_minutes_per_year: float


_KINDS = ("Router", "Switch", "Printer", "Client", "Server")


def _kind_of(classifier) -> str:
    for kind in _KINDS:
        if classifier.has_stereotype(kind):
            return kind
    return "Other"


def inventory(topology: Topology) -> List[KindSummary]:
    """Per-class inventory of a deployed infrastructure, sorted by the
    total expected annual downtime the class contributes (count × per-unit
    downtime) — the maintenance-priority view."""
    groups: Dict[str, List] = {}
    for name in topology.nodes():
        instance = topology.instance(name)
        groups.setdefault(instance.classifier.name, []).append(instance)
    summaries: List[KindSummary] = []
    for class_name, instances in groups.items():
        resolved = instance_availability(instances[0])
        per_unit_downtime = downtime_minutes_per_year(resolved.availability)
        summaries.append(
            KindSummary(
                class_name=class_name,
                kind=_kind_of(instances[0].classifier),
                count=len(instances),
                mtbf=resolved.mtbf,
                mttr=resolved.mttr,
                availability=resolved.availability,
                expected_downtime_minutes_per_year=per_unit_downtime,
            )
        )
    summaries.sort(
        key=lambda s: -s.count * s.expected_downtime_minutes_per_year
    )
    return summaries


def availability_budget(topology: Topology) -> Dict[str, float]:
    """Fraction of total expected component downtime per device class.

    Highlights where the unavailability actually lives — in the case study
    ~99% of expected component downtime sits in the clients (Comp), which
    is why the paper's user-perceived view differs so strongly from a
    core-centric one.
    """
    downtimes: Dict[str, float] = {}
    for summary in inventory(topology):
        downtimes[summary.class_name] = (
            summary.count * summary.expected_downtime_minutes_per_year
        )
    total = sum(downtimes.values())
    if total <= 0.0:
        return {name: 0.0 for name in downtimes}
    return {name: value / total for name, value in downtimes.items()}


def articulation_points(topology: Topology) -> Set[str]:
    """Nodes whose removal disconnects the network.

    These are topology-level single points of failure for *some* pair;
    whether they matter for a given user is exactly what the UPSIM
    analysis answers per pair.
    """
    return set(nx.articulation_points(topology.to_networkx()))
