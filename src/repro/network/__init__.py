"""ICT infrastructure modeling: components, profiles, topologies, generators.

Implements the paper's infrastructure side (Section V-A1): device and
connector types as stereotyped UML classes/associations, deployed networks
as object models, a graph view for the algorithms, a fluent builder, and
synthetic generators for the scalability experiments.
"""

from repro.network.builder import (
    DEFAULT_CABLE_MTBF,
    DEFAULT_CABLE_MTTR,
    TopologyBuilder,
)
from repro.network.components import (
    AVAILABILITY_ATTRIBUTES,
    DeviceSpec,
    StandardProfiles,
    availability_profile,
    make_connector_association,
    make_device_class,
    network_profile,
)
from repro.network.generators import (
    balanced_tree,
    campus,
    complete,
    endpoints,
    erdos_renyi,
    generic_specs,
    ladder,
    ring,
)
from repro.network.inventory import (
    KindSummary,
    articulation_points,
    availability_budget,
    inventory,
)
from repro.network.topology import Topology

__all__ = [
    "KindSummary",
    "inventory",
    "availability_budget",
    "articulation_points",
    "AVAILABILITY_ATTRIBUTES",
    "DeviceSpec",
    "StandardProfiles",
    "availability_profile",
    "network_profile",
    "make_device_class",
    "make_connector_association",
    "Topology",
    "TopologyBuilder",
    "DEFAULT_CABLE_MTBF",
    "DEFAULT_CABLE_MTTR",
    "generic_specs",
    "campus",
    "balanced_tree",
    "ring",
    "ladder",
    "complete",
    "erdos_renyi",
    "endpoints",
]
