"""Graph view of a deployed ICT infrastructure.

Path discovery "sees the infrastructure as a graph" (Section VI-G).
:class:`Topology` wraps a :class:`repro.uml.objects.ObjectModel` with the
graph-theoretic interface the algorithms need — neighbor iteration,
networkx export, structural statistics — while keeping the UML model as
the single source of truth for component properties.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.engine import CompiledTopology

from repro.errors import TopologyError
from repro.uml.objects import InstanceSpecification, Link, ObjectModel

__all__ = ["Topology"]


class Topology:
    """A read-mostly graph view over an infrastructure object model.

    Node identity is the instance name; edge identity is the (unordered)
    pair of instance names.  The underlying object model may keep evolving
    (dynamic environments, Section V-A3); the view reads through, so no
    refresh step is needed.
    """

    def __init__(self, object_model: ObjectModel):
        self.model = object_model

    # -- size and membership ----------------------------------------------

    @property
    def name(self) -> str:
        return self.model.name

    def node_count(self) -> int:
        return len(self.model)

    def link_count(self) -> int:
        return len(self.model.links)

    def nodes(self) -> List[str]:
        return self.model.instance_names()

    def has_node(self, name: str) -> bool:
        return self.model.has_instance(name)

    def __contains__(self, name: str) -> bool:
        return self.has_node(name)

    def __len__(self) -> int:
        return self.node_count()

    # -- structure -----------------------------------------------------------

    def neighbors(self, name: str) -> List[str]:
        if not self.model.has_instance(name):
            raise TopologyError(f"unknown node {name!r}")
        return [inst.name for inst in self.model.neighbors(name)]

    def degree(self, name: str) -> int:
        if not self.model.has_instance(name):
            raise TopologyError(f"unknown node {name!r}")
        return self.model.degree(name)

    def edges(self) -> List[Tuple[str, str]]:
        return [(link.end1.name, link.end2.name) for link in self.model.links]

    def link_between(self, a: str, b: str) -> Link:
        link = self.model.find_link(a, b)
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return link

    def instance(self, name: str) -> InstanceSpecification:
        if not self.model.has_instance(name):
            raise TopologyError(f"unknown node {name!r}")
        return self.model.get_instance(name)

    def is_connected(self) -> bool:
        return self.model.is_connected()

    # -- properties -------------------------------------------------------------

    def node_property(self, name: str, attribute: str) -> Any:
        """Property value of a node, inherited from its class (Section V-E)."""
        return self.instance(name).property_value(attribute)

    def link_property(self, a: str, b: str, attribute: str) -> Any:
        link = self.link_between(a, b)
        values = link.property_dict()
        if attribute not in values:
            raise TopologyError(
                f"link {a!r}--{b!r} has no property {attribute!r}"
            )
        return values[attribute]

    def nodes_of_kind(self, stereotype_name: str) -> List[str]:
        """Nodes whose class carries the given network-profile stereotype
        (e.g. ``"Server"``, ``"Printer"``, ``"Client"``)."""
        return [
            inst.name
            for inst in self.model.instances
            if inst.classifier.has_stereotype(stereotype_name)
        ]

    # -- identity and compilation -------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the graph structure (nodes + links, in model
        order).

        Any mutation of the underlying object model — adding/removing an
        instance or a link, or reordering them — changes the fingerprint.
        The path engine keys every compiled artifact and memoized result
        on it, so stale caches can never be served for a mutated model.
        """
        digest = hashlib.blake2b(digest_size=16)
        for name in self.model.instance_names():
            digest.update(b"\x00n")
            digest.update(name.encode("utf-8"))
        for a, b in self.edges():
            digest.update(b"\x00l")
            digest.update(a.encode("utf-8"))
            digest.update(b"\x01")
            digest.update(b.encode("utf-8"))
        return digest.hexdigest()

    def compiled(self) -> "CompiledTopology":
        """The compiled integer-ID CSR view used by the path engine.

        Reuses the cached compilation while :meth:`fingerprint` is
        unchanged; recompiles transparently after a model mutation.
        """
        from repro.core.engine import compile_topology

        return compile_topology(self)

    def with_faults(self, plan, *, tick: Optional[int] = None) -> "Topology":
        """Overlay a :class:`~repro.resilience.faults.FaultPlan` on this view.

        Returns a copy-on-write
        :class:`~repro.resilience.overlay.FaultOverlayTopology`: the
        shared object model is untouched, this view keeps answering
        nominally, and the overlay answers as if the plan's faults had
        happened.  *plan* also accepts spec strings (``"crash:c1"``) or
        an iterable of them; flapping faults need a *tick* to resolve
        their seeded schedule.
        """
        from repro.resilience.faults import FaultPlan

        if not isinstance(plan, FaultPlan):
            plan = FaultPlan.parse(plan)
        return plan.apply(self, tick=tick)

    # -- conversions --------------------------------------------------------------

    def to_networkx(self, *, with_properties: bool = False) -> nx.Graph:
        """Export an undirected networkx graph.

        With ``with_properties=True``, node/edge attribute dicts carry the
        full inherited property dictionaries — convenient for third-party
        analysis, at the cost of materializing every property.
        """
        graph = nx.Graph(name=self.model.name)
        for instance in self.model.instances:
            if with_properties:
                graph.add_node(
                    instance.name,
                    classifier=instance.classifier.name,
                    **instance.property_dict(),
                )
            else:
                graph.add_node(instance.name, classifier=instance.classifier.name)
        for link in self.model.links:
            if with_properties:
                graph.add_edge(link.end1.name, link.end2.name, **link.property_dict())
            else:
                graph.add_edge(link.end1.name, link.end2.name)
        return graph

    # -- statistics ---------------------------------------------------------------

    def degree_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for name in self.nodes():
            d = self.degree(name)
            histogram[d] = histogram.get(d, 0) + 1
        return dict(sorted(histogram.items()))

    def cycle_rank(self) -> int:
        """Number of independent cycles (E - V + C).

        "Real networks usually contain few loops, while most clients are
        located in tree-like structures" (Section V-D); the cycle rank
        quantifies exactly how few, and drives the path-count analysis in
        the scalability benchmarks.
        """
        components = len(self.model.connected_components())
        return self.link_count() - self.node_count() + components

    def summary(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "nodes": self.node_count(),
            "links": self.link_count(),
            "connected": self.is_connected(),
            "cycle_rank": self.cycle_rank(),
            "degree_histogram": self.degree_histogram(),
        }
