"""Service catalog: the registry of atomic and composite services.

A network "provides a number of atomic services (e.g.: authenticate,
print document, request backup) where each service has at least one
provider.  Atomic services can compose composite services (e.g. printing,
backup)" (Section VI).  The catalog keeps both levels consistent: a
composite can only be registered when all of its atomic services are
registered, and atomic services are shared across composites — the
re-usability that defines atomic granularity (Section II).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import ServiceError
from repro.services.atomic import AtomicService
from repro.services.composite import CompositeService

__all__ = ["ServiceCatalog"]


class ServiceCatalog:
    """Registry of atomic and composite services."""

    def __init__(self):
        self._atomics: Dict[str, AtomicService] = {}
        self._composites: Dict[str, CompositeService] = {}

    # -- atomic services ----------------------------------------------------

    def register_atomic(self, service: AtomicService) -> AtomicService:
        existing = self._atomics.get(service.name)
        if existing is not None:
            if existing != service:
                raise ServiceError(
                    f"atomic service {service.name!r} already registered "
                    f"with a different description"
                )
            return existing
        self._atomics[service.name] = service
        return service

    def atomic(self, name: str) -> AtomicService:
        try:
            return self._atomics[name]
        except KeyError:
            raise ServiceError(f"no atomic service {name!r} in catalog") from None

    def has_atomic(self, name: str) -> bool:
        return name in self._atomics

    @property
    def atomic_services(self) -> List[AtomicService]:
        return list(self._atomics.values())

    # -- composite services -----------------------------------------------------

    def register_composite(self, service: CompositeService) -> CompositeService:
        if service.name in self._composites:
            raise ServiceError(
                f"composite service {service.name!r} already registered"
            )
        for atomic in service.atomic_services:
            self.register_atomic(atomic)
        self._composites[service.name] = service
        return service

    def composite(self, name: str) -> CompositeService:
        try:
            return self._composites[name]
        except KeyError:
            raise ServiceError(f"no composite service {name!r} in catalog") from None

    def has_composite(self, name: str) -> bool:
        return name in self._composites

    @property
    def composite_services(self) -> List[CompositeService]:
        return list(self._composites.values())

    # -- cross queries --------------------------------------------------------------

    def composites_using(self, atomic_name: str) -> List[CompositeService]:
        """All composites that execute the given atomic service — "an atomic
        service can be part of any number of composite services"."""
        self.atomic(atomic_name)  # raise if unknown
        return [
            composite
            for composite in self._composites.values()
            if any(a.name == atomic_name for a in composite.atomic_services)
        ]

    def __len__(self) -> int:
        return len(self._atomics) + len(self._composites)

    def __iter__(self) -> Iterator[CompositeService]:
        return iter(self._composites.values())
