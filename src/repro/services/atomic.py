"""Atomic services: indivisible units of functionality.

Definition 1 (after Milanovic et al.): a service "is an abstraction of the
infrastructure, application or business level functionality" consisting of
a contract, interface and implementation.  Atomic services are the
indivisible entities from which composite services are built (Section II);
"ideally, atomic service functionality should not be redundant".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ServiceError
from repro.uml.metamodel import is_valid_identifier

__all__ = ["AtomicService"]


@dataclass(frozen=True)
class AtomicService:
    """An atomic service, identified by name.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"request_printing"``.  Used as the key in
        service mapping files (Figure 3: ``<atomicservice id="…">``).
    description:
        Human-readable contract, e.g. "Client login to print server and
        send documents to be printed."
    """

    name: str
    description: str = ""

    def __post_init__(self):
        if not is_valid_identifier(self.name):
            raise ServiceError(f"invalid atomic service name {self.name!r}")

    def __str__(self) -> str:
        return self.name
