"""Composite services: activity-diagram compositions of atomic services.

"A composite service is composed of and only of two or more atomic
services, while an atomic service can be part of any number of composite
services" (Section II).  :class:`CompositeService` couples the abstract
atomic-service set with the UML activity diagram describing the execution
flow (Figure 2 / Figure 10); the description "remains generic and
abstract … the same service description can be used to describe a service
for arbitrary pairs in any network that provides the atomic services"
(Section VI-C).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ServiceError
from repro.services.atomic import AtomicService
from repro.uml.activity import Activity, SPNode

__all__ = ["CompositeService"]


class CompositeService:
    """A composite service: named activity over atomic services.

    Construction validates the paper's structural rules:

    * the activity is well-formed (single initial node, series-parallel,
      every action reachable);
    * the composition references **two or more** atomic services;
    * every action in the activity references a declared atomic service.
    """

    def __init__(
        self,
        activity: Activity,
        atomic_services: Iterable[AtomicService],
    ):
        problems = activity.validate()
        if problems:
            raise ServiceError(
                f"composite service {activity.name!r}: malformed activity: "
                f"{problems}"
            )
        self.activity = activity
        self._atomics: Dict[str, AtomicService] = {}
        for service in atomic_services:
            if service.name in self._atomics:
                raise ServiceError(
                    f"composite service {activity.name!r}: atomic service "
                    f"{service.name!r} declared twice"
                )
            self._atomics[service.name] = service
        referenced = activity.atomic_service_names()
        if len(set(referenced)) < 2:
            raise ServiceError(
                f"composite service {activity.name!r} must compose two or "
                f"more distinct atomic services, found {sorted(set(referenced))}"
            )
        missing = [name for name in referenced if name not in self._atomics]
        if missing:
            raise ServiceError(
                f"composite service {activity.name!r}: actions reference "
                f"undeclared atomic services {missing}"
            )
        unused = sorted(set(self._atomics) - set(referenced))
        if unused:
            raise ServiceError(
                f"composite service {activity.name!r}: declared atomic "
                f"services never executed: {unused}"
            )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def sequential(
        cls,
        name: str,
        atomic_services: Sequence[AtomicService],
    ) -> "CompositeService":
        """A purely sequential composite (the printing-service shape)."""
        activity = Activity.sequence(name, [s.name for s in atomic_services])
        return cls(activity, atomic_services)

    @classmethod
    def from_structure(
        cls,
        name: str,
        structure: SPNode,
        atomic_services: Sequence[AtomicService],
    ) -> "CompositeService":
        """A composite realizing an arbitrary series-parallel structure."""
        activity = Activity.from_structure(name, structure)
        return cls(activity, atomic_services)

    # -- access ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.activity.name

    def atomic_service(self, name: str) -> AtomicService:
        try:
            return self._atomics[name]
        except KeyError:
            raise ServiceError(
                f"composite service {self.name!r} has no atomic service {name!r}"
            ) from None

    @property
    def atomic_services(self) -> List[AtomicService]:
        """Declared atomic services in execution (topological) order."""
        order = self.activity.atomic_service_names()
        seen: set[str] = set()
        result: List[AtomicService] = []
        for name in order:
            if name not in seen:
                seen.add(name)
                result.append(self._atomics[name])
        return result

    def execution_order(self) -> List[str]:
        """Atomic service names in one valid execution order (repeats kept)."""
        return self.activity.atomic_service_names()

    def structure(self) -> SPNode:
        """The series-parallel structure tree of the activity."""
        return self.activity.to_structure()

    def __len__(self) -> int:
        return len(self._atomics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompositeService {self.name!r} over {sorted(self._atomics)}>"
