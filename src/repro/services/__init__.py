"""Service model: atomic services, composite services, catalog.

Implements the paper's service concept (Section II, after Milanovic et
al.): composite services are activity-diagram compositions of indivisible
atomic services, described independently of any concrete infrastructure.
"""

from repro.services.atomic import AtomicService
from repro.services.catalog import ServiceCatalog
from repro.services.composite import CompositeService

__all__ = ["AtomicService", "CompositeService", "ServiceCatalog"]
