"""UML profiles and stereotypes.

Profiles are UML's standard lightweight extension mechanism and the paper's
vehicle for attaching non-functional properties to ICT components
(Section II, V-A1).  A :class:`Stereotype` extends one or more UML
*metaclasses* (``"Class"`` or ``"Association"`` in the paper's subset) and
contributes *stereotype attributes*; applying the stereotype to a model
element makes the element inherit those attributes.

Two concrete profiles from the case study are provided as factories in
:mod:`repro.network.components`:

* the availability profile of Figure 6 (``Component`` with ``MTBF``,
  ``MTTR``, ``redundantComponents``; specialized by ``Device`` and
  ``Connector``),
* the network profile of Figure 7 (``Network Device`` and its
  specializations ``Router``, ``Switch``, ``Printer``, ``Computer`` →
  ``Client``/``Server``, plus ``Communication`` for associations).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ModelError, StereotypeError
from repro.uml.metamodel import NamedElement, Property, coerce_value

__all__ = [
    "EXTENDABLE_METACLASSES",
    "Stereotype",
    "Profile",
    "StereotypeApplication",
    "StereotypedElement",
]

#: UML metaclasses that stereotypes may extend in this modeling subset.
#: The paper's profiles extend exactly ``Class`` and ``Association``
#: (Figures 6 and 7).
EXTENDABLE_METACLASSES = ("Class", "Association")


class Stereotype(NamedElement):
    """A stereotype: named extension of a UML metaclass.

    Parameters
    ----------
    name:
        Stereotype name, e.g. ``"Component"`` or ``"Switch"``.
    extends:
        The metaclasses this stereotype may be applied to.  May be empty
        for *abstract* stereotypes that only serve as generalizations
        (e.g. ``Component`` and ``Network Device`` in the paper extend
        nothing directly; their concrete children do).
    attributes:
        The stereotype attributes contributed to stereotyped elements.
    generalizations:
        Parent stereotypes whose attributes are inherited (UML
        generalization between stereotypes, as between ``Device`` and
        ``Component`` in Figure 6).
    is_abstract:
        Abstract stereotypes cannot be applied directly.
    """

    _id_prefix = "ster"

    def __init__(
        self,
        name: str,
        *,
        extends: Iterable[str] = (),
        attributes: Iterable[Property] = (),
        generalizations: Iterable["Stereotype"] = (),
        is_abstract: bool = False,
        xmi_id: Optional[str] = None,
        comment: str = "",
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment)
        self.extends: Tuple[str, ...] = tuple(extends)
        for metaclass in self.extends:
            if metaclass not in EXTENDABLE_METACLASSES:
                raise ModelError(
                    f"stereotype {name!r} extends unknown metaclass "
                    f"{metaclass!r}; expected one of {EXTENDABLE_METACLASSES}"
                )
        self.attributes: List[Property] = list(attributes)
        self.generalizations: List[Stereotype] = list(generalizations)
        self.is_abstract = bool(is_abstract)
        self._check_attribute_names()

    def _check_attribute_names(self) -> None:
        names = [prop.name for prop in self.attributes]
        if len(names) != len(set(names)):
            raise ModelError(
                f"stereotype {self.name!r} declares duplicate attribute names"
            )

    # -- inheritance ------------------------------------------------------

    def all_generalizations(self) -> Iterator["Stereotype"]:
        """Yield all (transitive) parent stereotypes, nearest first."""
        seen: set[str] = set()
        stack = list(self.generalizations)
        while stack:
            parent = stack.pop(0)
            if parent.xmi_id in seen:
                continue
            seen.add(parent.xmi_id)
            yield parent
            stack.extend(parent.generalizations)

    def all_attributes(self) -> List[Property]:
        """Own attributes plus attributes inherited from generalizations.

        Own attributes shadow inherited attributes of the same name.
        """
        result: Dict[str, Property] = {}
        for parent in reversed(list(self.all_generalizations())):
            for prop in parent.attributes:
                result[prop.name] = prop
        for prop in self.attributes:
            result[prop.name] = prop
        return list(result.values())

    def effective_extends(self) -> Tuple[str, ...]:
        """Metaclasses this stereotype can be applied to, considering parents.

        A stereotype with no own ``extends`` inherits applicability from its
        generalizations (e.g. ``Switch`` extends nothing directly in
        Figure 7 but inherits Class-applicability from ``Network Device``).
        """
        if self.extends:
            return self.extends
        collected: List[str] = []
        for parent in self.all_generalizations():
            for metaclass in parent.effective_extends():
                if metaclass not in collected:
                    collected.append(metaclass)
        return tuple(collected)

    def is_specialization_of(self, other: "Stereotype") -> bool:
        """Whether *other* is this stereotype or one of its ancestors."""
        if other.xmi_id == self.xmi_id:
            return True
        return any(parent.xmi_id == other.xmi_id for parent in self.all_generalizations())

    def attribute(self, name: str) -> Property:
        """Look up an (own or inherited) attribute by name."""
        for prop in self.all_attributes():
            if prop.name == name:
                return prop
        raise StereotypeError(
            f"stereotype {self.name!r} has no attribute {name!r}"
        )


class Profile(NamedElement):
    """A named collection of stereotypes (a UML profile)."""

    _id_prefix = "prof"

    def __init__(
        self,
        name: str,
        stereotypes: Iterable[Stereotype] = (),
        *,
        xmi_id: Optional[str] = None,
        comment: str = "",
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment)
        self._stereotypes: Dict[str, Stereotype] = {}
        for stereotype in stereotypes:
            self.add(stereotype)

    def add(self, stereotype: Stereotype) -> Stereotype:
        if stereotype.name in self._stereotypes:
            raise ModelError(
                f"profile {self.name!r} already defines stereotype "
                f"{stereotype.name!r}"
            )
        stereotype.owner = self
        self._stereotypes[stereotype.name] = stereotype
        return stereotype

    def stereotype(self, name: str) -> Stereotype:
        try:
            return self._stereotypes[name]
        except KeyError:
            raise StereotypeError(
                f"profile {self.name!r} has no stereotype {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._stereotypes

    def __iter__(self) -> Iterator[Stereotype]:
        return iter(self._stereotypes.values())

    def __len__(self) -> int:
        return len(self._stereotypes)


class StereotypeApplication:
    """The application of one stereotype to one model element.

    Holds the concrete values of the stereotype attributes for the target
    element.  Values not provided fall back to the attribute defaults.
    """

    def __init__(self, stereotype: Stereotype, values: Optional[Dict[str, Any]] = None):
        if stereotype.is_abstract:
            raise StereotypeError(
                f"abstract stereotype {stereotype.name!r} cannot be applied"
            )
        self.stereotype = stereotype
        self._values: Dict[str, Any] = {}
        declared = {prop.name: prop for prop in stereotype.all_attributes()}
        for key, value in (values or {}).items():
            if key not in declared:
                raise StereotypeError(
                    f"stereotype {stereotype.name!r} has no attribute {key!r}"
                )
            self._values[key] = coerce_value(declared[key].type_name, value)

    def value(self, name: str) -> Any:
        """Value of attribute *name*: explicit value or attribute default."""
        prop = self.stereotype.attribute(name)
        if name in self._values:
            return self._values[name]
        return prop.default

    def values(self) -> Dict[str, Any]:
        """All attribute values (explicit + defaults) as a dict."""
        return {
            prop.name: self.value(prop.name)
            for prop in self.stereotype.all_attributes()
        }

    def set_value(self, name: str, value: Any) -> None:
        prop = self.stereotype.attribute(name)
        self._values[name] = coerce_value(prop.type_name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StereotypeApplication «{self.stereotype.name}» {self._values}>"


class StereotypedElement(NamedElement):
    """Mixin base for model elements that accept stereotype applications.

    Provides the ``apply_stereotype`` / ``stereotype_value`` API used by
    :class:`repro.uml.classes.Class` and
    :class:`repro.uml.classes.Association`.  Subclasses must define
    :attr:`metaclass_name` (``"Class"`` or ``"Association"``) so that
    applicability can be checked.
    """

    metaclass_name: str = ""

    def __init__(self, name: str, **kwargs: Any):
        super().__init__(name, **kwargs)
        self.applied_stereotypes: List[StereotypeApplication] = []

    def apply_stereotype(
        self, stereotype: Stereotype, **values: Any
    ) -> StereotypeApplication:
        """Apply *stereotype* with the given attribute *values*.

        Raises :class:`StereotypeError` if the stereotype does not extend
        this element's metaclass or is already applied.
        """
        applicable = stereotype.effective_extends()
        if self.metaclass_name not in applicable:
            raise StereotypeError(
                f"stereotype «{stereotype.name}» extends {applicable or '()'} "
                f"and cannot be applied to {self.metaclass_name} {self.name!r}"
            )
        if any(
            app.stereotype.xmi_id == stereotype.xmi_id
            for app in self.applied_stereotypes
        ):
            raise StereotypeError(
                f"stereotype «{stereotype.name}» already applied to {self.name!r}"
            )
        application = StereotypeApplication(stereotype, values)
        self.applied_stereotypes.append(application)
        return application

    def has_stereotype(self, stereotype: Stereotype | str) -> bool:
        """Whether the element has *stereotype* applied (directly or via a
        specialization of it)."""
        if isinstance(stereotype, str):
            return any(
                app.stereotype.name == stereotype
                or any(
                    parent.name == stereotype
                    for parent in app.stereotype.all_generalizations()
                )
                for app in self.applied_stereotypes
            )
        return any(
            app.stereotype.is_specialization_of(stereotype)
            for app in self.applied_stereotypes
        )

    def stereotype_application(self, stereotype: Stereotype | str) -> StereotypeApplication:
        """The application object for *stereotype* (matching specializations)."""
        for app in self.applied_stereotypes:
            if isinstance(stereotype, str):
                if app.stereotype.name == stereotype or any(
                    parent.name == stereotype
                    for parent in app.stereotype.all_generalizations()
                ):
                    return app
            elif app.stereotype.is_specialization_of(stereotype):
                return app
        name = stereotype if isinstance(stereotype, str) else stereotype.name
        raise StereotypeError(f"{self.name!r} has no stereotype «{name}» applied")

    def stereotype_value(self, stereotype: Stereotype | str, attribute: str) -> Any:
        """Shorthand for ``stereotype_application(stereotype).value(attribute)``."""
        return self.stereotype_application(stereotype).value(attribute)

    def stereotype_names(self) -> List[str]:
        """Names of all directly applied stereotypes, in application order."""
        return [app.stereotype.name for app in self.applied_stereotypes]
