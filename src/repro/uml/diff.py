"""Differencing of object models.

Dynamic environments change the infrastructure model over time
(Section V-A3); knowing *what* changed between two revisions tells an
operator whether existing UPSIMs are stale ("topology changes require
updating only the network model and mapping").  :func:`diff_object_models`
computes the structural delta between two object models;
:meth:`ModelDiff.affects` answers the staleness question for one UPSIM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Set, Tuple

from repro.uml.objects import ObjectModel

__all__ = ["ModelDiff", "diff_object_models"]


def _link_key(link) -> Tuple[str, str]:
    a, b = link.end1.name, link.end2.name
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class ModelDiff:
    """Structural delta between two object models (old → new)."""

    added_instances: Tuple[str, ...]
    removed_instances: Tuple[str, ...]
    reclassified_instances: Tuple[Tuple[str, str, str], ...]  # name, old, new
    added_links: Tuple[Tuple[str, str], ...]
    removed_links: Tuple[Tuple[str, str], ...]

    def is_empty(self) -> bool:
        return not (
            self.added_instances
            or self.removed_instances
            or self.reclassified_instances
            or self.added_links
            or self.removed_links
        )

    def touched_components(self) -> Set[str]:
        """Every component name involved in any change."""
        touched: Set[str] = set(self.added_instances) | set(self.removed_instances)
        touched |= {name for name, _, _ in self.reclassified_instances}
        for a, b in (*self.added_links, *self.removed_links):
            touched.add(a)
            touched.add(b)
        return touched

    def affects(self, component_names: Iterable[str]) -> bool:
        """Whether the delta touches any of the given components.

        The operational staleness test: ``diff.affects(upsim.component_names)``
        is a *sound* over-approximation — removals and reclassifications of
        UPSIM components always invalidate it; additions elsewhere may
        create new paths, so callers wanting exactness should simply
        re-run the (cheap, incremental) pipeline when the diff is
        non-empty.
        """
        names = set(component_names)
        if names & self.touched_components():
            return True
        return False

    def summary(self) -> str:
        parts: List[str] = []
        if self.added_instances:
            parts.append(f"+{len(self.added_instances)} instances")
        if self.removed_instances:
            parts.append(f"-{len(self.removed_instances)} instances")
        if self.reclassified_instances:
            parts.append(f"~{len(self.reclassified_instances)} reclassified")
        if self.added_links:
            parts.append(f"+{len(self.added_links)} links")
        if self.removed_links:
            parts.append(f"-{len(self.removed_links)} links")
        return ", ".join(parts) if parts else "no changes"


def diff_object_models(old: ObjectModel, new: ObjectModel) -> ModelDiff:
    """Compute the structural delta from *old* to *new*.

    Instances are matched by name; classifier changes are reported as
    reclassifications.  Links are matched by their (unordered) endpoint
    pair.
    """
    old_names = set(old.instance_names())
    new_names = set(new.instance_names())
    added = tuple(sorted(new_names - old_names))
    removed = tuple(sorted(old_names - new_names))
    reclassified = tuple(
        sorted(
            (name, old.get_instance(name).classifier.name,
             new.get_instance(name).classifier.name)
            for name in (old_names & new_names)
            if old.get_instance(name).classifier.name
            != new.get_instance(name).classifier.name
        )
    )
    old_links = {_link_key(link) for link in old.links}
    new_links = {_link_key(link) for link in new.links}
    return ModelDiff(
        added_instances=added,
        removed_instances=removed,
        reclassified_instances=reclassified,
        added_links=tuple(sorted(new_links - old_links)),
        removed_links=tuple(sorted(old_links - new_links)),
    )
