"""Well-formedness constraints over the UML modeling subset.

The paper's metamodel imposes structural rules (Section V-A1):

* every Connector must be associated to two Devices;
* classes may only have static attributes (so instances of one class are
  property-identical);
* stereotypes may only be applied to the metaclasses they extend (checked
  eagerly at application time, re-checked here for imported models);
* dependability analysis requires specific properties (MTBF, MTTR, ...) to
  be present on every component — a profile-completeness constraint.

This module provides a small constraint engine: :class:`Constraint` objects
check a model and emit :class:`Violation` records; :class:`ConstraintSuite`
bundles them, and :func:`check_infrastructure` runs the standard suite used
by the methodology pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.errors import ConstraintViolationError
from repro.uml.classes import ClassModel
from repro.uml.objects import ObjectModel
from repro.uml.profiles import Stereotype

__all__ = [
    "Violation",
    "Constraint",
    "ConstraintSuite",
    "StaticAttributesConstraint",
    "ConnectorArityConstraint",
    "StereotypeApplicabilityConstraint",
    "ProfileCompletenessConstraint",
    "LinkConformanceConstraint",
    "NoDanglingInstancesConstraint",
    "standard_suite",
    "check_infrastructure",
]


@dataclass(frozen=True)
class Violation:
    """One constraint violation: which rule, on which element, and why."""

    constraint: str
    element: str
    message: str

    def __str__(self) -> str:
        return f"[{self.constraint}] {self.element}: {self.message}"


class Constraint:
    """Base class: a named well-formedness rule over an object model."""

    name = "constraint"

    def check(self, model: ObjectModel) -> List[Violation]:
        raise NotImplementedError

    def _violation(self, element: str, message: str) -> Violation:
        return Violation(self.name, element, message)


class StaticAttributesConstraint(Constraint):
    """All class attributes must be static and all slots informational.

    "To ensure that two different instances of the same class have also the
    same properties, every class may only have static attributes."  A slot
    that shadows a declared (static) attribute would break that guarantee
    and is reported.
    """

    name = "static-attributes"

    def check(self, model: ObjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for cls in model.class_model.classes:
            for prop in cls.attributes:
                if not prop.is_static:
                    violations.append(
                        self._violation(
                            cls.name,
                            f"attribute {prop.name!r} is not static",
                        )
                    )
        declared_by_class: dict[str, set[str]] = {}
        for cls in model.class_model.classes:
            declared_by_class[cls.name] = {p.name for p in cls.all_attributes()}
            for app in cls.applied_stereotypes:
                declared_by_class[cls.name] |= {
                    p.name for p in app.stereotype.all_attributes()
                }
        for instance in model.instances:
            declared = declared_by_class.get(instance.classifier.name, set())
            for slot in instance.slots:
                if slot.defining_property_name in declared:
                    violations.append(
                        self._violation(
                            instance.signature,
                            f"slot shadows static attribute "
                            f"{slot.defining_property_name!r}",
                        )
                    )
        return violations


class ConnectorArityConstraint(Constraint):
    """Every association must be strictly binary and every link must connect
    exactly two distinct instances ("every Connector must be associated to
    two Devices")."""

    name = "connector-arity"

    def check(self, model: ObjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for link in model.links:
            if link.end1.xmi_id == link.end2.xmi_id:
                violations.append(
                    self._violation(link.name, "link connects an instance to itself")
                )
        return violations


class StereotypeApplicabilityConstraint(Constraint):
    """Applied stereotypes must extend the element's metaclass."""

    name = "stereotype-applicability"

    def check(self, model: ObjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for element in [*model.class_model.classes, *model.class_model.associations]:
            for app in element.applied_stereotypes:
                applicable = app.stereotype.effective_extends()
                if element.metaclass_name not in applicable:
                    violations.append(
                        self._violation(
                            element.name,
                            f"stereotype «{app.stereotype.name}» extends "
                            f"{applicable or '()'} but is applied to a "
                            f"{element.metaclass_name}",
                        )
                    )
        return violations


class ProfileCompletenessConstraint(Constraint):
    """Every component class/association carries a required stereotype.

    Used to guarantee "that every ICT component inherits [the analysis
    attributes] and thus meets the requirements of the analysis"
    (Section V-A1).  Parameterized by the stereotype every class (and,
    optionally, every association) must carry.
    """

    name = "profile-completeness"

    def __init__(
        self,
        class_stereotype: Stereotype | str,
        association_stereotype: Optional[Stereotype | str] = None,
        required_attributes: Sequence[str] = (),
    ):
        self.class_stereotype = class_stereotype
        self.association_stereotype = association_stereotype
        self.required_attributes = tuple(required_attributes)

    def check(self, model: ObjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for cls in model.class_model.classes:
            if cls.is_abstract:
                continue
            violations.extend(self._check_element(cls, self.class_stereotype))
        if self.association_stereotype is not None:
            for assoc in model.class_model.associations:
                violations.extend(
                    self._check_element(assoc, self.association_stereotype)
                )
        return violations

    def _check_element(self, element, stereotype) -> List[Violation]:
        name = stereotype if isinstance(stereotype, str) else stereotype.name
        if not element.has_stereotype(stereotype):
            return [
                self._violation(
                    element.name, f"missing required stereotype «{name}»"
                )
            ]
        violations: List[Violation] = []
        app = element.stereotype_application(stereotype)
        for attr in self.required_attributes:
            try:
                value = app.value(attr)
            except Exception:
                value = None
            if value is None:
                violations.append(
                    self._violation(
                        element.name,
                        f"stereotype «{name}» attribute {attr!r} has no value",
                    )
                )
        return violations


class LinkConformanceConstraint(Constraint):
    """Link ends must conform to the instantiated association's end types."""

    name = "link-conformance"

    def check(self, model: ObjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for link in model.links:
            if not link.association.connects(
                link.end1.classifier, link.end2.classifier
            ):
                violations.append(
                    self._violation(
                        link.name,
                        f"association {link.association.name!r} does not permit "
                        f"{link.end1.signature} -- {link.end2.signature}",
                    )
                )
        return violations


class NoDanglingInstancesConstraint(Constraint):
    """Every instance should participate in at least one link.

    An unconnected node can never appear on any requester-provider path;
    in an infrastructure model it is almost always a modeling mistake.
    """

    name = "no-dangling-instances"

    def check(self, model: ObjectModel) -> List[Violation]:
        if len(model) <= 1:
            return []
        return [
            self._violation(instance.signature, "instance has no links")
            for instance in model.instances
            if model.degree(instance) == 0
        ]


class ConstraintSuite:
    """An ordered bundle of constraints checked together."""

    def __init__(self, constraints: Iterable[Constraint] = ()):
        self.constraints: List[Constraint] = list(constraints)

    def add(self, constraint: Constraint) -> "ConstraintSuite":
        self.constraints.append(constraint)
        return self

    def check(self, model: ObjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for constraint in self.constraints:
            violations.extend(constraint.check(model))
        return violations

    def enforce(self, model: ObjectModel) -> None:
        """Raise :class:`ConstraintViolationError` if any constraint fails."""
        violations = self.check(model)
        if violations:
            raise ConstraintViolationError(violations)


def standard_suite(
    *,
    class_stereotype: Optional[Stereotype | str] = None,
    association_stereotype: Optional[Stereotype | str] = None,
    required_attributes: Sequence[str] = (),
) -> ConstraintSuite:
    """The standard infrastructure suite of the methodology pipeline.

    When *class_stereotype* is given, profile completeness is checked too
    (the methodology requires the availability profile to be applied before
    the dependability analysis can run).
    """
    suite = ConstraintSuite(
        [
            StaticAttributesConstraint(),
            ConnectorArityConstraint(),
            StereotypeApplicabilityConstraint(),
            LinkConformanceConstraint(),
            NoDanglingInstancesConstraint(),
        ]
    )
    if class_stereotype is not None:
        suite.add(
            ProfileCompletenessConstraint(
                class_stereotype, association_stereotype, required_attributes
            )
        )
    return suite


def check_infrastructure(model: ObjectModel, **kwargs) -> List[Violation]:
    """Run the standard suite on *model* and return the violations."""
    return standard_suite(**kwargs).check(model)
