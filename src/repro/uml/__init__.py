"""UML modeling subset used by the UPSIM methodology.

Implements exactly the slice of UML 2.x the paper relies on (Section V-A):
class diagrams for ICT component types, object diagrams for deployed
topologies and UPSIMs, activity diagrams for service descriptions, and
profiles/stereotypes for non-functional annotations, plus well-formedness
constraints and XML serialization.
"""

from repro.uml.activity import (
    Action,
    Activity,
    ActivityNode,
    ControlFlow,
    FinalNode,
    ForkNode,
    InitialNode,
    JoinNode,
    SPLeaf,
    SPNode,
    SPParallel,
    SPSeries,
)
from repro.uml.classes import Association, AssociationEnd, Class, ClassModel
from repro.uml.diff import ModelDiff, diff_object_models
from repro.uml.constraints import (
    Constraint,
    ConstraintSuite,
    Violation,
    check_infrastructure,
    standard_suite,
)
from repro.uml.metamodel import (
    PRIMITIVE_TYPES,
    Element,
    NamedElement,
    Property,
    coerce_value,
)
from repro.uml.objects import InstanceSpecification, Link, ObjectModel, Slot
from repro.uml.profiles import (
    Profile,
    Stereotype,
    StereotypeApplication,
    StereotypedElement,
)
from repro.uml.xmi import ModelBundle, dump, dumps, load, loads

__all__ = [
    "PRIMITIVE_TYPES",
    "Element",
    "NamedElement",
    "Property",
    "coerce_value",
    "Class",
    "Association",
    "AssociationEnd",
    "ClassModel",
    "InstanceSpecification",
    "Link",
    "ObjectModel",
    "Slot",
    "Profile",
    "Stereotype",
    "StereotypeApplication",
    "StereotypedElement",
    "Activity",
    "ActivityNode",
    "Action",
    "InitialNode",
    "FinalNode",
    "ForkNode",
    "JoinNode",
    "ControlFlow",
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "Constraint",
    "ModelDiff",
    "diff_object_models",
    "ConstraintSuite",
    "Violation",
    "check_infrastructure",
    "standard_suite",
    "ModelBundle",
    "dump",
    "dumps",
    "load",
    "loads",
]
