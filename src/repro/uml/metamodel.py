"""Core of the UML metamodel subset used by the UPSIM methodology.

The paper models ICT infrastructures with a small, well-defined subset of
UML 2.x: class diagrams, object diagrams, activity diagrams, and profiles
with stereotypes (Section V-A).  This module provides the shared base
classes of that subset:

* :class:`Element` — anything with an identity inside a model,
* :class:`NamedElement` — an element with a (qualified) name,
* :class:`Property` — a typed, named attribute.  Per the paper, classes may
  only carry *static* attributes so that two instances of the same class
  always expose identical property values; :class:`Property` therefore
  stores its default value directly,
* primitive types (:data:`PRIMITIVE_TYPES`) and value coercion helpers.

The concrete diagram elements live in sibling modules
(:mod:`repro.uml.classes`, :mod:`repro.uml.objects`,
:mod:`repro.uml.activity`, :mod:`repro.uml.profiles`).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import ModelError

__all__ = [
    "PRIMITIVE_TYPES",
    "Element",
    "NamedElement",
    "Property",
    "coerce_value",
    "is_valid_identifier",
]

#: The UML primitive types supported by the modeling subset.  The paper's
#: profiles use ``Real`` (MTBF, MTTR, throughput), ``Integer``
#: (redundantComponents), ``String`` (manufacturer, model, processor,
#: channel) and ``Boolean``.
PRIMITIVE_TYPES = ("Real", "Integer", "String", "Boolean")

_PY_TYPES = {
    "Real": float,
    "Integer": int,
    "String": str,
    "Boolean": bool,
}

_id_counter = itertools.count(1)


def _next_id(prefix: str) -> str:
    """Return a fresh, process-unique element id like ``"cls_17"``."""
    return f"{prefix}_{next(_id_counter)}"


def is_valid_identifier(name: str) -> bool:
    """Return whether *name* is acceptable as a model element name.

    Names must be non-empty and must not contain the namespace separator
    ``.`` (used to build qualified names) or XML-hostile characters.
    """
    if not isinstance(name, str) or not name:
        return False
    forbidden = set('.<>&"\n\t\r')
    return not any(ch in forbidden for ch in name)


def coerce_value(type_name: str, value: Any) -> Any:
    """Coerce *value* to the Python representation of a UML primitive type.

    ``Real`` accepts ints and floats, ``Integer`` accepts ints and whole
    floats, ``Boolean`` accepts bools and the strings ``"true"``/``"false"``,
    ``String`` accepts anything string-like.  Raises :class:`ModelError` for
    unknown types or inconvertible values.
    """
    if type_name not in _PY_TYPES:
        raise ModelError(f"unknown primitive type {type_name!r}")
    if value is None:
        return None
    try:
        if type_name == "Real":
            if isinstance(value, bool):
                raise TypeError("bool is not a Real")
            return float(value)
        if type_name == "Integer":
            if isinstance(value, bool):
                raise TypeError("bool is not an Integer")
            if isinstance(value, float):
                if not value.is_integer():
                    raise TypeError(f"{value} is not a whole number")
                return int(value)
            return int(value)
        if type_name == "Boolean":
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "1"):
                    return True
                if lowered in ("false", "0"):
                    return False
            raise TypeError(f"{value!r} is not a Boolean")
        # String
        if isinstance(value, str):
            return value
        raise TypeError(f"{value!r} is not a String")
    except (TypeError, ValueError) as exc:
        raise ModelError(
            f"cannot coerce {value!r} to UML primitive {type_name}: {exc}"
        ) from exc


class Element:
    """Base class of every UML model element.

    Each element carries a stable ``xmi_id`` used by the XML serializer and
    by the VPM importer to correlate elements across models, and an optional
    free-text ``comment`` (the UML ownedComment).
    """

    _id_prefix = "elem"

    def __init__(self, *, xmi_id: Optional[str] = None, comment: str = ""):
        self.xmi_id = xmi_id if xmi_id is not None else _next_id(self._id_prefix)
        self.comment = comment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.xmi_id}>"


class NamedElement(Element):
    """A model element with a name, optionally owned by a namespace.

    The qualified name is ``owner.qualified_name + "." + name`` when the
    element has an owner that is itself a named element, mirroring UML's
    Namespace semantics.
    """

    _id_prefix = "named"

    def __init__(
        self,
        name: str,
        *,
        xmi_id: Optional[str] = None,
        comment: str = "",
        owner: Optional["NamedElement"] = None,
    ):
        if not is_valid_identifier(name):
            raise ModelError(f"invalid element name: {name!r}")
        super().__init__(xmi_id=xmi_id, comment=comment)
        self.name = name
        self.owner = owner

    @property
    def qualified_name(self) -> str:
        """Dot-separated name path from the outermost namespace."""
        if self.owner is not None:
            return f"{self.owner.qualified_name}.{self.name}"
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.qualified_name!r}>"


class Property(NamedElement):
    """A typed attribute of a class or stereotype.

    Per the paper (Section V-A1) class attributes are *static*: the value is
    defined once on the class and shared by all instances, which guarantees
    that two instances of the same class expose the same non-functional
    properties.  ``Property`` therefore stores a ``default`` value which is
    what instances report.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"MTBF"``.
    type_name:
        One of :data:`PRIMITIVE_TYPES`.
    default:
        Optional default/static value; coerced to the primitive type.
    is_static:
        Whether the attribute is static (class-level).  Defaults to ``True``
        because the methodology requires static attributes; constraint
        checking flags non-static ones.
    """

    _id_prefix = "prop"

    def __init__(
        self,
        name: str,
        type_name: str,
        default: Any = None,
        *,
        is_static: bool = True,
        xmi_id: Optional[str] = None,
        comment: str = "",
        owner: Optional[NamedElement] = None,
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment, owner=owner)
        if type_name not in PRIMITIVE_TYPES:
            raise ModelError(
                f"property {name!r}: unknown type {type_name!r}; "
                f"expected one of {PRIMITIVE_TYPES}"
            )
        self.type_name = type_name
        self.is_static = bool(is_static)
        self.default = coerce_value(type_name, default) if default is not None else None

    def with_default(self, value: Any) -> "Property":
        """Return a copy of this property with a different default value."""
        return Property(
            self.name,
            self.type_name,
            value,
            is_static=self.is_static,
            comment=self.comment,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Property):
            return NotImplemented
        return (
            self.name == other.name
            and self.type_name == other.type_name
            and self.default == other.default
            and self.is_static == other.is_static
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type_name, self.default, self.is_static))

