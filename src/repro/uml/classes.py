"""UML class diagrams: classes, associations and class models.

Class diagrams describe the *types* of ICT components (Section V-A1):
"Devices and Connectors are respectively modeled as classes and
associations in a UML class diagram."  Every class may only carry static
attributes so that all instances of a class share identical property
values — this is what lets the UPSIM inherit dependability attributes from
the class model without per-instance bookkeeping.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ModelError
from repro.uml.metamodel import NamedElement, Property
from repro.uml.profiles import StereotypedElement

__all__ = [
    "Class",
    "AssociationEnd",
    "Association",
    "ClassModel",
]


class Class(StereotypedElement):
    """A UML class modeling a device type (e.g. ``C6500``, ``Comp``).

    Attributes are static (:class:`repro.uml.metamodel.Property` with
    ``is_static=True``), carry their value as the property default, and are
    inherited along generalizations.
    """

    metaclass_name = "Class"
    _id_prefix = "cls"

    def __init__(
        self,
        name: str,
        *,
        attributes: Iterable[Property] = (),
        superclasses: Iterable["Class"] = (),
        is_abstract: bool = False,
        xmi_id: Optional[str] = None,
        comment: str = "",
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment)
        self.attributes: List[Property] = list(attributes)
        self.superclasses: List[Class] = list(superclasses)
        self.is_abstract = bool(is_abstract)
        names = [prop.name for prop in self.attributes]
        if len(names) != len(set(names)):
            raise ModelError(f"class {name!r} declares duplicate attribute names")

    # -- generalization ----------------------------------------------------

    def all_superclasses(self) -> Iterator["Class"]:
        """All transitive superclasses, nearest first, each yielded once."""
        seen: set[str] = set()
        stack = list(self.superclasses)
        while stack:
            parent = stack.pop(0)
            if parent.xmi_id in seen:
                continue
            seen.add(parent.xmi_id)
            yield parent
            stack.extend(parent.superclasses)

    def conforms_to(self, other: "Class") -> bool:
        """Whether this class is *other* or a (transitive) subclass of it."""
        if other.xmi_id == self.xmi_id:
            return True
        return any(parent.xmi_id == other.xmi_id for parent in self.all_superclasses())

    # -- attributes ----------------------------------------------------------

    def all_attributes(self) -> List[Property]:
        """Own plus inherited attributes; own shadow inherited of same name."""
        result: Dict[str, Property] = {}
        for parent in reversed(list(self.all_superclasses())):
            for prop in parent.attributes:
                result[prop.name] = prop
        for prop in self.attributes:
            result[prop.name] = prop
        return list(result.values())

    def attribute(self, name: str) -> Property:
        for prop in self.all_attributes():
            if prop.name == name:
                return prop
        raise ModelError(f"class {self.name!r} has no attribute {name!r}")

    def attribute_value(self, name: str) -> Any:
        """Static value of attribute *name* — what every instance reports.

        Falls back to stereotype attributes if the class itself does not
        declare the attribute; this models the paper's use of profiles to
        impose dependability attributes (MTBF, MTTR, ...) on classes.
        """
        for prop in self.all_attributes():
            if prop.name == name:
                return prop.default
        for app in self.applied_stereotypes:
            for prop in app.stereotype.all_attributes():
                if prop.name == name:
                    return app.value(name)
        raise ModelError(
            f"class {self.name!r} has no attribute or stereotype attribute {name!r}"
        )

    def property_dict(self) -> Dict[str, Any]:
        """All (own, inherited, stereotype) attribute values as one dict.

        Stereotype attributes are overridden by class attributes of the same
        name.  This is the "signature" that instances of the class — and
        hence the UPSIM — inherit (Section V-E).
        """
        result: Dict[str, Any] = {}
        for app in self.applied_stereotypes:
            result.update(app.values())
        for prop in self.all_attributes():
            result[prop.name] = prop.default
        return result


class AssociationEnd:
    """One end of an association: a type and a multiplicity range.

    ``upper=None`` encodes the unbounded multiplicity ``*``.
    """

    def __init__(
        self,
        type_: Class,
        *,
        lower: int = 0,
        upper: Optional[int] = None,
        name: str = "",
    ):
        if lower < 0:
            raise ModelError(f"association end lower bound must be >= 0, got {lower}")
        if upper is not None and upper < max(lower, 1):
            raise ModelError(
                f"association end upper bound {upper} below lower bound {lower}"
            )
        self.type = type_
        self.lower = lower
        self.upper = upper
        self.name = name

    def multiplicity_str(self) -> str:
        upper = "*" if self.upper is None else str(self.upper)
        if str(self.lower) == upper:
            return upper
        return f"{self.lower}..{upper}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AssociationEnd {self.type.name}[{self.multiplicity_str()}]>"


class Association(StereotypedElement):
    """A UML binary association modeling a connector type.

    Per the paper, "every Connector must be associated to two Devices"
    (Section V-A1): associations are strictly binary.  Links in the object
    diagram are instances of associations.
    """

    metaclass_name = "Association"
    _id_prefix = "assoc"

    def __init__(
        self,
        name: str,
        end1: AssociationEnd | Class,
        end2: AssociationEnd | Class,
        *,
        xmi_id: Optional[str] = None,
        comment: str = "",
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment)
        self.end1 = end1 if isinstance(end1, AssociationEnd) else AssociationEnd(end1)
        self.end2 = end2 if isinstance(end2, AssociationEnd) else AssociationEnd(end2)

    @property
    def ends(self) -> Tuple[AssociationEnd, AssociationEnd]:
        return (self.end1, self.end2)

    def connects(self, class_a: Class, class_b: Class) -> bool:
        """Whether instances of *class_a* and *class_b* may be linked by this
        association (in either end order, honouring generalization)."""
        forward = class_a.conforms_to(self.end1.type) and class_b.conforms_to(
            self.end2.type
        )
        backward = class_a.conforms_to(self.end2.type) and class_b.conforms_to(
            self.end1.type
        )
        return forward or backward

    def property_dict(self) -> Dict[str, Any]:
        """Stereotype attribute values of the association (its signature)."""
        result: Dict[str, Any] = {}
        for app in self.applied_stereotypes:
            result.update(app.values())
        return result


class ClassModel(NamedElement):
    """A class diagram: the set of component classes and associations.

    Corresponds to Step 1 of the methodology (Section V-B): "Identify ICT
    components and create the respective UML classes for each class type."
    """

    _id_prefix = "clsmodel"

    def __init__(
        self,
        name: str = "classes",
        *,
        xmi_id: Optional[str] = None,
        comment: str = "",
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment)
        self._classes: Dict[str, Class] = {}
        self._associations: Dict[str, Association] = {}

    # -- population ----------------------------------------------------------

    def add_class(self, cls: Class) -> Class:
        if cls.name in self._classes:
            raise ModelError(f"class model already contains class {cls.name!r}")
        cls.owner = self
        self._classes[cls.name] = cls
        return cls

    def add_association(self, association: Association) -> Association:
        if association.name in self._associations:
            raise ModelError(
                f"class model already contains association {association.name!r}"
            )
        for end in association.ends:
            if end.type.name not in self._classes and not any(
                existing.xmi_id == end.type.xmi_id for existing in self._classes.values()
            ):
                raise ModelError(
                    f"association {association.name!r} references class "
                    f"{end.type.name!r} not present in the model"
                )
        association.owner = self
        self._associations[association.name] = association
        return association

    # -- access ----------------------------------------------------------------

    def get_class(self, name: str) -> Class:
        try:
            return self._classes[name]
        except KeyError:
            raise ModelError(f"class model has no class {name!r}") from None

    def get_association(self, name: str) -> Association:
        try:
            return self._associations[name]
        except KeyError:
            raise ModelError(f"class model has no association {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def has_association(self, name: str) -> bool:
        return name in self._associations

    @property
    def classes(self) -> List[Class]:
        return list(self._classes.values())

    @property
    def associations(self) -> List[Association]:
        return list(self._associations.values())

    def associations_between(self, class_a: Class, class_b: Class) -> List[Association]:
        """All associations that permit a link between the two classes."""
        return [
            assoc
            for assoc in self._associations.values()
            if assoc.connects(class_a, class_b)
        ]

    def __len__(self) -> int:
        return len(self._classes) + len(self._associations)
