"""XML (XMI-flavoured) serialization of the UML modeling subset.

The original tool chain stores models as Papyrus/Eclipse XMI files; the
methodology's side goal is that models be expressed "using well known
standards and freely available tools".  This module provides a compact,
self-contained XML dialect that round-trips every model kind used by the
methodology: profiles, class models, object models and activities.

The top-level container is a :class:`ModelBundle`; :func:`dumps`/:func:`loads`
convert bundles to/from XML text, :func:`dump`/:func:`load` to/from files.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SerializationError
from repro.uml.activity import (
    Action,
    Activity,
    ActivityNode,
    FinalNode,
    ForkNode,
    InitialNode,
    JoinNode,
)
from repro.uml.classes import Association, AssociationEnd, Class, ClassModel
from repro.uml.metamodel import Property
from repro.uml.objects import ObjectModel, Slot
from repro.uml.profiles import Profile, Stereotype

__all__ = ["ModelBundle", "dumps", "loads", "dump", "load"]

_NODE_KINDS = {
    "initial": InitialNode,
    "final": FinalNode,
    "fork": ForkNode,
    "join": JoinNode,
}


@dataclass
class ModelBundle:
    """Everything a methodology run needs, in one serializable unit."""

    profiles: List[Profile] = field(default_factory=list)
    class_model: Optional[ClassModel] = None
    object_model: Optional[ObjectModel] = None
    activities: List[Activity] = field(default_factory=list)

    def profile(self, name: str) -> Profile:
        for profile in self.profiles:
            if profile.name == name:
                return profile
        raise SerializationError(f"bundle has no profile {name!r}")

    def activity(self, name: str) -> Activity:
        for activity in self.activities:
            if activity.name == name:
                return activity
        raise SerializationError(f"bundle has no activity {name!r}")


# ---------------------------------------------------------------------------
# writing


def _property_element(prop: Property) -> ET.Element:
    elem = ET.Element(
        "attribute",
        name=prop.name,
        type=prop.type_name,
        static="true" if prop.is_static else "false",
    )
    if prop.default is not None:
        elem.set("default", _value_to_str(prop.default))
    return elem


def _value_to_str(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _write_profile(profile: Profile) -> ET.Element:
    elem = ET.Element("profile", name=profile.name)
    for stereotype in profile:
        s_elem = ET.SubElement(elem, "stereotype", name=stereotype.name)
        if stereotype.is_abstract:
            s_elem.set("abstract", "true")
        if stereotype.extends:
            s_elem.set("extends", ",".join(stereotype.extends))
        if stereotype.generalizations:
            s_elem.set(
                "generalizes",
                ",".join(parent.name for parent in stereotype.generalizations),
            )
        for prop in stereotype.attributes:
            s_elem.append(_property_element(prop))
    return elem


def _write_applications(element, parent: ET.Element) -> None:
    for app in element.applied_stereotypes:
        a_elem = ET.SubElement(
            parent,
            "appliedStereotype",
            profile=app.stereotype.owner.name if app.stereotype.owner else "",
            stereotype=app.stereotype.name,
        )
        for name, value in app.values().items():
            if value is None:
                continue
            ET.SubElement(a_elem, "value", attribute=name, value=_value_to_str(value))


def _write_class_model(model: ClassModel) -> ET.Element:
    elem = ET.Element("classModel", name=model.name)
    for cls in model.classes:
        c_elem = ET.SubElement(elem, "class", name=cls.name)
        if cls.is_abstract:
            c_elem.set("abstract", "true")
        if cls.superclasses:
            c_elem.set("superclasses", ",".join(s.name for s in cls.superclasses))
        for prop in cls.attributes:
            c_elem.append(_property_element(prop))
        _write_applications(cls, c_elem)
    for assoc in model.associations:
        a_elem = ET.SubElement(elem, "association", name=assoc.name)
        for index, end in enumerate(assoc.ends, start=1):
            e_elem = ET.SubElement(a_elem, f"end{index}", type=end.type.name)
            e_elem.set("lower", str(end.lower))
            e_elem.set("upper", "*" if end.upper is None else str(end.upper))
            if end.name:
                e_elem.set("name", end.name)
        _write_applications(assoc, a_elem)
    return elem


def _write_object_model(model: ObjectModel) -> ET.Element:
    elem = ET.Element("objectModel", name=model.name)
    for instance in model.instances:
        i_elem = ET.SubElement(
            elem, "instance", name=instance.name, classifier=instance.classifier.name
        )
        for slot in instance.slots:
            ET.SubElement(
                i_elem,
                "slot",
                attribute=slot.defining_property_name,
                type=slot.type_name,
                value=_value_to_str(slot.value),
            )
    for link in model.links:
        ET.SubElement(
            elem,
            "link",
            name=link.name,
            association=link.association.name,
            end1=link.end1.name,
            end2=link.end2.name,
        )
    return elem


def _write_activity(activity: Activity) -> ET.Element:
    elem = ET.Element("activity", name=activity.name)
    ids: Dict[str, str] = {}
    for index, node in enumerate(activity.nodes):
        node_id = f"n{index}"
        ids[node.xmi_id] = node_id
        n_elem = ET.SubElement(elem, "node", id=node_id, kind=node.kind)
        if isinstance(node, Action):
            n_elem.set("atomicService", node.atomic_service_name)
        if node.name:
            n_elem.set("name", node.name)
    for flow in activity.flows:
        ET.SubElement(
            elem, "flow", source=ids[flow.source.xmi_id], target=ids[flow.target.xmi_id]
        )
    return elem


def dumps(bundle: ModelBundle) -> str:
    """Serialize a :class:`ModelBundle` to XML text."""
    root = ET.Element("reproModel", version="1.0")
    for profile in bundle.profiles:
        root.append(_write_profile(profile))
    if bundle.class_model is not None:
        root.append(_write_class_model(bundle.class_model))
    if bundle.object_model is not None:
        root.append(_write_object_model(bundle.object_model))
    for activity in bundle.activities:
        root.append(_write_activity(activity))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def dump(bundle: ModelBundle, path: str) -> None:
    """Serialize *bundle* to the file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(bundle))


# ---------------------------------------------------------------------------
# reading


def _read_property(elem: ET.Element) -> Property:
    return Property(
        elem.get("name", ""),
        elem.get("type", "String"),
        elem.get("default"),
        is_static=elem.get("static", "true") == "true",
    )


def _read_profile(elem: ET.Element) -> Profile:
    profile = Profile(elem.get("name", "profile"))
    pending: List[tuple[Stereotype, List[str]]] = []
    for s_elem in elem.findall("stereotype"):
        extends = tuple(
            part for part in (s_elem.get("extends") or "").split(",") if part
        )
        parents = [part for part in (s_elem.get("generalizes") or "").split(",") if part]
        stereotype = Stereotype(
            s_elem.get("name", "stereotype"),
            extends=extends,
            attributes=[_read_property(p) for p in s_elem.findall("attribute")],
            is_abstract=s_elem.get("abstract") == "true",
        )
        profile.add(stereotype)
        pending.append((stereotype, parents))
    for stereotype, parents in pending:
        stereotype.generalizations.extend(profile.stereotype(p) for p in parents)
    return profile


def _profiles_index(profiles: List[Profile]) -> Dict[str, Profile]:
    return {profile.name: profile for profile in profiles}


def _apply_applications(
    element, parent_elem: ET.Element, profiles: Dict[str, Profile]
) -> None:
    for a_elem in parent_elem.findall("appliedStereotype"):
        profile_name = a_elem.get("profile", "")
        stereotype_name = a_elem.get("stereotype", "")
        if profile_name not in profiles:
            raise SerializationError(
                f"applied stereotype references unknown profile {profile_name!r}"
            )
        stereotype = profiles[profile_name].stereotype(stereotype_name)
        values = {
            v.get("attribute", ""): v.get("value")
            for v in a_elem.findall("value")
        }
        element.apply_stereotype(stereotype, **values)


def _read_class_model(elem: ET.Element, profiles: Dict[str, Profile]) -> ClassModel:
    model = ClassModel(elem.get("name", "classes"))
    deferred_supers: List[tuple[Class, List[str]]] = []
    for c_elem in elem.findall("class"):
        cls = Class(
            c_elem.get("name", "Class"),
            attributes=[_read_property(p) for p in c_elem.findall("attribute")],
            is_abstract=c_elem.get("abstract") == "true",
        )
        model.add_class(cls)
        supers = [s for s in (c_elem.get("superclasses") or "").split(",") if s]
        deferred_supers.append((cls, supers))
        _apply_applications(cls, c_elem, profiles)
    for cls, supers in deferred_supers:
        cls.superclasses.extend(model.get_class(s) for s in supers)
    for a_elem in elem.findall("association"):
        ends: List[AssociationEnd] = []
        for key in ("end1", "end2"):
            e_elem = a_elem.find(key)
            if e_elem is None:
                raise SerializationError(
                    f"association {a_elem.get('name')!r} missing {key}"
                )
            upper_str = e_elem.get("upper", "*")
            ends.append(
                AssociationEnd(
                    model.get_class(e_elem.get("type", "")),
                    lower=int(e_elem.get("lower", "0")),
                    upper=None if upper_str == "*" else int(upper_str),
                    name=e_elem.get("name", ""),
                )
            )
        assoc = Association(a_elem.get("name", "assoc"), ends[0], ends[1])
        model.add_association(assoc)
        _apply_applications(assoc, a_elem, profiles)
    return model


def _read_object_model(elem: ET.Element, class_model: ClassModel) -> ObjectModel:
    model = ObjectModel(elem.get("name", "infrastructure"), class_model)
    for i_elem in elem.findall("instance"):
        slots = [
            Slot(
                s.get("attribute", ""),
                s.get("type", "String"),
                s.get("value"),
            )
            for s in i_elem.findall("slot")
        ]
        model.add_instance(
            i_elem.get("name", ""), i_elem.get("classifier", ""), slots=slots
        )
    for l_elem in elem.findall("link"):
        model.add_link(
            l_elem.get("end1", ""),
            l_elem.get("end2", ""),
            l_elem.get("association"),
            name=l_elem.get("name"),
        )
    return model


def _read_activity(elem: ET.Element) -> Activity:
    activity = Activity(elem.get("name", "activity"))
    nodes: Dict[str, ActivityNode] = {}
    for n_elem in elem.findall("node"):
        kind = n_elem.get("kind", "")
        node_id = n_elem.get("id", "")
        if kind == "action":
            node = Action(
                n_elem.get("atomicService", ""),
                name=n_elem.get("name"),
            )
        elif kind in _NODE_KINDS:
            name = n_elem.get("name")
            node = _NODE_KINDS[kind]() if name is None else _NODE_KINDS[kind](name)
        else:
            raise SerializationError(f"unknown activity node kind {kind!r}")
        nodes[node_id] = activity.add_node(node)
    for f_elem in elem.findall("flow"):
        source_id = f_elem.get("source", "")
        target_id = f_elem.get("target", "")
        if source_id not in nodes or target_id not in nodes:
            raise SerializationError(
                f"flow references unknown node: {source_id!r} -> {target_id!r}"
            )
        activity.add_flow(nodes[source_id], nodes[target_id])
    return activity


def loads(text: str) -> ModelBundle:
    """Parse XML text produced by :func:`dumps` back into a bundle."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"malformed XML: {exc}") from exc
    if root.tag != "reproModel":
        raise SerializationError(
            f"expected root element 'reproModel', got {root.tag!r}"
        )
    bundle = ModelBundle()
    for p_elem in root.findall("profile"):
        bundle.profiles.append(_read_profile(p_elem))
    index = _profiles_index(bundle.profiles)
    cm_elem = root.find("classModel")
    if cm_elem is not None:
        bundle.class_model = _read_class_model(cm_elem, index)
    om_elem = root.find("objectModel")
    if om_elem is not None:
        if bundle.class_model is None:
            raise SerializationError("objectModel present without classModel")
        bundle.object_model = _read_object_model(om_elem, bundle.class_model)
    for a_elem in root.findall("activity"):
        bundle.activities.append(_read_activity(a_elem))
    return bundle


def load(path: str) -> ModelBundle:
    """Read a bundle from the file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
