"""UML object diagrams: instance specifications, links and object models.

Object diagrams describe the *deployed* network (Section V-A1): "network
nodes are instanceSpecifications of those classes, and communication is
represented by the corresponding links, which are instances of
associations."  Both the complete infrastructure (Figure 9) and the UPSIM
output (Figures 11, 12) are object diagrams.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ModelError
from repro.uml.classes import Association, Class, ClassModel
from repro.uml.metamodel import NamedElement, coerce_value

__all__ = [
    "Slot",
    "InstanceSpecification",
    "Link",
    "ObjectModel",
]


class Slot:
    """A slot: a per-instance value for a declared attribute.

    The methodology requires static class attributes, so in well-formed
    models slots are not used to override dependability values; the
    constraint engine (:mod:`repro.uml.constraints`) flags slots that shadow
    static attributes.  They remain available for purely informational
    per-instance data (e.g. an asset tag).
    """

    def __init__(self, defining_property_name: str, type_name: str, value: Any):
        self.defining_property_name = defining_property_name
        self.type_name = type_name
        self.value = coerce_value(type_name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Slot {self.defining_property_name}={self.value!r}>"


class InstanceSpecification(NamedElement):
    """An instance of a class — one concrete network node (e.g. ``t1:Comp``).

    The *signature* of an instance is its name plus its classifier; the
    UPSIM preserves signatures so that "a subsequent service dependability
    analysis will find specific required properties for every element"
    (Section V-E).
    """

    _id_prefix = "inst"

    def __init__(
        self,
        name: str,
        classifier: Class,
        *,
        slots: Iterable[Slot] = (),
        xmi_id: Optional[str] = None,
        comment: str = "",
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment)
        if classifier.is_abstract:
            raise ModelError(
                f"cannot instantiate abstract class {classifier.name!r} "
                f"for instance {name!r}"
            )
        self.classifier = classifier
        self.slots: List[Slot] = list(slots)

    @property
    def signature(self) -> str:
        """The UML-style ``name:Class`` label, e.g. ``"t1:Comp"``."""
        return f"{self.name}:{self.classifier.name}"

    def property_value(self, name: str) -> Any:
        """Value of attribute *name* for this instance.

        Slots take precedence (informational data only), then the static
        class/stereotype attribute values.
        """
        for slot in self.slots:
            if slot.defining_property_name == name:
                return slot.value
        return self.classifier.attribute_value(name)

    def property_dict(self) -> Dict[str, Any]:
        """All property values of this instance (class signature + slots)."""
        values = self.classifier.property_dict()
        for slot in self.slots:
            values[slot.defining_property_name] = slot.value
        return values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstanceSpecification {self.signature}>"


class Link(NamedElement):
    """An instance of an association connecting two instance specifications.

    Links model deployed communication (a cable, a wireless channel).  The
    link ends must conform to the association's end types.
    """

    _id_prefix = "link"

    def __init__(
        self,
        name: str,
        association: Association,
        end1: InstanceSpecification,
        end2: InstanceSpecification,
        *,
        xmi_id: Optional[str] = None,
        comment: str = "",
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment)
        if not association.connects(end1.classifier, end2.classifier):
            raise ModelError(
                f"link {name!r}: association {association.name!r} does not "
                f"permit connecting {end1.signature} and {end2.signature}"
            )
        self.association = association
        self.end1 = end1
        self.end2 = end2

    @property
    def ends(self) -> Tuple[InstanceSpecification, InstanceSpecification]:
        return (self.end1, self.end2)

    def other_end(self, instance: InstanceSpecification) -> InstanceSpecification:
        if instance.xmi_id == self.end1.xmi_id:
            return self.end2
        if instance.xmi_id == self.end2.xmi_id:
            return self.end1
        raise ModelError(
            f"instance {instance.signature} is not an end of link {self.name!r}"
        )

    def connects_instances(
        self, a: InstanceSpecification, b: InstanceSpecification
    ) -> bool:
        ids = {self.end1.xmi_id, self.end2.xmi_id}
        return {a.xmi_id, b.xmi_id} == ids

    def property_dict(self) -> Dict[str, Any]:
        """Property values inherited from the instantiated association."""
        return self.association.property_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.end1.name}--{self.end2.name} ({self.association.name})>"


class ObjectModel(NamedElement):
    """An object diagram: instances + links over a class model.

    Used both for the complete infrastructure (methodology Step 2) and for
    the generated UPSIM (Step 8).  Provides the graph-style accessors that
    path discovery and UPSIM generation build on.
    """

    _id_prefix = "objmodel"

    def __init__(
        self,
        name: str = "infrastructure",
        class_model: Optional[ClassModel] = None,
        *,
        xmi_id: Optional[str] = None,
        comment: str = "",
    ):
        super().__init__(name, xmi_id=xmi_id, comment=comment)
        self.class_model = class_model if class_model is not None else ClassModel()
        self._instances: Dict[str, InstanceSpecification] = {}
        self._links: Dict[str, Link] = {}
        self._adjacency: Dict[str, List[str]] = {}

    # -- population ------------------------------------------------------------

    def add_instance(
        self, name: str, classifier: Class | str, *, slots: Iterable[Slot] = ()
    ) -> InstanceSpecification:
        """Create and register an instance of *classifier* named *name*."""
        if name in self._instances:
            raise ModelError(f"object model already contains instance {name!r}")
        if isinstance(classifier, str):
            classifier = self.class_model.get_class(classifier)
        instance = InstanceSpecification(name, classifier, slots=slots)
        instance.owner = self
        self._instances[name] = instance
        self._adjacency[name] = []
        return instance

    def add_existing_instance(self, instance: InstanceSpecification) -> InstanceSpecification:
        """Register an already-built instance (used by the UPSIM generator to
        preserve signatures from the source infrastructure)."""
        if instance.name in self._instances:
            raise ModelError(
                f"object model already contains instance {instance.name!r}"
            )
        self._instances[instance.name] = instance
        self._adjacency[instance.name] = []
        return instance

    def add_link(
        self,
        a: InstanceSpecification | str,
        b: InstanceSpecification | str,
        association: Association | str | None = None,
        *,
        name: Optional[str] = None,
    ) -> Link:
        """Link instances *a* and *b*.

        If *association* is omitted, a unique association connecting the two
        classifiers is looked up in the class model (ambiguity is an error).
        Parallel links between the same pair are rejected: the infrastructure
        graph is simple, as in the paper's topology.
        """
        inst_a = self.get_instance(a) if isinstance(a, str) else a
        inst_b = self.get_instance(b) if isinstance(b, str) else b
        if inst_a.name == inst_b.name:
            raise ModelError(f"self-link on instance {inst_a.name!r} not allowed")
        if inst_a.name not in self._instances or inst_b.name not in self._instances:
            missing = inst_a.name if inst_a.name not in self._instances else inst_b.name
            raise ModelError(f"instance {missing!r} not in object model")
        if self.find_link(inst_a, inst_b) is not None:
            raise ModelError(
                f"instances {inst_a.name!r} and {inst_b.name!r} already linked"
            )
        if association is None:
            candidates = self.class_model.associations_between(
                inst_a.classifier, inst_b.classifier
            )
            if not candidates:
                raise ModelError(
                    f"no association connects {inst_a.signature} and "
                    f"{inst_b.signature}"
                )
            if len(candidates) > 1:
                names = [c.name for c in candidates]
                raise ModelError(
                    f"ambiguous associations {names} between {inst_a.signature} "
                    f"and {inst_b.signature}; pass one explicitly"
                )
            association = candidates[0]
        elif isinstance(association, str):
            association = self.class_model.get_association(association)
        link_name = name if name is not None else f"{inst_a.name}--{inst_b.name}"
        if link_name in self._links:
            raise ModelError(f"object model already contains link {link_name!r}")
        link = Link(link_name, association, inst_a, inst_b)
        link.owner = self
        self._links[link_name] = link
        self._adjacency[inst_a.name].append(link_name)
        self._adjacency[inst_b.name].append(link_name)
        return link

    # -- controlled removal ----------------------------------------------------

    def remove_link(
        self, a: InstanceSpecification | str, b: InstanceSpecification | str
    ) -> Link:
        """Remove the link between *a* and *b* and return it.

        Object models are mostly append-only; removal exists for the
        dynamicity scenarios (maintenance, link churn — Section V-A3).
        The adjacency index stays consistent, and the returned
        :class:`Link` carries everything needed to restore the connection
        (``add_link(link.end1, link.end2, link.association,
        name=link.name)``).
        """
        name_a = a if isinstance(a, str) else a.name
        name_b = b if isinstance(b, str) else b.name
        for name in (name_a, name_b):
            if name not in self._instances:
                raise ModelError(f"object model has no instance {name!r}")
        link = self.find_link(name_a, name_b)
        if link is None:
            raise ModelError(f"no link between {name_a!r} and {name_b!r} to remove")
        del self._links[link.name]
        self._adjacency[link.end1.name].remove(link.name)
        self._adjacency[link.end2.name].remove(link.name)
        return link

    def remove_instance(
        self, instance: InstanceSpecification | str, *, cascade: bool = False
    ) -> Tuple[InstanceSpecification, List[Link]]:
        """Remove an instance; with ``cascade=True`` its links go too.

        Returns ``(instance, removed links)`` so callers can undo the
        operation exactly (churn rollback).  Without *cascade* a still-
        linked instance is an error — silent removal would leave dangling
        link ends.
        """
        name = instance if isinstance(instance, str) else instance.name
        inst = self.get_instance(name)
        incident = self.links_of(name)
        if incident and not cascade:
            raise ModelError(
                f"instance {name!r} still has {len(incident)} link(s); "
                f"remove them first or pass cascade=True"
            )
        removed = [self.remove_link(link.end1, link.end2) for link in incident]
        del self._instances[name]
        del self._adjacency[name]
        return inst, removed

    # -- access ----------------------------------------------------------------

    def get_instance(self, name: str) -> InstanceSpecification:
        try:
            return self._instances[name]
        except KeyError:
            raise ModelError(f"object model has no instance {name!r}") from None

    def has_instance(self, name: str) -> bool:
        return name in self._instances

    def get_link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise ModelError(f"object model has no link {name!r}") from None

    def find_link(
        self, a: InstanceSpecification | str, b: InstanceSpecification | str
    ) -> Optional[Link]:
        """The link between *a* and *b*, or ``None``."""
        name_a = a if isinstance(a, str) else a.name
        name_b = b if isinstance(b, str) else b.name
        if name_a not in self._adjacency:
            return None
        for link_name in self._adjacency[name_a]:
            link = self._links[link_name]
            if link.end1.name == name_b or link.end2.name == name_b:
                return link
        return None

    @property
    def instances(self) -> List[InstanceSpecification]:
        return list(self._instances.values())

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    def instance_names(self) -> List[str]:
        return list(self._instances)

    def links_of(self, instance: InstanceSpecification | str) -> List[Link]:
        name = instance if isinstance(instance, str) else instance.name
        if name not in self._adjacency:
            raise ModelError(f"object model has no instance {name!r}")
        return [self._links[link_name] for link_name in self._adjacency[name]]

    def neighbors(self, instance: InstanceSpecification | str) -> List[InstanceSpecification]:
        name = instance if isinstance(instance, str) else instance.name
        inst = self.get_instance(name)
        return [link.other_end(inst) for link in self.links_of(name)]

    def degree(self, instance: InstanceSpecification | str) -> int:
        name = instance if isinstance(instance, str) else instance.name
        if name not in self._adjacency:
            raise ModelError(f"object model has no instance {name!r}")
        return len(self._adjacency[name])

    def __len__(self) -> int:
        return len(self._instances)

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def __iter__(self) -> Iterator[InstanceSpecification]:
        return iter(self._instances.values())

    # -- whole-model operations ----------------------------------------------

    def instances_of(self, classifier: Class | str) -> List[InstanceSpecification]:
        """All instances whose classifier is (a subclass of) *classifier*."""
        if isinstance(classifier, str):
            classifier = self.class_model.get_class(classifier)
        return [
            inst
            for inst in self._instances.values()
            if inst.classifier.conforms_to(classifier)
        ]

    def subgraph(self, instance_names: Iterable[str], name: str = "subgraph") -> "ObjectModel":
        """The induced sub-model on *instance_names*.

        Instances are shared (not copied) so the subgraph preserves the
        original signatures and class properties — exactly the "filter on
        the complete topology" of methodology Step 8.  Links are included iff
        both ends are retained; "multiple occurrences are ignored" because
        the name set is deduplicated.
        """
        keep: Set[str] = set(instance_names)
        unknown = keep - set(self._instances)
        if unknown:
            raise ModelError(f"unknown instances in subgraph request: {sorted(unknown)}")
        sub = ObjectModel(name, self.class_model)
        for inst_name in self._instances:  # preserve original insertion order
            if inst_name in keep:
                sub.add_existing_instance(self._instances[inst_name])
        for link in self._links.values():
            if link.end1.name in keep and link.end2.name in keep:
                sub.add_link(link.end1, link.end2, link.association, name=link.name)
        return sub

    def connected_components(self) -> List[Set[str]]:
        """Connected components of the link graph, as sets of instance names."""
        seen: Set[str] = set()
        components: List[Set[str]] = []
        for start in self._instances:
            if start in seen:
                continue
            component: Set[str] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                for link_name in self._adjacency[node]:
                    link = self._links[link_name]
                    other = link.end2.name if link.end1.name == node else link.end1.name
                    if other not in component:
                        stack.append(other)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if not self._instances:
            return True
        return len(self.connected_components()) == 1
