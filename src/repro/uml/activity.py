"""UML activity diagrams for service descriptions.

The paper models composite services as UML activity diagrams whose actions
are atomic services (Section V-A2, Figures 2 and 10): "A composite service
consists of initial and final nodes, atomic services and join and fork
figures."  Decision nodes are deliberately excluded — "separate decision
branches are modeled as separate services" — so every action in the
diagram executes, either in series or in parallel.  That restriction makes
well-formed activities *series-parallel*, which this module exploits to
decompose an activity into a structure tree (:class:`SPNode`) used by the
dependability analysis (a series of atomic services multiplies
availabilities; parallel branches all execute and are likewise required).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ServiceError
from repro.uml.metamodel import NamedElement

__all__ = [
    "ActivityNode",
    "InitialNode",
    "FinalNode",
    "Action",
    "ForkNode",
    "JoinNode",
    "ControlFlow",
    "Activity",
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
]


class ActivityNode(NamedElement):
    """Base class for nodes in an activity diagram."""

    _id_prefix = "anode"
    kind = "node"


class InitialNode(ActivityNode):
    """The unique starting point of an activity."""

    _id_prefix = "initial"
    kind = "initial"

    def __init__(self, name: str = "initial", **kwargs):
        super().__init__(name, **kwargs)


class FinalNode(ActivityNode):
    """An activity final node."""

    _id_prefix = "final"
    kind = "final"

    def __init__(self, name: str = "final", **kwargs):
        super().__init__(name, **kwargs)


class Action(ActivityNode):
    """An action node referencing an atomic service by name.

    At modeling time the atomic service is "still considered an abstract
    functionality" (Section V-A2); the binding to concrete ICT components
    happens later through the service mapping.
    """

    _id_prefix = "action"
    kind = "action"

    def __init__(self, atomic_service_name: str, *, name: Optional[str] = None, **kwargs):
        super().__init__(name if name is not None else atomic_service_name, **kwargs)
        self.atomic_service_name = atomic_service_name


class ForkNode(ActivityNode):
    """A fork: splits the control flow into parallel branches."""

    _id_prefix = "fork"
    kind = "fork"

    def __init__(self, name: str = "fork", **kwargs):
        super().__init__(name, **kwargs)


class JoinNode(ActivityNode):
    """A join: synchronizes parallel branches back into one flow."""

    _id_prefix = "join"
    kind = "join"

    def __init__(self, name: str = "join", **kwargs):
        super().__init__(name, **kwargs)


class ControlFlow:
    """A directed edge between two activity nodes."""

    def __init__(self, source: ActivityNode, target: ActivityNode):
        self.source = source
        self.target = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ControlFlow {self.source.name} -> {self.target.name}>"


# ---------------------------------------------------------------------------
# series-parallel structure tree


class SPNode:
    """Base of the series-parallel structure tree of an activity."""

    def atomic_service_names(self) -> List[str]:
        """All atomic service names in this subtree, in traversal order."""
        raise NotImplementedError

    def to_expression(self) -> str:
        """Human-readable structural expression, e.g. ``a ; (b | c) ; d``."""
        raise NotImplementedError


class SPLeaf(SPNode):
    """A single action (atomic service execution)."""

    def __init__(self, atomic_service_name: str):
        self.atomic_service_name = atomic_service_name

    def atomic_service_names(self) -> List[str]:
        return [self.atomic_service_name]

    def to_expression(self) -> str:
        return self.atomic_service_name

    def __eq__(self, other):
        return (
            isinstance(other, SPLeaf)
            and other.atomic_service_name == self.atomic_service_name
        )

    def __hash__(self):
        return hash(("leaf", self.atomic_service_name))


class SPSeries(SPNode):
    """Sequential composition: children execute one after another."""

    def __init__(self, children: Sequence[SPNode]):
        self.children = list(children)

    def atomic_service_names(self) -> List[str]:
        names: List[str] = []
        for child in self.children:
            names.extend(child.atomic_service_names())
        return names

    def to_expression(self) -> str:
        return " ; ".join(
            f"({c.to_expression()})" if isinstance(c, SPSeries) else c.to_expression()
            for c in self.children
        )

    def __eq__(self, other):
        return isinstance(other, SPSeries) and other.children == self.children

    def __hash__(self):
        return hash(("series", tuple(self.children)))


class SPParallel(SPNode):
    """Parallel composition: all children execute concurrently.

    All branches are *required* (no alternative/redundant branches at the
    service level — decision branches are separate services), so for
    availability purposes a parallel block behaves like a logical AND, the
    same as a series block, while for latency it behaves like a max.
    """

    def __init__(self, children: Sequence[SPNode]):
        self.children = list(children)

    def atomic_service_names(self) -> List[str]:
        names: List[str] = []
        for child in self.children:
            names.extend(child.atomic_service_names())
        return names

    def to_expression(self) -> str:
        return "(" + " | ".join(c.to_expression() for c in self.children) + ")"

    def __eq__(self, other):
        return isinstance(other, SPParallel) and other.children == self.children

    def __hash__(self):
        return hash(("parallel", tuple(self.children)))


# ---------------------------------------------------------------------------
# the activity itself


class Activity(NamedElement):
    """An activity diagram describing a composite service.

    Build one either node-by-node (``add_node`` / ``add_flow``) or with the
    convenience constructors :meth:`sequence` and the fork/join helper
    :meth:`parallel_block`.

    Well-formedness (checked by :meth:`validate`):

    * exactly one initial node, at least one final node;
    * at least one action ("a composite service is composed of and only of
      two or more atomic services" — :meth:`validate` warns below two; the
      strict check lives in :class:`repro.services.CompositeService`);
    * every node is reachable from the initial node and reaches a final
    * node;
    * forks and joins are properly nested (the diagram is series-parallel);
    * actions have exactly one incoming and one outgoing flow; forks have
      one incoming and two or more outgoing; joins mirror forks.
    """

    _id_prefix = "activity"

    def __init__(self, name: str, **kwargs):
        super().__init__(name, **kwargs)
        self._nodes: List[ActivityNode] = []
        self._flows: List[ControlFlow] = []
        self._out: Dict[str, List[ActivityNode]] = {}
        self._in: Dict[str, List[ActivityNode]] = {}

    # -- construction ---------------------------------------------------------

    def add_node(self, node: ActivityNode) -> ActivityNode:
        if any(existing.xmi_id == node.xmi_id for existing in self._nodes):
            raise ServiceError(f"node {node.name!r} already in activity {self.name!r}")
        node.owner = self
        self._nodes.append(node)
        self._out[node.xmi_id] = []
        self._in[node.xmi_id] = []
        return node

    def add_flow(self, source: ActivityNode, target: ActivityNode) -> ControlFlow:
        for node in (source, target):
            if node.xmi_id not in self._out:
                raise ServiceError(
                    f"node {node.name!r} not in activity {self.name!r}; add it first"
                )
        if any(t.xmi_id == target.xmi_id for t in self._out[source.xmi_id]):
            raise ServiceError(
                f"duplicate flow {source.name!r} -> {target.name!r} in "
                f"activity {self.name!r}"
            )
        flow = ControlFlow(source, target)
        self._flows.append(flow)
        self._out[source.xmi_id].append(target)
        self._in[target.xmi_id].append(source)
        return flow

    @classmethod
    def sequence(cls, name: str, atomic_service_names: Sequence[str]) -> "Activity":
        """A purely sequential activity over the given atomic services.

        This is the shape of the printing service (Figure 10).
        """
        if not atomic_service_names:
            raise ServiceError("sequence requires at least one atomic service")
        activity = cls(name)
        initial = activity.add_node(InitialNode())
        previous: ActivityNode = initial
        for service_name in atomic_service_names:
            action = activity.add_node(Action(service_name))
            activity.add_flow(previous, action)
            previous = action
        final = activity.add_node(FinalNode())
        activity.add_flow(previous, final)
        return activity

    @classmethod
    def from_structure(cls, name: str, structure: SPNode) -> "Activity":
        """Build an activity realizing a series-parallel structure tree.

        Parallel nodes become fork/join pairs; this is how Figure 2's
        generic composite service (one action, then two parallel actions,
        then a final action) is constructed programmatically.
        """
        activity = cls(name)
        initial = activity.add_node(InitialNode())
        last = activity._emit_structure(structure, initial)
        final = activity.add_node(FinalNode())
        activity.add_flow(last, final)
        return activity

    def _emit_structure(self, structure: SPNode, upstream: ActivityNode) -> ActivityNode:
        """Emit nodes/flows for *structure* after *upstream*; return the last
        node of the emitted fragment."""
        if isinstance(structure, SPLeaf):
            action = self.add_node(Action(structure.atomic_service_name))
            self.add_flow(upstream, action)
            return action
        if isinstance(structure, SPSeries):
            current = upstream
            for child in structure.children:
                current = self._emit_structure(child, current)
            return current
        if isinstance(structure, SPParallel):
            fork = self.add_node(ForkNode())
            self.add_flow(upstream, fork)
            join = self.add_node(JoinNode())
            for child in structure.children:
                branch_last = self._emit_structure(child, fork)
                self.add_flow(branch_last, join)
            return join
        raise ServiceError(f"unknown structure node type {type(structure).__name__}")

    # -- access ----------------------------------------------------------------

    @property
    def nodes(self) -> List[ActivityNode]:
        return list(self._nodes)

    @property
    def flows(self) -> List[ControlFlow]:
        return list(self._flows)

    @property
    def actions(self) -> List[Action]:
        return [node for node in self._nodes if isinstance(node, Action)]

    def atomic_service_names(self) -> List[str]:
        """Atomic services referenced by the activity, in topological order
        when valid, otherwise in insertion order."""
        try:
            order = self.topological_order()
        except ServiceError:
            return [a.atomic_service_name for a in self.actions]
        return [n.atomic_service_name for n in order if isinstance(n, Action)]

    def initial_node(self) -> InitialNode:
        initials = [n for n in self._nodes if isinstance(n, InitialNode)]
        if len(initials) != 1:
            raise ServiceError(
                f"activity {self.name!r} has {len(initials)} initial nodes; "
                f"expected exactly 1"
            )
        return initials[0]

    def final_nodes(self) -> List[FinalNode]:
        return [n for n in self._nodes if isinstance(n, FinalNode)]

    def successors(self, node: ActivityNode) -> List[ActivityNode]:
        return list(self._out[node.xmi_id])

    def predecessors(self, node: ActivityNode) -> List[ActivityNode]:
        return list(self._in[node.xmi_id])

    # -- validation --------------------------------------------------------------

    def topological_order(self) -> List[ActivityNode]:
        """Kahn topological order; raises :class:`ServiceError` on cycles."""
        in_degree = {n.xmi_id: len(self._in[n.xmi_id]) for n in self._nodes}
        queue = [n for n in self._nodes if in_degree[n.xmi_id] == 0]
        order: List[ActivityNode] = []
        while queue:
            node = queue.pop(0)
            order.append(node)
            for succ in self._out[node.xmi_id]:
                in_degree[succ.xmi_id] -= 1
                if in_degree[succ.xmi_id] == 0:
                    queue.append(succ)
        if len(order) != len(self._nodes):
            raise ServiceError(f"activity {self.name!r} contains a cycle")
        return order

    def validate(self) -> List[str]:
        """Return a list of well-formedness problems (empty when valid)."""
        problems: List[str] = []
        initials = [n for n in self._nodes if isinstance(n, InitialNode)]
        if len(initials) != 1:
            problems.append(f"expected exactly 1 initial node, found {len(initials)}")
        finals = self.final_nodes()
        if not finals:
            problems.append("no final node")
        if not self.actions:
            problems.append("no actions (atomic services)")
        try:
            self.topological_order()
        except ServiceError:
            problems.append("control flow contains a cycle")
            return problems  # reachability below assumes a DAG

        # node arity rules
        for node in self._nodes:
            n_in = len(self._in[node.xmi_id])
            n_out = len(self._out[node.xmi_id])
            if isinstance(node, InitialNode):
                if n_in != 0 or n_out != 1:
                    problems.append(
                        f"initial node must have 0 in / 1 out, has {n_in}/{n_out}"
                    )
            elif isinstance(node, FinalNode):
                if n_in != 1 or n_out != 0:
                    problems.append(
                        f"final node {node.name!r} must have 1 in / 0 out, "
                        f"has {n_in}/{n_out}"
                    )
            elif isinstance(node, Action):
                if n_in != 1 or n_out != 1:
                    problems.append(
                        f"action {node.name!r} must have 1 in / 1 out, "
                        f"has {n_in}/{n_out}"
                    )
            elif isinstance(node, ForkNode):
                if n_in != 1 or n_out < 2:
                    problems.append(
                        f"fork {node.name!r} must have 1 in / >=2 out, "
                        f"has {n_in}/{n_out}"
                    )
            elif isinstance(node, JoinNode):
                if n_in < 2 or n_out != 1:
                    problems.append(
                        f"join {node.name!r} must have >=2 in / 1 out, "
                        f"has {n_in}/{n_out}"
                    )

        # reachability
        if len(initials) == 1:
            reachable = self._reachable_from(initials[0])
            for node in self._nodes:
                if node.xmi_id not in reachable:
                    problems.append(f"node {node.name!r} unreachable from initial")
        if finals:
            reaching = self._reaching_finals(finals)
            for node in self._nodes:
                if node.xmi_id not in reaching:
                    problems.append(f"node {node.name!r} cannot reach a final node")

        # series-parallel nesting
        if not problems:
            try:
                self.to_structure()
            except ServiceError as exc:
                problems.append(f"not series-parallel: {exc}")
        return problems

    def is_valid(self) -> bool:
        return not self.validate()

    def _reachable_from(self, start: ActivityNode) -> Set[str]:
        seen: Set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node.xmi_id in seen:
                continue
            seen.add(node.xmi_id)
            stack.extend(self._out[node.xmi_id])
        return seen

    def _reaching_finals(self, finals: Iterable[FinalNode]) -> Set[str]:
        seen: Set[str] = set()
        stack = list(finals)
        while stack:
            node = stack.pop()
            if node.xmi_id in seen:
                continue
            seen.add(node.xmi_id)
            stack.extend(self._in[node.xmi_id])
        return seen

    # -- structural decomposition --------------------------------------------

    def to_structure(self) -> SPNode:
        """Decompose the activity into its series-parallel structure tree.

        Requires a structurally valid diagram (single initial, fork/join
        properly nested).  Raises :class:`ServiceError` otherwise.
        """
        initial = self.initial_node()
        finals = self.final_nodes()
        if len(finals) != 1:
            raise ServiceError(
                f"structure decomposition requires exactly 1 final node, "
                f"found {len(finals)}"
            )
        node, structure = self._parse_segment(self._single_successor(initial))
        if not isinstance(node, FinalNode):
            raise ServiceError(
                f"activity {self.name!r}: flow does not terminate at the final node"
            )
        return structure

    def _single_successor(self, node: ActivityNode) -> ActivityNode:
        succs = self._out[node.xmi_id]
        if len(succs) != 1:
            raise ServiceError(
                f"node {node.name!r} has {len(succs)} successors; expected 1"
            )
        return succs[0]

    def _parse_segment(self, node: ActivityNode) -> Tuple[ActivityNode, SPNode]:
        """Parse a maximal series segment starting at *node*.

        Returns the node *after* the segment (a join or final node) and the
        structure tree of the segment.
        """
        parts: List[SPNode] = []
        current = node
        while True:
            if isinstance(current, Action):
                parts.append(SPLeaf(current.atomic_service_name))
                current = self._single_successor(current)
            elif isinstance(current, ForkNode):
                branches: List[SPNode] = []
                join: Optional[JoinNode] = None
                for branch_start in self._out[current.xmi_id]:
                    stop, branch_structure = self._parse_segment(branch_start)
                    if not isinstance(stop, JoinNode):
                        raise ServiceError(
                            f"fork {current.name!r}: branch does not end at a join"
                        )
                    if join is None:
                        join = stop
                    elif join.xmi_id != stop.xmi_id:
                        raise ServiceError(
                            f"fork {current.name!r}: branches end at different joins"
                        )
                    branches.append(branch_structure)
                assert join is not None
                parts.append(SPParallel(branches))
                current = self._single_successor(join)
            elif isinstance(current, (JoinNode, FinalNode)):
                break
            elif isinstance(current, InitialNode):
                raise ServiceError("initial node encountered mid-flow")
            else:  # pragma: no cover - defensive
                raise ServiceError(f"unknown node kind {current.kind!r}")
        if not parts:
            raise ServiceError("empty segment (flow with no actions)")
        structure = parts[0] if len(parts) == 1 else SPSeries(parts)
        return current, structure

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ActivityNode]:
        return iter(self._nodes)
