"""Reliability block diagrams (RBDs).

Section VII: availability "analysis can be performed by transforming the
UPSIM to a reliability block diagram (RBD) or fault-tree (FT), in which
entities correspond to components of the UPSIM".  This module implements
the RBD formalism the companion paper [20] uses:

* :class:`Block` — a leaf with a component availability;
* :class:`Series` — all children must be available (``∏ A_i``);
* :class:`Parallel` — at least one child available (``1 - ∏ (1-A_i)``);
* :class:`KofN` — at least *k* of the *n* children available.

Evaluation assumes independent components.  **Repeated blocks** (the same
component appearing in several branches, which happens whenever redundant
network paths share a node) make naive structural evaluation wrong; for
that case :meth:`RBDNode.availability` offers ``method="factoring"``,
which conditions on shared components (exact, exponential only in the
number of *repeated* components), while ``method="structural"`` evaluates
the plain formula (exact when each component appears once).

The structure can be simplified (:func:`simplify`) by flattening nested
series/series and parallel/parallel nests and collapsing single-child
composites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.errors import AnalysisError

__all__ = ["RBDNode", "Block", "Series", "Parallel", "KofN", "simplify"]


class RBDNode:
    """Base class of RBD structure nodes."""

    def component_names(self) -> List[str]:
        """All leaf component names, duplicates preserved, left-to-right."""
        raise NotImplementedError

    def _evaluate(self, availabilities: Dict[str, float]) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        """Structural expression like ``(a • b) ‖ (a • c)``."""
        raise NotImplementedError

    # -- evaluation -------------------------------------------------------------

    def availability(
        self,
        availabilities: Optional[Dict[str, float]] = None,
        *,
        method: str = "auto",
    ) -> float:
        """System availability.

        Parameters
        ----------
        availabilities:
            Overrides/values per component name; leaves may also carry an
            intrinsic availability (see :class:`Block`).
        method:
            ``"structural"`` — plain series/parallel formula (exact only
            without repeated components); ``"factoring"`` — exact via
            conditioning on repeated components; ``"auto"`` (default) —
            structural when no component repeats, factoring otherwise.
        """
        table = self._availability_table(availabilities)
        if method not in ("auto", "structural", "factoring"):
            raise AnalysisError(f"unknown RBD evaluation method {method!r}")
        names = self.component_names()
        repeated = sorted({n for n in names if names.count(n) > 1})
        if method == "structural" or (method == "auto" and not repeated):
            return self._evaluate(table)
        if method == "auto":
            method = "factoring"
        return self._factor(table, repeated)

    def _availability_table(
        self, availabilities: Optional[Dict[str, float]]
    ) -> Dict[str, float]:
        table: Dict[str, float] = {}
        for leaf in self.leaves():
            if leaf.value is not None:
                table[leaf.name] = leaf.value
        if availabilities:
            table.update(availabilities)
        missing = [n for n in set(self.component_names()) if n not in table]
        if missing:
            raise AnalysisError(
                f"no availability for RBD components {sorted(missing)}"
            )
        for name, value in table.items():
            if not 0.0 <= value <= 1.0:
                raise AnalysisError(
                    f"availability of {name!r} must be in [0, 1], got {value}"
                )
        return table

    def _factor(self, table: Dict[str, float], repeated: Sequence[str]) -> float:
        """Exact evaluation by conditioning on each repeated component."""
        if not repeated:
            return self._evaluate(table)
        name = repeated[0]
        rest = repeated[1:]
        up = dict(table)
        up[name] = 1.0
        down = dict(table)
        down[name] = 0.0
        p = table[name]
        return p * self._factor(up, rest) + (1.0 - p) * self._factor(down, rest)

    # -- traversal ----------------------------------------------------------------

    def leaves(self) -> Iterator["Block"]:
        raise NotImplementedError

    def depth(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Block(RBDNode):
    """A leaf block: one component, optionally with intrinsic availability."""

    name: str
    value: Optional[float] = None

    def component_names(self) -> List[str]:
        return [self.name]

    def _evaluate(self, availabilities: Dict[str, float]) -> float:
        return availabilities[self.name]

    def describe(self) -> str:
        return self.name

    def leaves(self) -> Iterator["Block"]:
        yield self

    def depth(self) -> int:
        return 1


class _Composite(RBDNode):
    symbol = "?"

    def __init__(self, children: Sequence[RBDNode | str]):
        if not children:
            raise AnalysisError(f"{type(self).__name__} requires at least one child")
        self.children: List[RBDNode] = [
            Block(child) if isinstance(child, str) else child for child in children
        ]

    def component_names(self) -> List[str]:
        names: List[str] = []
        for child in self.children:
            names.extend(child.component_names())
        return names

    def leaves(self) -> Iterator[Block]:
        for child in self.children:
            yield from child.leaves()

    def depth(self) -> int:
        return 1 + max(child.depth() for child in self.children)

    def describe(self) -> str:
        inner = f" {self.symbol} ".join(
            child.describe() if isinstance(child, Block) else f"({child.describe()})"
            for child in self.children
        )
        return inner


class Series(_Composite):
    """Series structure: available iff every child is available."""

    symbol = "•"

    def _evaluate(self, availabilities: Dict[str, float]) -> float:
        result = 1.0
        for child in self.children:
            result *= child._evaluate(availabilities)
        return result


class Parallel(_Composite):
    """Parallel (redundant) structure: available iff any child is."""

    symbol = "‖"

    def _evaluate(self, availabilities: Dict[str, float]) -> float:
        result = 1.0
        for child in self.children:
            result *= 1.0 - child._evaluate(availabilities)
        return 1.0 - result


class KofN(_Composite):
    """k-out-of-n structure over identically-structured children.

    Available iff at least *k* of the *n* children are available.
    Evaluated exactly by dynamic programming over the children's
    availabilities (children need not be identical).
    """

    symbol = "/"

    def __init__(self, k: int, children: Sequence[RBDNode | str]):
        super().__init__(children)
        if not 1 <= k <= len(self.children):
            raise AnalysisError(
                f"KofN requires 1 <= k <= n, got k={k}, n={len(self.children)}"
            )
        self.k = k

    def describe(self) -> str:
        return f"{self.k}-of-{len(self.children)}[" + ", ".join(
            child.describe() for child in self.children
        ) + "]"

    def _evaluate(self, availabilities: Dict[str, float]) -> float:
        # probability distribution of the number of available children
        dist = [1.0]
        for child in self.children:
            p = child._evaluate(availabilities)
            new = [0.0] * (len(dist) + 1)
            for count, prob in enumerate(dist):
                new[count] += prob * (1.0 - p)
                new[count + 1] += prob * p
            dist = new
        return sum(dist[self.k :])


def simplify(node: RBDNode) -> RBDNode:
    """Flatten nested same-type composites and collapse singleton nests.

    ``Series(Series(a, b), c)`` → ``Series(a, b, c)``;
    ``Parallel(x)`` → ``x``.  :class:`KofN` children are simplified
    recursively but the KofN node itself is preserved.
    """
    if isinstance(node, Block):
        return node
    if isinstance(node, KofN):
        return KofN(node.k, [simplify(child) for child in node.children])
    assert isinstance(node, (Series, Parallel))
    flattened: List[RBDNode] = []
    for child in node.children:
        reduced = simplify(child)
        if type(reduced) is type(node):
            flattened.extend(reduced.children)  # type: ignore[attr-defined]
        else:
            flattened.append(reduced)
    if len(flattened) == 1:
        return flattened[0]
    return type(node)(flattened)
