"""Monte-Carlo estimation of user-perceived availability.

An independent cross-check for the analytic RBD / fault-tree / inclusion–
exclusion results (Section VII names several analysis routes; agreement
between independent implementations is the reproduction's correctness
argument).  Two estimators are provided:

* :class:`TwoTerminalMC` — steady-state sampling: component up/down states
  are drawn i.i.d. from their steady-state availabilities (vectorized with
  numpy, whole batch at once per the hpc guide's "vectorize the inner
  loop" idiom), the system is up when all components of at least one path
  are up.  Gives mean + confidence interval.
* :func:`simulate_alternating_renewal` — time-dynamic failure injection:
  every component alternates exponential up-times (mean MTBF) and
  exponential repair times (mean MTTR); the system trace is swept over all
  transition events.  Converges to the same steady-state value, and also
  yields the number of service-affecting outages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AnalysisError

__all__ = [
    "MCEstimate",
    "TwoTerminalMC",
    "RenewalResult",
    "simulate_alternating_renewal",
    "SeedLike",
]

#: Accepted everywhere a seed is taken: an integer seed or an already
#: constructed :class:`numpy.random.Generator` (for callers interleaving
#: several estimators on one stream).
SeedLike = Union[int, np.random.Generator]


def _as_generator(seed: SeedLike) -> np.random.Generator:
    """A Generator from an int seed, or the Generator itself, unchanged —
    so every entry point accepts both uniformly."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (bool, float)) or not isinstance(seed, (int, np.integer)):
        raise AnalysisError(
            f"seed must be an int or numpy.random.Generator, "
            f"got {type(seed).__name__}"
        )
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class MCEstimate:
    """A Monte-Carlo estimate with its sampling uncertainty."""

    mean: float
    stderr: float
    samples: int

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI, clipped to [0, 1]."""
        return (
            max(0.0, self.mean - z * self.stderr),
            min(1.0, self.mean + z * self.stderr),
        )

    def contains(self, value: float, z: float = 3.0) -> bool:
        """Whether *value* lies within *z* standard errors of the mean."""
        low, high = self.confidence_interval(z)
        return low <= value <= high


class TwoTerminalMC:
    """Steady-state availability sampler over path sets.

    Parameters
    ----------
    path_sets:
        The minimal path sets (component-name sets) of the pair.
    availabilities:
        Steady-state availability per component name.
    """

    def __init__(
        self,
        path_sets: Sequence[FrozenSet[str]],
        availabilities: Dict[str, float],
    ):
        if not path_sets:
            raise AnalysisError("Monte Carlo needs at least one path set")
        self.path_sets = [frozenset(p) for p in path_sets]
        self.components: List[str] = sorted(
            {component for path in self.path_sets for component in path}
        )
        index = {name: i for i, name in enumerate(self.components)}
        self._path_indices: List[np.ndarray] = []
        for path in self.path_sets:
            missing = [c for c in path if c not in availabilities]
            if missing:
                raise AnalysisError(
                    f"no availability for components {sorted(missing)}"
                )
            self._path_indices.append(
                np.array(sorted(index[c] for c in path), dtype=np.intp)
            )
        self._availability = np.array(
            [availabilities[name] for name in self.components], dtype=np.float64
        )
        if np.any(self._availability < 0.0) or np.any(self._availability > 1.0):
            raise AnalysisError("availabilities must lie in [0, 1]")

    def sample_system_up(
        self, samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Boolean vector: system up per sample (vectorized)."""
        if samples <= 0:
            raise AnalysisError(f"samples must be > 0, got {samples}")
        states = rng.random((samples, len(self.components))) < self._availability
        up = np.zeros(samples, dtype=bool)
        for indices in self._path_indices:
            up |= states[:, indices].all(axis=1)
        return up

    def estimate(
        self,
        samples: int = 100_000,
        *,
        seed: SeedLike = 0,
        batch: int = 262_144,
    ) -> MCEstimate:
        """Estimate system availability from *samples* draws.

        Sampling runs in batches to bound peak memory (samples × components
        booleans per batch).  *seed* accepts an int or a
        :class:`numpy.random.Generator`; equal int seeds give identical
        estimates.
        """
        if samples <= 0:
            raise AnalysisError(f"samples must be > 0, got {samples}")
        rng = _as_generator(seed)
        remaining = samples
        up_count = 0
        while remaining > 0:
            current = min(remaining, batch)
            up_count += int(self.sample_system_up(current, rng).sum())
            remaining -= current
        mean = up_count / samples
        stderr = float(np.sqrt(max(mean * (1.0 - mean), 1e-12) / samples))
        return MCEstimate(mean, stderr, samples)

    def estimate_with_forced_state(
        self,
        component: str,
        up: bool,
        samples: int = 100_000,
        *,
        seed: SeedLike = 0,
    ) -> MCEstimate:
        """Failure-injection estimate with one component pinned up/down.

        Pinning down estimates the conditional availability used by the
        Birnbaum importance measure; pinning up gives the other branch.
        """
        if component not in self.components:
            raise AnalysisError(f"unknown component {component!r}")
        forced = dict(zip(self.components, self._availability.tolist()))
        forced[component] = 1.0 if up else 0.0
        clone = TwoTerminalMC(self.path_sets, forced)
        return clone.estimate(samples, seed=seed)


@dataclass
class RenewalResult:
    """Outcome of one alternating-renewal simulation run."""

    availability: float
    outages: int
    horizon_hours: float
    total_downtime_hours: float


def simulate_alternating_renewal(
    path_sets: Sequence[FrozenSet[str]],
    mtbf: Dict[str, float],
    mttr: Dict[str, float],
    *,
    horizon_hours: float = 1_000_000.0,
    seed: SeedLike = 0,
) -> RenewalResult:
    """Time-dynamic simulation of component failures and repairs.

    Every component alternates ``Exp(MTBF)`` up-times and ``Exp(MTTR)``
    down-times (starting up).  The system trace — up iff some path has all
    components up — is swept over the union of all transition instants.

    Per-component event streams are generated with vectorized numpy
    exponential draws (over-provisioned in chunks until the horizon is
    covered), then merged in one global sort.
    """
    components = sorted({c for path in path_sets for c in path})
    if not components:
        raise AnalysisError("renewal simulation needs at least one component")
    for name in components:
        if name not in mtbf or name not in mttr:
            raise AnalysisError(f"no MTBF/MTTR for component {name!r}")
        if mtbf[name] <= 0 or mttr[name] < 0:
            raise AnalysisError(f"invalid MTBF/MTTR for component {name!r}")

    rng = _as_generator(seed)
    # transition times per component: strictly increasing; state flips at
    # each instant, starting from "up"
    events: List[Tuple[float, int]] = []  # (time, component index)
    for idx, name in enumerate(components):
        t = 0.0
        up = True
        times: List[float] = []
        # draw durations in chunks for speed
        while t < horizon_hours:
            chunk_up = rng.exponential(mtbf[name], size=64)
            chunk_down = rng.exponential(max(mttr[name], 1e-12), size=64)
            for up_duration, down_duration in zip(chunk_up, chunk_down):
                t += up_duration
                if t >= horizon_hours:
                    break
                times.append(t)  # failure instant
                t += down_duration
                if t >= horizon_hours:
                    break
                times.append(t)  # repair instant
        events.extend((time, idx) for time in times)

    events.sort()
    state = np.ones(len(components), dtype=bool)
    path_indices = [
        np.array(sorted(components.index(c) for c in path), dtype=np.intp)
        for path in path_sets
    ]

    def system_up() -> bool:
        return any(bool(state[indices].all()) for indices in path_indices)

    up_now = system_up()
    last_time = 0.0
    downtime = 0.0
    outages = 0
    for time_point, component_index in events:
        if not up_now:
            downtime += time_point - last_time
        state[component_index] = not state[component_index]
        new_up = system_up()
        if up_now and not new_up:
            outages += 1
        up_now = new_up
        last_time = time_point
    if not up_now:
        downtime += horizon_hours - last_time
    availability = 1.0 - downtime / horizon_hours
    return RenewalResult(availability, outages, horizon_hours, downtime)
