"""Minimal path sets, minimal cut sets, and exact two-terminal availability.

The discovered paths of Step 7 are exactly the *path sets* of the
requester→provider connectivity structure: the pair can communicate iff
all components of at least one path are up.  This module turns path sets
into the classic reliability-theory artifacts:

* :func:`minimize_sets` — drop non-minimal (superset) path sets;
* :func:`minimal_cut_sets` — the dual: minimal component sets whose joint
  failure disconnects every path (computed as minimal hitting sets);
* :func:`inclusion_exclusion` — exact system availability over path sets
  (handles shared components correctly, unlike a naive
  parallel-of-series RBD);
* :func:`esary_proschan_bounds` — cheap lower/upper bounds that bracket
  the exact value;
* :func:`path_components` — expand node paths into full component lists
  including the traversed links, so link failures participate in the
  analysis exactly as device failures do (both carry the «Component»
  stereotype, Figure 8).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.pathdiscovery import PathSet
from repro.errors import AnalysisError

__all__ = [
    "link_component_name",
    "path_components",
    "minimize_sets",
    "minimal_cut_sets",
    "inclusion_exclusion",
    "esary_proschan_bounds",
]

#: Above this many path sets, exact inclusion–exclusion (2^n terms) is
#: refused; callers should fall back to bounds or Monte Carlo.
MAX_INCLUSION_EXCLUSION_SETS = 22


def link_component_name(a: str, b: str) -> str:
    """Canonical component name for the link between nodes *a* and *b*."""
    return f"{a}|{b}" if a <= b else f"{b}|{a}"


def path_components(
    path: Sequence[str], *, include_links: bool = True
) -> FrozenSet[str]:
    """All components a path depends on: its nodes and (optionally) links."""
    components: Set[str] = set(path)
    if include_links:
        for a, b in zip(path, path[1:]):
            components.add(link_component_name(a, b))
    return frozenset(components)


def minimize_sets(sets: Iterable[FrozenSet[str]]) -> List[FrozenSet[str]]:
    """Remove duplicates and non-minimal (superset) sets.

    A path whose component set contains another path's components adds no
    reliability information — its success implies the other's.

    Candidates are processed smallest first, so a kept set can never be a
    strict superset of a later candidate — only "is the candidate a
    superset of some kept set?" needs answering.  Every kept set is
    registered in an element→sets index under one of its elements (the
    one with the shortest posting list, to keep the index balanced); a
    kept subset of the candidate necessarily has its registered element
    inside the candidate, so only the candidate's own posting lists are
    scanned instead of the whole family — the family-wide quadratic scan
    this replaces dominated MOCUS expansion profiles.
    """
    unique = sorted(set(sets), key=lambda s: (len(s), sorted(s)))
    if unique and not unique[0]:
        # the empty set dominates every other set
        return [unique[0]]
    minimal: List[FrozenSet[str]] = []
    by_element: Dict[str, List[FrozenSet[str]]] = {}
    for candidate in unique:
        dominated = False
        for element in candidate:
            if any(kept <= candidate for kept in by_element.get(element, ())):
                dominated = True
                break
        if dominated:
            continue
        minimal.append(candidate)
        anchor = min(
            candidate, key=lambda element: len(by_element.get(element, ()))
        )
        by_element.setdefault(anchor, []).append(candidate)
    return minimal


def minimal_cut_sets(
    path_sets: Iterable[FrozenSet[str]],
    *,
    max_cut_order: int | None = None,
) -> List[FrozenSet[str]]:
    """Minimal cut sets: minimal hitting sets of the path sets.

    Uses incremental cross-product expansion with on-the-fly minimization
    (the classic MOCUS-style procedure).  ``max_cut_order`` truncates cuts
    larger than the given order — a standard approximation for large
    systems; the result is then the set of minimal cuts *up to* that
    order.
    """
    paths = minimize_sets(path_sets)
    if not paths:
        return []
    cuts: List[FrozenSet[str]] = [frozenset()]
    for path in paths:
        expanded: List[FrozenSet[str]] = []
        for cut in cuts:
            if cut & path:
                # this cut already hits the new path
                expanded.append(cut)
                continue
            for component in sorted(path):
                candidate = cut | {component}
                if max_cut_order is not None and len(candidate) > max_cut_order:
                    continue
                expanded.append(candidate)
        cuts = minimize_sets(expanded)
        if not cuts:
            return []
    return cuts


def inclusion_exclusion(
    sets: Sequence[FrozenSet[str]],
    availabilities: Dict[str, float],
) -> float:
    """Exact P(at least one path fully available), independent components.

    ``P(∪_i E_i) = Σ_k (-1)^{k+1} Σ_{|S|=k} P(∩_{i∈S} E_i)`` where
    ``P(∩ E_i) = ∏_{c ∈ ∪ paths} A_c`` — repeated components counted once,
    which is exactly what the naive parallel-of-series RBD gets wrong.
    """
    sets = list(sets)
    if not sets:
        return 0.0
    if len(sets) > MAX_INCLUSION_EXCLUSION_SETS:
        raise AnalysisError(
            f"inclusion-exclusion over {len(sets)} path sets needs "
            f"2^{len(sets)} terms; use bounds or Monte Carlo instead"
        )
    for s in sets:
        for component in s:
            if component not in availabilities:
                raise AnalysisError(
                    f"no availability for component {component!r}"
                )
    total = 0.0
    n = len(sets)
    for k in range(1, n + 1):
        sign = 1.0 if k % 2 == 1 else -1.0
        for combo in combinations(range(n), k):
            union: Set[str] = set()
            for index in combo:
                union |= sets[index]
            term = 1.0
            for component in union:
                term *= availabilities[component]
            total += sign * term
    # numerical noise can push the alternating sum slightly outside [0, 1]
    return min(1.0, max(0.0, total))


def esary_proschan_bounds(
    path_sets: Sequence[FrozenSet[str]],
    cut_sets: Sequence[FrozenSet[str]],
    availabilities: Dict[str, float],
) -> Tuple[float, float]:
    """Esary–Proschan bounds on system availability.

    Lower bound from the cut sets: ``∏_j (1 - ∏_{c∈C_j} (1-A_c))``;
    upper bound from the path sets: ``1 - ∏_i (1 - ∏_{c∈P_i} A_c)``.
    For coherent systems with independent components the exact value lies
    between the two.
    """
    if not path_sets or not cut_sets:
        raise AnalysisError("bounds require at least one path set and one cut set")
    upper = 1.0
    for path in path_sets:
        term = 1.0
        for component in path:
            term *= availabilities[component]
        upper *= 1.0 - term
    upper = 1.0 - upper
    lower = 1.0
    for cut in cut_sets:
        term = 1.0
        for component in cut:
            term *= 1.0 - availabilities[component]
        lower *= 1.0 - term
    return lower, upper
