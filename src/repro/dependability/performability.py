"""Performability: reward-weighted steady-state analysis.

Performability [6] generalizes availability: instead of the binary
up/down view, every system state earns a *reward* (capacity, throughput,
quality) and the measure is the expected steady-state reward.
Section VII names performability among the user-perceived properties the
UPSIM supports.

Two evaluators are provided:

* :func:`expected_reward` — exact enumeration over the up/down states of
  the components (2^n states; refused above a bound, where the Monte-Carlo
  estimator takes over);
* :func:`expected_reward_mc` — vectorized sampling for larger component
  sets.

Ready-made reward functions cover the common service-level views:
:func:`reward_path_capacity` (fraction of redundant paths currently
usable — degraded-core operation scores between 0 and 1) and
:func:`reward_best_throughput` (throughput of the best currently-working
path, for bandwidth-bound services).
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Dict, FrozenSet, List, Sequence

import numpy as np

from repro.errors import AnalysisError

__all__ = [
    "expected_reward",
    "expected_reward_reference",
    "expected_reward_mc",
    "reward_path_capacity",
    "reward_best_throughput",
    "reward_connectivity",
    "service_performability",
]

#: Exact enumeration bound: 2^20 states is ~1M reward evaluations.
MAX_EXACT_COMPONENTS = 20

RewardFn = Callable[[Dict[str, bool]], float]


def expected_reward(
    availabilities: Dict[str, float],
    reward: RewardFn,
) -> float:
    """Exact expected steady-state reward by state enumeration.

    ``E[R] = Σ_states P(state) · reward(state)`` with independent
    components.  Raises for more than :data:`MAX_EXACT_COMPONENTS`
    components.
    """
    names = sorted(availabilities)
    if not names:
        raise AnalysisError("expected_reward requires at least one component")
    if len(names) > MAX_EXACT_COMPONENTS:
        raise AnalysisError(
            f"exact enumeration over {len(names)} components needs "
            f"2^{len(names)} states; use expected_reward_mc"
        )
    for name in names:
        value = availabilities[name]
        if not 0.0 <= value <= 1.0:
            raise AnalysisError(
                f"availability of {name!r} must be in [0, 1], got {value}"
            )
    total = 0.0
    for states in product((True, False), repeat=len(names)):
        probability = 1.0
        for name, up in zip(names, states):
            probability *= availabilities[name] if up else 1.0 - availabilities[name]
        if probability == 0.0:
            continue
        total += probability * reward(dict(zip(names, states)))
    return total


#: The legacy exact enumerator doubles as the oracle the registry-backed
#: ``performability`` dimension is differentially tested against (PR-1
#: ``*_reference`` convention).
expected_reward_reference = expected_reward


def reward_connectivity(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
) -> RewardFn:
    """Reward = fraction of requester/provider pairs currently connected.

    The connectivity reward behind the registered ``performability``
    dimension: each of the structure's distinct pairs contributes
    ``1/n_pairs`` when at least one of its redundant paths is fully up.
    Its expectation equals the mean of the per-pair availabilities, which
    is exactly what one shared BDD pass reads off the group roots.
    """
    groups = [[frozenset(path) for path in group] for group in path_set_groups]
    if not groups:
        raise AnalysisError("reward_connectivity requires at least one group")
    for group in groups:
        if not group:
            raise AnalysisError("a pair with no path sets is never connected")

    def reward(state: Dict[str, bool]) -> float:
        connected = sum(
            1
            for group in groups
            if any(all(state[c] for c in path) for path in group)
        )
        return connected / len(groups)

    return reward


def service_performability(
    structure,
    *,
    annotations: Dict[str, Dict[str, float]] | None = None,
    include_links: bool = True,
    formula: str = "paper",
) -> float:
    """Expected fraction of connected pairs — thin registry-backed
    delegate through the ``performability`` dimension (mean of the pair
    roots in the shared BDD pass).  Equals
    ``expected_reward_reference(availabilities, reward_connectivity(groups))``
    without the 2^n enumeration.
    """
    from repro.dimensions import evaluate_dimensions

    report = evaluate_dimensions(
        structure,
        ["performability"],
        annotations=annotations,
        include_links=include_links,
        formula=formula,
    )
    return report["performability"].value


def expected_reward_mc(
    availabilities: Dict[str, float],
    reward: RewardFn,
    *,
    samples: int = 100_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo expected reward for larger component sets.

    States are sampled vectorized; the (scalar, user-provided) reward
    function is applied per sample.
    """
    names = sorted(availabilities)
    if not names:
        raise AnalysisError("expected_reward_mc requires at least one component")
    rng = np.random.default_rng(seed)
    avail = np.array([availabilities[n] for n in names])
    if np.any(avail < 0.0) or np.any(avail > 1.0):
        raise AnalysisError("availabilities must lie in [0, 1]")
    states = rng.random((samples, len(names))) < avail
    total = 0.0
    for row in states:
        total += reward(dict(zip(names, row.tolist())))
    return total / samples


def reward_path_capacity(
    path_sets: Sequence[FrozenSet[str]],
) -> RewardFn:
    """Reward = fraction of redundant paths fully available.

    1.0 when every discovered path works (full redundancy intact), 0.0
    when the pair is disconnected, intermediate values for degraded
    operation — e.g. the USI core running on one C6500.
    """
    paths = [frozenset(p) for p in path_sets]
    if not paths:
        raise AnalysisError("reward_path_capacity requires at least one path")

    def reward(state: Dict[str, bool]) -> float:
        usable = sum(1 for path in paths if all(state[c] for c in path))
        return usable / len(paths)

    return reward


def reward_best_throughput(
    paths: Sequence[Sequence[str]],
    link_throughput: Dict[FrozenSet[str], float],
) -> RewardFn:
    """Reward = throughput of the best fully-working path.

    A path's throughput is its bottleneck link throughput (the
    «Communication» stereotype's ``throughput`` attribute); the reward is
    the maximum over working paths, 0.0 when none works.
    """
    if not paths:
        raise AnalysisError("reward_best_throughput requires at least one path")
    prepared: List[tuple[FrozenSet[str], float]] = []
    for path in paths:
        links = [frozenset((a, b)) for a, b in zip(path, path[1:])]
        missing = [link for link in links if link not in link_throughput]
        if missing:
            raise AnalysisError(
                f"no throughput for links {sorted(tuple(sorted(m)) for m in missing)}"
            )
        bottleneck = min(link_throughput[link] for link in links) if links else 0.0
        prepared.append((frozenset(path), bottleneck))

    def reward(state: Dict[str, bool]) -> float:
        best = 0.0
        for components, throughput in prepared:
            if all(state[c] for c in components):
                best = max(best, throughput)
        return best

    return reward
