"""Dependability analysis substrate (Section VII and companion paper [20]).

Component availability (Formula 1), reliability block diagrams, fault
trees, minimal path/cut sets with exact inclusion–exclusion, a compiled
BDD availability kernel (:mod:`repro.dependability.bdd`), Monte-Carlo
estimation with failure injection, importance measures, responsiveness and
performability — everything needed to analyze a generated UPSIM.
"""

from repro.dependability.bdd import (
    BDD,
    AvailabilityKernel,
    compile_pair,
    compile_structure,
    frequency_order,
    kernel_cache_clear,
    kernel_cache_info,
    kernel_stats,
    order_from_topology,
    pair_availability_bdd,
    reset_kernel_stats,
    structure_fingerprint,
    system_availability_bdd,
)
from repro.dependability.availability import (
    HOURS_PER_YEAR,
    ComponentAvailability,
    downtime_minutes_per_year,
    exact_availability,
    instance_availability,
    link_availability,
    steady_state_availability,
    with_redundancy,
)
from repro.dependability.cutsets import (
    esary_proschan_bounds,
    inclusion_exclusion,
    link_component_name,
    minimal_cut_sets,
    minimize_sets,
    path_components,
)
from repro.dependability.faulttree import (
    MAX_FACTORED_REPEATS,
    AndGate,
    BasicEvent,
    FaultTreeNode,
    OrGate,
    VoteGate,
    from_rbd,
)
from repro.dependability.importance import (
    ImportanceRow,
    importance_from_birnbaum,
    importance_table,
)
from repro.dependability.markov import (
    CTMC,
    component_ctmc,
    markov_reward,
    redundancy_group_ctmc,
)
from repro.dependability.montecarlo import (
    MCEstimate,
    RenewalResult,
    SeedLike,
    TwoTerminalMC,
    simulate_alternating_renewal,
)
from repro.dependability.performability import (
    expected_reward,
    expected_reward_mc,
    reward_best_throughput,
    reward_path_capacity,
)
from repro.dependability.rbd import Block, KofN, Parallel, RBDNode, Series, simplify
from repro.dependability.responsiveness import (
    ResponsivenessResult,
    hypoexponential_cdf,
    pair_responsiveness,
    path_responsiveness,
    service_responsiveness,
    structure_completion_samples,
)

__all__ = [
    "steady_state_availability",
    "exact_availability",
    "with_redundancy",
    "instance_availability",
    "link_availability",
    "downtime_minutes_per_year",
    "ComponentAvailability",
    "HOURS_PER_YEAR",
    "RBDNode",
    "Block",
    "Series",
    "Parallel",
    "KofN",
    "simplify",
    "FaultTreeNode",
    "BasicEvent",
    "AndGate",
    "OrGate",
    "VoteGate",
    "from_rbd",
    "MAX_FACTORED_REPEATS",
    "BDD",
    "AvailabilityKernel",
    "compile_structure",
    "compile_pair",
    "system_availability_bdd",
    "pair_availability_bdd",
    "frequency_order",
    "order_from_topology",
    "structure_fingerprint",
    "kernel_stats",
    "reset_kernel_stats",
    "kernel_cache_info",
    "kernel_cache_clear",
    "link_component_name",
    "path_components",
    "minimize_sets",
    "minimal_cut_sets",
    "inclusion_exclusion",
    "esary_proschan_bounds",
    "TwoTerminalMC",
    "MCEstimate",
    "SeedLike",
    "simulate_alternating_renewal",
    "RenewalResult",
    "ImportanceRow",
    "importance_table",
    "importance_from_birnbaum",
    "CTMC",
    "component_ctmc",
    "redundancy_group_ctmc",
    "markov_reward",
    "expected_reward",
    "expected_reward_mc",
    "reward_path_capacity",
    "reward_best_throughput",
    "hypoexponential_cdf",
    "path_responsiveness",
    "pair_responsiveness",
    "service_responsiveness",
    "structure_completion_samples",
    "ResponsivenessResult",
]
