"""Open-addressed int64 hash tables for the array-native BDD plane.

The dict-of-tuples unique table and tuple-keyed apply/ITE cache of the
original compiler allocate one tuple plus one dict entry per node and
per memoized operation — on composition-scale structures (hundreds of
variables, 10^5-10^6 nodes) that is the dominant cost of compilation,
in both time and resident memory.  This module replaces both with
open-addressed linear-probing tables over NumPy ``int64`` storage:

* :class:`UniqueTable` stores **node ids only** — the key of a slot is
  read back from the manager's ``var``/``low``/``high`` parallel arrays,
  so the table adds 8 bytes per slot regardless of key width, and a bulk
  probe is three vectorized gathers plus a compare;
* :class:`ComputedTable` memoizes apply/ITE results under explicit
  ``(op, f, g, h)`` int64 key columns (binary operations leave ``h`` at
  the reserved 0 sentinel — their ``op`` tags never collide with ITE's).

Both tables keep power-of-two capacities (slot index = ``hash & mask``),
grow at a ~60% load factor, and rehash with the same vectorized claim
loop the bulk insert uses — a rehash is one array pass, not a
key-by-key dict rebuild.  Scalar and bulk entry points share the same
storage, so the iterative worklist operations (`BDD.apply_and` on a few
nodes) and the breadth-first vectorized apply (thousands of requests per
level) interoperate on one manager.

Probe/rehash tallies accumulate on the table objects; the compile layer
flushes them into the ``repro_bdd_table_*`` metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dependability.bdd import BDD

__all__ = ["UniqueTable", "ComputedTable"]

_M64 = (1 << 64) - 1
#: 64-bit mixing constants (golden-ratio / xxhash family primes)
_K1 = 0x9E3779B97F4A7C15
_K2 = 0xC2B2AE3D27D4EB4F
_K3 = 0x165667B19E3779F9
_K4 = 0x27D4EB2F165667C5

_NK1 = np.uint64(_K1)
_NK2 = np.uint64(_K2)
_NK3 = np.uint64(_K3)
_NK4 = np.uint64(_K4)
_N31 = np.uint64(31)

#: slots per entry kept ≥ 1/0.6 — linear probing stays short-chained
_LOAD_NUM, _LOAD_DEN = 3, 5


def _hash3(a: int, b: int, c: int) -> int:
    h = (a * _K1 + b * _K2 + c * _K3) & _M64
    return (h ^ (h >> 31)) & _M64


def _hash4(a: int, b: int, c: int, d: int) -> int:
    h = (a * _K1 + b * _K2 + c * _K3 + d * _K4) & _M64
    return (h ^ (h >> 31)) & _M64


def _hash3v(a, b, c) -> np.ndarray:
    """Vectorized :func:`_hash3` (uint64 wrap-around arithmetic)."""
    h = (
        a.astype(np.uint64) * _NK1
        + b.astype(np.uint64) * _NK2
        + c.astype(np.uint64) * _NK3
    )
    return h ^ (h >> _N31)


def _hash4v(a, b, c, d) -> np.ndarray:
    h = (
        a.astype(np.uint64) * _NK1
        + b.astype(np.uint64) * _NK2
        + c.astype(np.uint64) * _NK3
        + d.astype(np.uint64) * _NK4
    )
    return h ^ (h >> _N31)


class UniqueTable:
    """Open-addressed slot table guaranteeing one node per (var, low,
    high) triple.

    Slots hold node ids (or -1 when empty); the key of an occupied slot
    is *read from the owner's node arrays*, never duplicated here.  The
    owner must provide ``_var``/``_low``/``_high`` int64 buffers, the
    scalar mirrors ``_var_l``/``_low_l``/``_high_l``, and the
    ``_append_node``/``_append_nodes`` allocators.
    """

    __slots__ = ("slots", "mask", "fill", "probes", "rehashes")

    def __init__(self, capacity: int = 1 << 10):
        if capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two: {capacity}")
        self.slots = np.full(capacity, -1, dtype=np.int64)
        self.mask = capacity - 1
        self.fill = 0
        self.probes = 0
        self.rehashes = 0

    @property
    def capacity(self) -> int:
        return self.mask + 1

    def _reserve(self, owner: "BDD", extra: int) -> None:
        """Grow (power-of-two doubling) until *extra* more entries fit
        under the load factor."""
        capacity = self.mask + 1
        while (self.fill + extra) * _LOAD_DEN > capacity * _LOAD_NUM:
            capacity *= 2
        if capacity != self.mask + 1:
            self._rehash(owner, capacity)

    def _rehash(self, owner: "BDD", capacity: int) -> None:
        """One vectorized pass re-claiming every live node id."""
        self.slots = np.full(capacity, -1, dtype=np.int64)
        self.mask = capacity - 1
        self.rehashes += 1
        n = owner._n
        if n <= 2:
            return
        ids = np.arange(2, n, dtype=np.int64)
        var = owner._var[2:n]
        low = owner._low[2:n]
        high = owner._high[2:n]
        h = (_hash3v(var, low, high) & np.uint64(self.mask)).astype(np.int64)
        slots = self.slots
        pending = np.arange(n - 2)
        while pending.size:
            self.probes += pending.size
            hp = h[pending]
            cand = slots[hp]
            empty = cand < 0
            if empty.any():
                eslots = hp[empty]
                uniq, first = np.unique(eslots, return_index=True)
                winners = pending[empty][first]
                slots[uniq] = ids[winners]
                placed = np.zeros(pending.size, dtype=bool)
                placed[np.flatnonzero(empty)[first]] = True
                pending = pending[~placed]
                # losers of the claim round and collided survivors both
                # advance; winners are done
                h[pending] = (h[pending] + 1) & self.mask
            else:
                h[pending] = (hp + 1) & self.mask

    # -- scalar ---------------------------------------------------------------

    def lookup_or_insert(self, owner: "BDD", v: int, lo: int, hi: int) -> int:
        """The unique node id for (v, lo, hi), allocating on first use."""
        mask = self.mask
        slots = self.slots
        var_l, low_l, high_l = owner._var_l, owner._low_l, owner._high_l
        h = _hash3(v, lo, hi) & mask
        while True:
            self.probes += 1
            node = int(slots[h])
            if node < 0:
                node = owner._append_node(v, lo, hi)
                slots[h] = node
                self.fill += 1
                if self.fill * _LOAD_DEN > (mask + 1) * _LOAD_NUM:
                    self._rehash(owner, (mask + 1) * 2)
                return node
            if var_l[node] == v and low_l[node] == lo and high_l[node] == hi:
                return node
            h = (h + 1) & mask

    # -- bulk -----------------------------------------------------------------

    def insert_many(
        self, owner: "BDD", v: int, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Node ids for a batch of **distinct** (v, lo, hi) keys sharing
        one variable — existing nodes found, missing ones allocated, all
        in vectorized probe/claim rounds."""
        k = lo.size
        if not k:
            return np.empty(0, dtype=np.int64)
        self._reserve(owner, k)
        out = np.empty(k, dtype=np.int64)
        vvec = np.full(k, v, dtype=np.int64)
        h = (_hash3v(vvec, lo, hi) & np.uint64(self.mask)).astype(np.int64)
        slots = self.slots
        pending = np.arange(k)
        while pending.size:
            # re-read each round: _append_nodes may have reallocated the
            # owner buffers, and last round's winners are this round's
            # collision candidates
            var_a, low_a, high_a = owner._var, owner._low, owner._high
            self.probes += pending.size
            hp = h[pending]
            cand = slots[hp]
            occupied = cand >= 0
            done = np.zeros(pending.size, dtype=bool)
            if occupied.any():
                cids = cand[occupied]
                match = (
                    (var_a[cids] == v)
                    & (low_a[cids] == lo[pending[occupied]])
                    & (high_a[cids] == hi[pending[occupied]])
                )
                if match.any():
                    rows = np.flatnonzero(occupied)[match]
                    out[pending[rows]] = cids[match]
                    done[rows] = True
            empty = ~occupied
            if empty.any():
                eslots = hp[empty]
                uniq, first = np.unique(eslots, return_index=True)
                rows = np.flatnonzero(empty)[first]
                winners = pending[rows]
                ids = owner._append_nodes(v, lo[winners], hi[winners])
                slots[uniq] = ids
                out[winners] = ids
                self.fill += ids.size
                done[rows] = True
            pending = pending[~done]
            h[pending] = (h[pending] + 1) & self.mask
        return out


class ComputedTable:
    """Open-addressed apply/ITE memo: ``(op, f, g, h) → result``.

    Keys live in four explicit int64 columns (``op`` is -1 on empty
    slots); binary operations pass ``h = 0``, which cannot collide with
    ITE keys because the op tags differ.  Same growth/probing discipline
    as :class:`UniqueTable`.
    """

    __slots__ = ("ka", "kb", "kc", "kd", "val", "mask", "fill", "probes",
                 "rehashes")

    def __init__(self, capacity: int = 1 << 10):
        if capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two: {capacity}")
        self.ka = np.full(capacity, -1, dtype=np.int64)
        self.kb = np.empty(capacity, dtype=np.int64)
        self.kc = np.empty(capacity, dtype=np.int64)
        self.kd = np.empty(capacity, dtype=np.int64)
        self.val = np.empty(capacity, dtype=np.int64)
        self.mask = capacity - 1
        self.fill = 0
        self.probes = 0
        self.rehashes = 0

    @property
    def capacity(self) -> int:
        return self.mask + 1

    def _reserve(self, extra: int) -> None:
        capacity = self.mask + 1
        while (self.fill + extra) * _LOAD_DEN > capacity * _LOAD_NUM:
            capacity *= 2
        if capacity != self.mask + 1:
            self._rehash(capacity)

    def _rehash(self, capacity: int) -> None:
        live = np.flatnonzero(self.ka >= 0)
        ka, kb = self.ka[live], self.kb[live]
        kc, kd = self.kc[live], self.kd[live]
        val = self.val[live]
        self.ka = np.full(capacity, -1, dtype=np.int64)
        self.kb = np.empty(capacity, dtype=np.int64)
        self.kc = np.empty(capacity, dtype=np.int64)
        self.kd = np.empty(capacity, dtype=np.int64)
        self.val = np.empty(capacity, dtype=np.int64)
        self.mask = capacity - 1
        self.rehashes += 1
        if live.size:
            self._put_rows(ka, kb, kc, kd, val)

    def _put_rows(self, ka, kb, kc, kd, val) -> None:
        """Vectorized claim loop over distinct keys (insert or update)."""
        mask = self.mask
        h = (_hash4v(ka, kb, kc, kd) & np.uint64(mask)).astype(np.int64)
        pending = np.arange(ka.size)
        while pending.size:
            self.probes += pending.size
            hp = h[pending]
            occ = self.ka[hp] >= 0
            done = np.zeros(pending.size, dtype=bool)
            if occ.any():
                rows = np.flatnonzero(occ)
                sel = hp[rows]
                p = pending[rows]
                same = (
                    (self.ka[sel] == ka[p])
                    & (self.kb[sel] == kb[p])
                    & (self.kc[sel] == kc[p])
                    & (self.kd[sel] == kd[p])
                )
                if same.any():
                    upd = sel[same]
                    self.val[upd] = val[p[same]]
                    done[rows[same]] = True
            empty = ~occ
            if empty.any():
                eslots = hp[empty]
                uniq, first = np.unique(eslots, return_index=True)
                rows = np.flatnonzero(empty)[first]
                p = pending[rows]
                self.ka[uniq] = ka[p]
                self.kb[uniq] = kb[p]
                self.kc[uniq] = kc[p]
                self.kd[uniq] = kd[p]
                self.val[uniq] = val[p]
                self.fill += uniq.size
                done[rows] = True
            pending = pending[~done]
            h[pending] = (h[pending] + 1) & mask

    # -- scalar ---------------------------------------------------------------

    def get(self, op: int, f: int, g: int, h4: int = 0):
        mask = self.mask
        h = _hash4(op, f, g, h4) & mask
        ka = self.ka
        while True:
            self.probes += 1
            a = int(ka[h])
            if a < 0:
                return None
            if (
                a == op
                and int(self.kb[h]) == f
                and int(self.kc[h]) == g
                and int(self.kd[h]) == h4
            ):
                return int(self.val[h])
            h = (h + 1) & mask

    def put(self, op: int, f: int, g: int, result: int, h4: int = 0) -> None:
        self._reserve(1)
        mask = self.mask
        h = _hash4(op, f, g, h4) & mask
        ka = self.ka
        while True:
            self.probes += 1
            a = int(ka[h])
            if a < 0:
                ka[h] = op
                self.kb[h] = f
                self.kc[h] = g
                self.kd[h] = h4
                self.val[h] = result
                self.fill += 1
                return
            if (
                a == op
                and int(self.kb[h]) == f
                and int(self.kc[h]) == g
                and int(self.kd[h]) == h4
            ):
                self.val[h] = result
                return
            h = (h + 1) & mask

    # -- bulk -----------------------------------------------------------------

    def get_many(
        self, op: int, f: np.ndarray, g: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(values, found)`` for a batch of binary-op keys."""
        k = f.size
        values = np.empty(k, dtype=np.int64)
        found = np.zeros(k, dtype=bool)
        if not k:
            return values, found
        mask = self.mask
        opv = np.full(k, op, dtype=np.int64)
        zero = np.zeros(k, dtype=np.int64)
        h = (_hash4v(opv, f, g, zero) & np.uint64(mask)).astype(np.int64)
        pending = np.arange(k)
        while pending.size:
            self.probes += pending.size
            hp = h[pending]
            a = self.ka[hp]
            empty = a < 0
            done = empty.copy()  # empty slot ends the probe chain: miss
            occ = ~empty
            if occ.any():
                rows = np.flatnonzero(occ)
                sel = hp[rows]
                p = pending[rows]
                same = (
                    (a[rows] == op)
                    & (self.kb[sel] == f[p])
                    & (self.kc[sel] == g[p])
                    & (self.kd[sel] == 0)
                )
                if same.any():
                    hit = p[same]
                    values[hit] = self.val[sel[same]]
                    found[hit] = True
                    done[rows[same]] = True
            pending = pending[~done]
            h[pending] = (h[pending] + 1) & mask
        return values, found

    def put_many(
        self, op: int, f: np.ndarray, g: np.ndarray, result: np.ndarray
    ) -> None:
        """Insert a batch of **distinct** binary-op keys."""
        if not f.size:
            return
        self._reserve(f.size)
        opv = np.full(f.size, op, dtype=np.int64)
        zero = np.zeros(f.size, dtype=np.int64)
        self._put_rows(opv, f.astype(np.int64), g.astype(np.int64), zero,
                       result.astype(np.int64))
