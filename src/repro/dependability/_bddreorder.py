"""Sifting-based dynamic variable reordering for the BDD plane.

Variable order decides ROBDD size — a bad order can be exponentially
larger than the best one — and the seed heuristics
(:func:`~repro.dependability.bdd.order_from_topology`, frequency order)
only see the input structure, not the compiled diagram.  This module
implements Rudell-style sifting over an already-compiled manager: each
variable is moved through every decision level by repeated
**adjacent-level swaps**, parked at the level minimizing live node
count, with a growth bound aborting hopeless directions early.

The swap primitive is the classic in-place one: a level-``i`` node that
depends on level ``i+1`` is relabeled to the lower variable and its
cofactor grid transposed (its node id — and therefore every reference
from levels above — survives untouched); nodes independent of the other
level just change depth.  Canonicity of the source manager guarantees
the rebuilt nodes are distinct from each other and from the moved
nodes, so no forwarding pointers are ever needed; nodes orphaned by a
rebuild are dereferenced with cascade deletion once the whole level is
processed.

:func:`sift` works on the reachable subgraph only (construction garbage
neither costs swap time nor distorts the size signal) and returns a
freshly compacted manager with variables renumbered to their new
levels, plus the old→new node-id mapping and the level permutation —
the compile layer uses those to translate roots, cached group roots,
and the kernel's variable naming.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["sift"]

#: abort a sift direction once the live count exceeds this multiple of
#: the best size seen for the variable being sifted
_DEFAULT_MAX_GROWTH = 1.2


class _SiftState:
    """Mutable level-indexed view of a manager's reachable subgraph.

    ``tables[level]`` maps ``(low, high) → node id`` for the nodes
    currently decided at *level*; ``perm[level]`` is the original
    variable index living there and ``var_level`` its inverse.  ``ref``
    counts parents plus external root references, so swaps can delete
    nodes the instant they become unreachable.
    """

    __slots__ = (
        "lvl",
        "lo",
        "hi",
        "ref",
        "tables",
        "perm",
        "var_level",
        "size",
        "next_id",
        "nlevels",
    )

    @classmethod
    def from_manager(cls, bdd, roots: Sequence[int]) -> "_SiftState":
        n = bdd.nvar
        state = cls()
        state.nlevels = n
        state.lvl = {}
        state.lo = {}
        state.hi = {}
        state.tables = [dict() for _ in range(n)]
        state.perm = list(range(n))
        state.var_level = list(range(n))
        var_l, low_l, high_l = bdd._var_l, bdd._low_l, bdd._high_l
        seen = {0, 1}
        stack = list(roots)
        order: List[int] = []
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            order.append(nid)
            stack.append(low_l[nid])
            stack.append(high_l[nid])
        state.size = len(order)
        state.next_id = max(order) + 1 if order else 2
        ref: Dict[int, int] = {0: 0, 1: 0}
        for nid in order:
            v, lo, hi = var_l[nid], low_l[nid], high_l[nid]
            state.lvl[nid] = v
            state.lo[nid] = lo
            state.hi[nid] = hi
            state.tables[v][(lo, hi)] = nid
            ref[lo] = ref.get(lo, 0) + 1
            ref[hi] = ref.get(hi, 0) + 1
        for root in roots:
            ref[root] = ref.get(root, 0) + 1
        state.ref = ref
        return state

    def swap(self, i: int) -> None:
        """Exchange decision levels ``i`` and ``i+1`` in place."""
        lvl, lo, hi, ref = self.lvl, self.lo, self.hi, self.ref
        tab_x = self.tables[i]
        tab_y = self.tables[i + 1]
        rebuilt: List[Tuple[int, int, int, int, int, int, int]] = []
        moved_down: List[Tuple[Tuple[int, int], int]] = []
        for key, a in tab_x.items():
            f0, f1 = key
            dep0 = lvl.get(f0, -1) == i + 1
            dep1 = lvl.get(f1, -1) == i + 1
            if dep0 or dep1:
                f00, f01 = (lo[f0], hi[f0]) if dep0 else (f0, f0)
                f10, f11 = (lo[f1], hi[f1]) if dep1 else (f1, f1)
                rebuilt.append((a, f0, f1, f00, f01, f10, f11))
            else:
                moved_down.append((key, a))
        new_tab_i: Dict[Tuple[int, int], int] = {}
        for key, b in tab_y.items():
            lvl[b] = i
            new_tab_i[key] = b
        new_tab_i1: Dict[Tuple[int, int], int] = {}
        for key, a in moved_down:
            lvl[a] = i + 1
            new_tab_i1[key] = a
        self.tables[i] = new_tab_i
        self.tables[i + 1] = new_tab_i1

        def mkred_low(left: int, right: int) -> int:
            # reduced node at the new lower level i+1, +1 reference for
            # the caller
            if left == right:
                ref[left] += 1
                return left
            key = (left, right)
            node = new_tab_i1.get(key)
            if node is None:
                node = self.next_id
                self.next_id = node + 1
                lvl[node] = i + 1
                lo[node] = left
                hi[node] = right
                ref[node] = 0
                ref[left] += 1
                ref[right] += 1
                new_tab_i1[key] = node
                self.size += 1
            ref[node] += 1
            return node

        # rebuild pass first, derefs deferred: a child about to lose its
        # reference from A may be re-referenced by A's new cofactors
        dead: List[int] = []
        for a, f0, f1, f00, f01, f10, f11 in rebuilt:
            h0 = mkred_low(f00, f10)
            h1 = mkred_low(f01, f11)
            lo[a] = h0
            hi[a] = h1
            lvl[a] = i
            new_tab_i[(h0, h1)] = a
            dead.append(f0)
            dead.append(f1)
        while dead:
            nid = dead.pop()
            if nid < 2:
                continue
            ref[nid] -= 1
            if ref[nid] == 0:
                del self.tables[lvl[nid]][(lo[nid], hi[nid])]
                dead.append(lo[nid])
                dead.append(hi[nid])
                del lvl[nid], lo[nid], hi[nid], ref[nid]
                self.size -= 1
        px, py = self.perm[i], self.perm[i + 1]
        self.perm[i], self.perm[i + 1] = py, px
        self.var_level[px] = i + 1
        self.var_level[py] = i


def sift(
    bdd,
    roots: Sequence[int],
    *,
    max_growth: float = _DEFAULT_MAX_GROWTH,
    max_swaps: int = 0,
) -> Tuple[object, Dict[int, int], List[int], Dict[str, int]]:
    """One bounded sifting pass over the subgraph reachable from *roots*.

    Variables are sifted largest-level-first; each is swept to the
    bottom, then to the top, then parked at the best level seen (the
    *max_growth* bound aborts directions that only bloat the diagram).
    *max_swaps* caps exploratory swaps (0 picks a quadratic default);
    parking swaps always complete so the state stays consistent.

    Returns ``(new_bdd, mapping, perm, stats)``: a compacted manager of
    *bdd*'s class whose variable ``v`` **is** decision level ``v``, the
    old→new node-id mapping (terminals included), the permutation with
    ``perm[level]`` = original variable index, and the pass counters.
    """
    n = bdd.nvar
    state = _SiftState.from_manager(bdd, roots)
    live_before = state.size
    swaps = 0
    budget = max_swaps if max_swaps > 0 else max(64, 8 * n * n)
    if n > 1 and state.size:
        by_size = sorted(
            range(n), key=lambda v: -len(state.tables[state.var_level[v]])
        )
        for v in by_size:
            if swaps >= budget:
                break
            cur = state.var_level[v]
            best_size = state.size
            best_level = cur
            while cur < n - 1 and swaps < budget:
                state.swap(cur)
                swaps += 1
                cur += 1
                if state.size < best_size:
                    best_size = state.size
                    best_level = cur
                elif state.size > best_size * max_growth:
                    break
            while cur > 0 and swaps < budget:
                state.swap(cur - 1)
                swaps += 1
                cur -= 1
                if state.size < best_size:
                    best_size = state.size
                    best_level = cur
                elif state.size > best_size * max_growth and cur <= best_level:
                    break
            while cur < best_level:
                state.swap(cur)
                swaps += 1
                cur += 1
            while cur > best_level:
                state.swap(cur - 1)
                swaps += 1
                cur -= 1
    new_bdd = bdd.__class__(n)
    mapping: Dict[int, int] = {0: 0, 1: 1}
    for level in range(n - 1, -1, -1):
        for (left, right), nid in state.tables[level].items():
            mapping[nid] = new_bdd.mk(level, mapping[left], mapping[right])
    stats = {
        "swaps": swaps,
        "live_before": live_before,
        "live_after": state.size,
        "passes": 1,
    }
    return new_bdd, mapping, list(state.perm), stats
