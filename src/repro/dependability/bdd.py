"""Compiled availability kernel: reduced ordered binary decision diagrams.

The exact evaluators of :mod:`repro.analysis.exact` enumerate all 2^n
component states and :func:`repro.dependability.cutsets.inclusion_exclusion`
is exponential in the number of path sets — and both redo all of that work
for every (requester, provider) pair and for every fault combination of a
campaign sweep, even though the logical *structure* never changes between
evaluations.  This module compiles the structure once:

* the success function of a pair (OR over its path sets, each the AND of
  its components) — and of the whole service (AND over all distinct
  pairs) — is built as a reduced ordered BDD with a shared unique table,
  so components repeated across paths and across pairs appear once;
* availability is a single bottom-up pass over the DAG,
  ``P(node) = p·P(high) + (1-p)·P(low)`` — O(|BDD|) per probability
  vector instead of O(2^n);
* Birnbaum importances for *every* variable come from one extra top-down
  pass (node reach probabilities), and all classic importance measures
  derive from them by multilinearity;
* minimal cut sets and minimal path sets fall out of one memoized
  bottom-up recursion over the same DAG (the structure function is
  monotone — all literals are positive — so no complement handling is
  needed);
* :meth:`AvailabilityKernel.evaluate_many` batches k probability vectors
  through one vectorized numpy sweep — the campaign fast path.

Compiled kernels are memoized in a weight-bounded LRU keyed by a blake2b
fingerprint of the path-set structure and the variable order, mirroring
the engine's PathSet cache: a campaign that evaluates hundreds of fault
combinations against one UPSIM compiles the BDD once and then only
re-evaluates terminal probabilities.

Variable order matters for BDD size; :func:`order_from_topology` derives
it from the compiled engine's CSR ids so that topologically adjacent
components (and the links between them) get adjacent decision levels —
a good heuristic for network connectivity functions.  Without a topology
the fallback orders by descending occurrence frequency.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro import store as _store
from repro.core.engine import _LRU, compile_topology
from repro.dependability.cutsets import minimize_sets
from repro.errors import AnalysisError, StoreError
from repro.network.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "BDD",
    "AvailabilityKernel",
    "IncrementalAvailabilityKernel",
    "perturbed_sweep",
    "evaluate_perturbed_arrays",
    "compile_structure",
    "compile_pair",
    "structure_fingerprint",
    "frequency_order",
    "order_from_topology",
    "system_availability_bdd",
    "pair_availability_bdd",
    "kernel_stats",
    "reset_kernel_stats",
    "kernel_cache_info",
    "kernel_cache_clear",
]


class BDD:
    """A reduced ordered BDD manager over variables ``0 … nvar-1``.

    Nodes live in parallel arrays (``var``/``low``/``high``) indexed by
    node id; ids 0 and 1 are the FALSE/TRUE terminals (their ``var`` is
    the out-of-range sentinel ``nvar``, which makes "smallest variable on
    top" comparisons uniform).  The unique table guarantees one node per
    (var, low, high) triple, so structurally equal functions are pointer
    equal and the apply caches can key on ids alone.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, nvar: int):
        self.nvar = nvar
        self.var: List[int] = [nvar, nvar]
        self.low: List[int] = [0, 1]
        self.high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._cache: Dict[Tuple[int, ...], int] = {}
        #: memoized apply/ITE results reused during construction
        self.cache_hits = 0

    def __len__(self) -> int:
        return len(self.var)

    def mk(self, variable: int, low: int, high: int) -> int:
        """The unique node for (variable, low, high), reduced."""
        if low == high:
            return low
        key = (variable, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self.var)
            self.var.append(variable)
            self.low.append(low)
            self.high.append(high)
            self._unique[key] = node
        return node

    def grow(self, nvar: int) -> None:
        """Extend the variable universe to *nvar* (append-only).

        New variables take the largest indices, so every existing node is
        still correctly ordered and every apply/unique-table entry stays
        valid; only the terminal sentinel (``var == nvar``) moves.
        """
        if nvar < self.nvar:
            raise AnalysisError(
                f"cannot shrink a BDD manager from {self.nvar} to {nvar} "
                f"variables"
            )
        self.nvar = nvar
        self.var[0] = self.var[1] = nvar

    def cube(self, variables: Iterable[int]) -> int:
        """The conjunction of positive literals — one path's success."""
        node = self.TRUE
        for variable in sorted(set(variables), reverse=True):
            node = self.mk(variable, self.FALSE, node)
        return node

    def _cofactors(self, node: int, variable: int) -> Tuple[int, int]:
        if self.var[node] == variable:
            return self.low[node], self.high[node]
        return node, node

    def apply_and(self, f: int, g: int) -> int:
        if f == 0 or g == 0:
            return 0
        if f == 1:
            return g
        if g == 1 or f == g:
            return f
        if f > g:
            f, g = g, f
        key = (0, f, g)
        result = self._cache.get(key)
        if result is None:
            top = min(self.var[f], self.var[g])
            f0, f1 = self._cofactors(f, top)
            g0, g1 = self._cofactors(g, top)
            result = self.mk(top, self.apply_and(f0, g0), self.apply_and(f1, g1))
            self._cache[key] = result
        else:
            self.cache_hits += 1
        return result

    def apply_or(self, f: int, g: int) -> int:
        if f == 1 or g == 1:
            return 1
        if f == 0:
            return g
        if g == 0 or f == g:
            return f
        if f > g:
            f, g = g, f
        key = (1, f, g)
        result = self._cache.get(key)
        if result is None:
            top = min(self.var[f], self.var[g])
            f0, f1 = self._cofactors(f, top)
            g0, g1 = self._cofactors(g, top)
            result = self.mk(top, self.apply_or(f0, g0), self.apply_or(f1, g1))
            self._cache[key] = result
        else:
            self.cache_hits += 1
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else — the general apply, needed for voting gates."""
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        key = (2, f, g, h)
        result = self._cache.get(key)
        if result is None:
            top = min(self.var[f], self.var[g], self.var[h])
            f0, f1 = self._cofactors(f, top)
            g0, g1 = self._cofactors(g, top)
            h0, h1 = self._cofactors(h, top)
            result = self.mk(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
            self._cache[key] = result
        else:
            self.cache_hits += 1
        return result


_STATS_LOCK = threading.Lock()
_STATS = {"compilations": 0, "evaluations": 0}

#: Compiled kernels keyed by structure fingerprint.  The weight budget
#: (total BDD nodes retained) mirrors the engine's PathSet cache: a sweep
#: over many structures cannot grow memory without bound.
_KERNELS = _LRU(maxsize=256, max_weight=2_000_000)

_M_COMPILATIONS = _metrics.counter(
    "repro_bdd_compilations_total",
    "Structure compilations into the BDD availability kernel",
)
_M_NODES_ALLOCATED = _metrics.counter(
    "repro_bdd_nodes_allocated_total",
    "Decision nodes allocated across BDD compilations",
)
_M_ITE_CACHE_HITS = _metrics.counter(
    "repro_bdd_ite_cache_hits_total",
    "Apply/ITE memo hits while building BDD structure functions",
)
_M_EVALUATIONS = _metrics.counter(
    "repro_bdd_evaluations_total",
    "Probability-vector evaluations on compiled kernels",
)
_M_GROUP_HITS = _metrics.counter(
    "repro_bdd_group_root_hits_total",
    "Pair-group roots reused across incremental recompiles",
)
_M_GROUP_MISSES = _metrics.counter(
    "repro_bdd_group_root_misses_total",
    "Pair-group roots built from scratch during incremental recompiles",
)
_M_REBUILDS = _metrics.counter(
    "repro_bdd_incremental_rebuilds_total",
    "Full manager rebuilds forced by order changes or garbage pressure",
)
_metrics.gauge(
    "repro_bdd_kernel_cache_hits", "Compiled-kernel LRU cache hits"
).set_function(lambda: _KERNELS.hits)
_metrics.gauge(
    "repro_bdd_kernel_cache_misses", "Compiled-kernel LRU cache misses"
).set_function(lambda: _KERNELS.misses)
_metrics.gauge(
    "repro_bdd_kernel_cache_entries", "Compiled kernels currently cached"
).set_function(lambda: len(_KERNELS.data))
_metrics.gauge(
    "repro_bdd_kernel_cache_weight",
    "Total BDD nodes retained by the kernel cache",
).set_function(lambda: _KERNELS.total_weight)


def _count_evaluation(count: int = 1) -> None:
    with _STATS_LOCK:
        _STATS["evaluations"] += count
    _M_EVALUATIONS.inc(count)


class AvailabilityKernel:
    """A compiled service structure: one BDD, many cheap evaluations.

    Holds the system root (conjunction over all pair functions) plus one
    root per pair group, all in the same manager — pairs share subgraphs
    wherever their paths share components.  All queries are passes over
    the linearized DAG:

    * :meth:`availability` / :meth:`unavailability` — one bottom-up pass;
    * :meth:`evaluate_all` — the same pass, also reporting every pair root;
    * :meth:`evaluate_many` — the pass vectorized over k probability
      vectors (numpy row operations);
    * :meth:`birnbaum` — one bottom-up plus one top-down pass, giving the
      importance of **every** variable at once;
    * :meth:`minimal_cut_sets` / :meth:`minimal_path_sets` — one memoized
      bottom-up recursion.
    """

    def __init__(
        self,
        bdd: BDD,
        root: int,
        group_roots: Sequence[int],
        variables: Sequence[str],
        fingerprint: str = "",
    ):
        self._bdd = bdd
        self.root = root
        self.group_roots = tuple(group_roots)
        self.variables = tuple(variables)
        self.index = {name: i for i, name in enumerate(self.variables)}
        self.fingerprint = fingerprint
        self._linearize()

    # -- layout ---------------------------------------------------------------

    def _linearize(self) -> None:
        """Topologically order the reachable DAG into flat arrays.

        In an ordered BDD every edge goes from a smaller variable index to
        a larger one (or to a terminal), so sorting non-terminal nodes by
        *descending* variable yields a valid bottom-up evaluation order.
        Positions 0 and 1 are the FALSE/TRUE terminals.
        """
        bdd = self._bdd
        reachable: set = {0, 1}
        stack = [self.root, *self.group_roots]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            stack.append(bdd.low[node])
            stack.append(bdd.high[node])
        interior = sorted(
            (n for n in reachable if n > 1), key=lambda n: (-bdd.var[n], n)
        )
        position = {0: 0, 1: 1}
        for offset, node in enumerate(interior):
            position[node] = offset + 2
        self._var_ix = [bdd.var[n] for n in interior]
        self._low_pos = [position[bdd.low[n]] for n in interior]
        self._high_pos = [position[bdd.high[n]] for n in interior]
        self._np_var = np.array(self._var_ix, dtype=np.intp)
        self._np_low = np.array(self._low_pos, dtype=np.intp)
        self._np_high = np.array(self._high_pos, dtype=np.intp)
        # frozen: these views are shared with shard workers, cached across
        # callers, and (for store-loaded kernels) mmap-backed — a caller
        # mutating them in place would silently corrupt every consumer
        self._np_var.flags.writeable = False
        self._np_low.flags.writeable = False
        self._np_high.flags.writeable = False
        self._root_pos = position[self.root]
        self._group_pos = tuple(position[r] for r in self.group_roots)
        #: number of interior (decision) nodes reachable from the roots
        self.size = len(interior)

    @classmethod
    def from_flat(
        cls,
        var_ix: np.ndarray,
        low_pos: np.ndarray,
        high_pos: np.ndarray,
        root_pos: int,
        group_pos: Sequence[int],
        variables: Sequence[str],
        fingerprint: str = "",
    ) -> "AvailabilityKernel":
        """Rebuild a kernel from its linearized arrays — no BDD manager.

        This is the warm-start constructor: :mod:`repro.store` persists
        exactly the :meth:`flat_arrays` shape (plus the group positions
        and variable names), and every evaluation/importance/set query
        runs on the linearized DAG alone, so a loaded kernel is fully
        equivalent to the freshly compiled one — bit-identical results,
        zero compilation work.  ``root``/``group_roots`` (manager node
        ids) are ``None`` on such kernels; all queries go through the
        position-space fields.
        """
        self = object.__new__(cls)
        self._bdd = None
        self.root = None
        self.group_roots = None
        self.variables = tuple(variables)
        self.index = {name: i for i, name in enumerate(self.variables)}
        self.fingerprint = fingerprint
        var = np.asarray(var_ix, dtype=np.intp)
        low = np.asarray(low_pos, dtype=np.intp)
        high = np.asarray(high_pos, dtype=np.intp)
        n = len(var)
        if len(low) != n or len(high) != n:
            raise AnalysisError(
                f"flat kernel arrays disagree on node count: "
                f"{n}/{len(low)}/{len(high)}"
            )
        if n and (
            int(var.min()) < 0
            or int(var.max()) >= len(self.variables)
            or int(low.min()) < 0
            or int(high.min()) < 0
            or int(low.max()) >= n + 2
            or int(high.max()) >= n + 2
        ):
            raise AnalysisError("flat kernel arrays reference out-of-range ids")
        for array in (var, low, high):
            if array.flags.writeable:
                array.flags.writeable = False
        self._np_var = var
        self._np_low = low
        self._np_high = high
        self._var_ix = var.tolist()
        self._low_pos = low.tolist()
        self._high_pos = high.tolist()
        self._root_pos = int(root_pos)
        self._group_pos = tuple(int(g) for g in group_pos)
        for pos in (self._root_pos, *self._group_pos):
            if not 0 <= pos < n + 2:
                raise AnalysisError(
                    f"flat kernel root/group position {pos} out of range"
                )
        self.size = n
        return self

    # -- probability vectors --------------------------------------------------

    def probability_vector(self, availabilities: Mapping[str, float]) -> np.ndarray:
        """The kernel-ordered numpy vector for a component→availability
        table (extra table entries are ignored; missing ones raise)."""
        missing = [name for name in self.variables if name not in availabilities]
        if missing:
            raise AnalysisError(f"no availability for components {missing}")
        vector = np.empty(len(self.variables), dtype=np.float64)
        for i, name in enumerate(self.variables):
            value = availabilities[name]
            if not 0.0 <= value <= 1.0:
                raise AnalysisError(
                    f"availability of {name!r} must be in [0, 1], got {value}"
                )
            vector[i] = value
        return vector

    # -- evaluation -----------------------------------------------------------

    def _values(self, p: np.ndarray) -> List[float]:
        """Bottom-up node probabilities for one probability vector."""
        values = [0.0] * (len(self._var_ix) + 2)
        values[1] = 1.0
        var_ix, low, high = self._var_ix, self._low_pos, self._high_pos
        for k in range(len(var_ix)):
            pv = p[var_ix[k]]
            values[k + 2] = pv * values[high[k]] + (1.0 - pv) * values[low[k]]
        return values

    def availability(self, availabilities: Mapping[str, float]) -> float:
        """P(system structure function is true) — one O(|BDD|) pass."""
        p = self.probability_vector(availabilities)
        _count_evaluation()
        return self._values(p)[self._root_pos]

    def unavailability(self, availabilities: Mapping[str, float]) -> float:
        return 1.0 - self.availability(availabilities)

    def pair_availability(
        self, group: int, availabilities: Mapping[str, float]
    ) -> float:
        """Availability of one pair's root (index into the compiled groups)."""
        p = self.probability_vector(availabilities)
        _count_evaluation()
        return self._values(p)[self._group_pos[group]]

    def evaluate_all(
        self, availabilities: Mapping[str, float]
    ) -> Tuple[float, Tuple[float, ...]]:
        """(system availability, per-group availabilities) in one pass."""
        p = self.probability_vector(availabilities)
        _count_evaluation()
        values = self._values(p)
        return values[self._root_pos], tuple(values[g] for g in self._group_pos)

    def evaluate_vector(
        self, p: np.ndarray
    ) -> Tuple[float, Tuple[float, ...]]:
        """(system, per-group) availabilities for one kernel-ordered raw
        vector — :meth:`evaluate_all` without the mapping validation.

        The churn evaluator uses this with 0.0 defaults for variables
        absent from the current model epoch: an incremental kernel's
        variable set only grows, and variables no longer referenced by
        any live group are unreachable from the evaluated roots, so their
        probability never influences the result.
        """
        p = np.asarray(p, dtype=np.float64)
        if p.ndim != 1 or p.shape[0] != len(self.variables):
            raise AnalysisError(
                f"probability vector must have shape "
                f"({len(self.variables)},), got {p.shape}"
            )
        _count_evaluation()
        values = self._values(p)
        return values[self._root_pos], tuple(
            values[g] for g in self._group_pos
        )

    def evaluate_many(
        self,
        tables: Union[np.ndarray, Sequence[Mapping[str, float]]],
        *,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """System availability for k probability vectors in one vectorized
        sweep — the campaign/what-if batch fast path.

        *tables* is either a (k, n_variables) float array in kernel
        variable order (see :meth:`probability_vector`) or a sequence of
        component→availability mappings.  *out* (when given) receives the
        k results in place and is returned — no trailing allocation/copy,
        matching :meth:`evaluate_perturbed`'s discipline; it must be a
        float64 vector of length k.
        """
        if isinstance(tables, np.ndarray):
            matrix = np.asarray(tables, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[1] != len(self.variables):
                raise AnalysisError(
                    f"probability matrix must be (k, {len(self.variables)}), "
                    f"got {matrix.shape}"
                )
        else:
            matrix = np.stack(
                [self.probability_vector(table) for table in tables]
            ) if tables else np.empty((0, len(self.variables)))
        k = matrix.shape[0]
        if out is not None:
            if (
                not isinstance(out, np.ndarray)
                or out.shape != (k,)
                or out.dtype != np.float64
            ):
                raise AnalysisError(
                    f"out must be a float64 array of shape ({k},)"
                )
        if k == 0:
            return out if out is not None else np.empty(0, dtype=np.float64)
        _count_evaluation(k)
        values = np.empty((len(self._var_ix) + 2, k), dtype=np.float64)
        values[0] = 0.0
        values[1] = 1.0
        var_ix, low, high = self._var_ix, self._low_pos, self._high_pos
        for i in range(len(var_ix)):
            pv = matrix[:, var_ix[i]]
            values[i + 2] = pv * values[high[i]] + (1.0 - pv) * values[low[i]]
        if out is None:
            return values[self._root_pos].copy()
        out[:] = values[self._root_pos]
        return out

    def evaluate_many_all(
        self,
        tables: Union[np.ndarray, Sequence[Mapping[str, float]]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(system, per-group)`` availabilities for k probability vectors
        in one vectorized sweep.

        :meth:`evaluate_many` extended with the group roots: the same
        bottom-up pass over the linearized DAG, but the per-group node
        values are read off alongside the system root.  This is the
        one-pass multi-dimension fast path (:mod:`repro.dimensions`
        stacks one probability table per dimension and evaluates them
        all in a single traversal).  Returns ``(roots, groups)`` with
        shapes ``(k,)`` and ``(k, n_groups)``.
        """
        if isinstance(tables, np.ndarray):
            matrix = np.asarray(tables, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[1] != len(self.variables):
                raise AnalysisError(
                    f"probability matrix must be (k, {len(self.variables)}), "
                    f"got {matrix.shape}"
                )
        else:
            matrix = np.stack(
                [self.probability_vector(table) for table in tables]
            ) if tables else np.empty((0, len(self.variables)))
        k = matrix.shape[0]
        n_groups = len(self._group_pos)
        if k == 0:
            return (
                np.empty(0, dtype=np.float64),
                np.empty((0, n_groups), dtype=np.float64),
            )
        _count_evaluation(k)
        values = np.empty((len(self._var_ix) + 2, k), dtype=np.float64)
        values[0] = 0.0
        values[1] = 1.0
        var_ix, low, high = self._var_ix, self._low_pos, self._high_pos
        for i in range(len(var_ix)):
            pv = matrix[:, var_ix[i]]
            values[i + 2] = pv * values[high[i]] + (1.0 - pv) * values[low[i]]
        roots = values[self._root_pos].copy()
        groups = np.empty((k, n_groups), dtype=np.float64)
        for j, pos in enumerate(self._group_pos):
            groups[:, j] = values[pos]
        return roots, groups

    def flat_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """The linearized DAG as ``(var, low, high, root_pos)`` numpy
        arrays — the shape the sharding plane ships to workers and the
        artifact store persists (see :mod:`repro.workload.sharding` and
        :mod:`repro.store`).  ``var`` indexes :attr:`variables`;
        ``low``/``high`` are positions in the evaluation array (0/1 are
        the FALSE/TRUE terminals, interior node *i* lives at position
        ``i + 2``).  The views are **read-only** — they are shared by
        every consumer of this kernel (and may be mmap-backed)."""
        return self._np_var, self._np_low, self._np_high, self._root_pos

    def evaluate_perturbed(
        self,
        base: np.ndarray,
        var: int,
        values: np.ndarray,
        *,
        batch_rows: int = 65536,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """System availability when every variable holds its *base*
        probability except variable *var*, which sweeps over *values*.

        The population evaluation plane's workhorse: users sharing one
        attachment point and service differ only in the availability of
        their own access device, so the k distinct per-user annotations
        collapse to one scalar base vector plus a k-vector at a single
        decision variable.  Memory is O(k · nodes-above-*var*) instead of
        the (k, n_variables) annotation matrix :meth:`evaluate_many`
        needs, and the sweep is chunked at *batch_rows* rows.
        """
        base = np.asarray(base, dtype=np.float64)
        if base.ndim != 1 or base.shape[0] != len(self.variables):
            raise AnalysisError(
                f"base probability vector must have shape "
                f"({len(self.variables)},), got {base.shape}"
            )
        if not 0 <= var < len(self.variables):
            raise AnalysisError(
                f"perturbed variable index {var} out of range "
                f"[0, {len(self.variables)})"
            )
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise AnalysisError(
                f"perturbed values must be a 1-D array, got shape {values.shape}"
            )
        _count_evaluation(len(values))
        return evaluate_perturbed_arrays(
            self._np_var,
            self._np_low,
            self._np_high,
            self._root_pos,
            base,
            var,
            values,
            batch_rows=batch_rows,
            out=out,
        )

    # -- importance -----------------------------------------------------------

    def birnbaum(self, availabilities: Mapping[str, float]) -> Dict[str, float]:
        """Birnbaum importance ``∂A_sys/∂A_c`` of every variable at once.

        One bottom-up pass gives node probabilities; one top-down pass
        accumulates each node's *reach* probability (the chance the
        evaluation path passes through it); the importance of variable v
        is ``Σ_{nodes n labeled v} reach(n)·(P(high) - P(low))``.
        """
        p = self.probability_vector(availabilities)
        _count_evaluation()
        values = self._values(p)
        reach = [0.0] * len(values)
        reach[self._root_pos] = 1.0
        var_ix, low, high = self._var_ix, self._low_pos, self._high_pos
        gradient = [0.0] * len(self.variables)
        # interior nodes are stored deepest-variable first, so the reverse
        # walk visits every parent before its children: reach is final at
        # visit time and the gradient can accumulate in the same sweep
        for k in range(len(var_ix) - 1, -1, -1):
            r = reach[k + 2]
            if r == 0.0:
                continue
            v = var_ix[k]
            pv = p[v]
            gradient[v] += r * (values[high[k]] - values[low[k]])
            reach[high[k]] += r * pv
            reach[low[k]] += r * (1.0 - pv)
        return dict(zip(self.variables, gradient))

    # -- cut / path sets ------------------------------------------------------

    def _bottom_up_sets(
        self, root_pos: int, terminal_false, terminal_true, combine
    ) -> List[FrozenSet[str]]:
        """Shared memoized bottom-up recursion (iterative: component
        counts can exceed the interpreter recursion limit).

        Runs in linearized *position* space — positions 0/1 are the
        terminals, interior node *k* lives at ``k + 2`` — so it works
        identically on manager-backed and store-loaded kernels: the
        reachable DAG is the same either way.
        """
        var_ix, low_pos, high_pos = self._var_ix, self._low_pos, self._high_pos
        memo: Dict[int, Tuple[FrozenSet[str], ...]] = {
            0: terminal_false,
            1: terminal_true,
        }
        stack = [root_pos]
        while stack:
            pos = stack[-1]
            if pos in memo:
                stack.pop()
                continue
            low, high = low_pos[pos - 2], high_pos[pos - 2]
            pending = [child for child in (low, high) if child not in memo]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            name = self.variables[var_ix[pos - 2]]
            memo[pos] = tuple(
                minimize_sets(combine(name, memo[low], memo[high]))
            )
        return list(memo[root_pos])

    def minimal_path_sets(
        self, group: Optional[int] = None
    ) -> List[FrozenSet[str]]:
        """Minimal path sets (minimal variable sets forcing the function
        true), from the DAG itself — independent of the input path lists."""
        root = self._root_pos if group is None else self._group_pos[group]
        return self._bottom_up_sets(
            root,
            terminal_false=(),
            terminal_true=(frozenset(),),
            combine=lambda name, low, high: list(low)
            + [s | {name} for s in high],
        )

    def minimal_cut_sets(
        self, group: Optional[int] = None
    ) -> List[FrozenSet[str]]:
        """Minimal cut sets (minimal variable sets forcing the function
        false) by the dual bottom-up recursion over the same DAG."""
        root = self._root_pos if group is None else self._group_pos[group]
        return self._bottom_up_sets(
            root,
            terminal_false=(frozenset(),),
            terminal_true=(),
            combine=lambda name, low, high: [s | {name} for s in low]
            + list(high),
        )


# -- perturbed evaluation (shared by kernel method and shard workers) --------


def perturbed_sweep(
    var_ix: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    root_pos: int,
    base: np.ndarray,
    var: int,
    values: np.ndarray,
) -> np.ndarray:
    """One bottom-up sweep with a single vectorized variable.

    Every variable carries its scalar ``base`` probability except *var*,
    which carries the whole *values* vector.  Node results stay Python
    floats until the sweep first touches *var*; only nodes whose subgraph
    depends on the perturbed variable ever widen to k-vectors, so memory
    is proportional to the perturbed cone, not to ``nodes × k``.

    This module-level function is the **single implementation** evaluated
    by :meth:`AvailabilityKernel.evaluate_perturbed` and by the
    shared-memory shard workers of :mod:`repro.workload.sharding` — both
    paths run the identical arithmetic, so their results agree bit for
    bit with each other and (since numpy float64 scalar ops are the same
    IEEE doubles) with the scalar :meth:`AvailabilityKernel.availability`
    loop.
    """
    node_values: List[object] = [0.0] * (len(var_ix) + 2)
    node_values[1] = 1.0
    for i in range(len(var_ix)):
        v = var_ix[i]
        pv = values if v == var else base[v]
        node_values[i + 2] = (
            pv * node_values[high[i]] + (1.0 - pv) * node_values[low[i]]
        )
    root = node_values[root_pos]
    if isinstance(root, np.ndarray):
        return root
    # the root never saw the perturbed variable (or k == 0): broadcast
    return np.full(len(values), float(root))


def evaluate_perturbed_arrays(
    var_ix: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    root_pos: int,
    base: np.ndarray,
    var: int,
    values: np.ndarray,
    *,
    batch_rows: int = 65536,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Chunked :func:`perturbed_sweep` over raw linearized-DAG arrays.

    Operates purely on arrays (no kernel object), so shard workers can
    call it directly on shared-memory views; *out* (when given) receives
    the results in place — the sharding plane points it at the shared
    result segment.
    """
    if batch_rows < 1:
        raise AnalysisError(f"batch_rows must be >= 1, got {batch_rows}")
    k = len(values)
    if out is None:
        out = np.empty(k, dtype=np.float64)
    for start in range(0, k, batch_rows):
        stop = min(start + batch_rows, k)
        out[start:stop] = perturbed_sweep(
            var_ix, low, high, root_pos, base, var, values[start:stop]
        )
    return out


# -- variable orders ----------------------------------------------------------


def frequency_order(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
) -> Tuple[str, ...]:
    """Fallback variable order: most frequently used components first
    (shared components high in the diagram maximizes subgraph sharing)."""
    counts: Counter = Counter()
    for group in path_set_groups:
        for path in group:
            counts.update(path)
    return tuple(sorted(counts, key=lambda name: (-counts[name], name)))


def order_from_topology(
    topology: Topology, components: Iterable[str]
) -> Tuple[str, ...]:
    """Variable order from the compiled engine's CSR ids.

    Node components sort by their CSR id; a link component ``a|b`` sorts
    right after its lower-id endpoint (keeping each cable adjacent to the
    device it hangs off), and names unknown to the topology go last in
    lexical order.
    """
    compiled = compile_topology(topology)
    index = compiled.index

    def key(name: str) -> Tuple[int, int, int, str]:
        node_id = index.get(name)
        if node_id is not None:
            return (node_id, 0, -1, name)
        if "|" in name:
            a, b = name.split("|", 1)
            ia, ib = index.get(a), index.get(b)
            if ia is not None and ib is not None:
                low_id, high_id = sorted((ia, ib))
                return (low_id, 1, high_id, name)
        return (len(compiled.names), 2, 0, name)

    return tuple(sorted(set(components), key=key))


# -- compilation --------------------------------------------------------------


def _canonical_groups(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
) -> Tuple[Tuple[Tuple[str, ...], ...], ...]:
    return tuple(
        tuple(sorted({tuple(sorted(path)) for path in group}))
        for group in path_set_groups
    )


def structure_fingerprint(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    order: Sequence[str],
) -> str:
    """blake2b digest of the path-set structure plus variable order — the
    kernel cache key (same idiom as the engine's topology fingerprint)."""
    digest = hashlib.blake2b(digest_size=16)
    for name in order:
        digest.update(name.encode("utf-8"))
        digest.update(b"\x1f")
    digest.update(b"\x1e")
    for group in _canonical_groups(path_set_groups):
        for path in group:
            for component in path:
                digest.update(component.encode("utf-8"))
                digest.update(b"\x1f")
            digest.update(b"\x1d")
        digest.update(b"\x1e")
    return digest.hexdigest()


#: artifact kind the kernel tier persists (see :mod:`repro.store`)
_KIND_KERNEL = "kernel"


def _kernel_from_store(
    store: "_store.ArtifactStore", fingerprint: str
) -> Optional[AvailabilityKernel]:
    """Second-tier lookup: rebuild a stored kernel's linearized DAG as
    zero-copy mmap views, or ``None`` on miss/corruption/foreign data."""
    artifact = store.get(_KIND_KERNEL, (fingerprint,))
    if artifact is None:
        return None
    try:
        return AvailabilityKernel.from_flat(
            artifact.arrays["var"],
            artifact.arrays["low"],
            artifact.arrays["high"],
            int(artifact.meta["root_pos"]),
            artifact.arrays["group_pos"],
            artifact.meta["variables"],
            fingerprint,
        )
    except (KeyError, TypeError, ValueError, AnalysisError):
        return None


def _kernel_to_store(
    store: "_store.ArtifactStore", kernel: AvailabilityKernel
) -> None:
    """Write a kernel's flat arrays through (works for plain and
    incremental-snapshot kernels alike); store trouble never aborts the
    compilation that produced the kernel."""
    var, low, high, root_pos = kernel.flat_arrays()
    try:
        store.put(
            _KIND_KERNEL,
            (kernel.fingerprint,),
            {
                "var": np.asarray(var, dtype=np.int64),
                "low": np.asarray(low, dtype=np.int64),
                "high": np.asarray(high, dtype=np.int64),
                "group_pos": np.asarray(kernel._group_pos, dtype=np.int64),
            },
            {
                "root_pos": int(root_pos),
                "variables": list(kernel.variables),
            },
        )
    except StoreError:
        pass


def compile_structure(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    *,
    order: Optional[Sequence[str]] = None,
    use_cache: bool = True,
) -> AvailabilityKernel:
    """Compile path-set groups (the :func:`system_availability` input
    shape) into an :class:`AvailabilityKernel`, memoized by structure
    fingerprint.

    All groups compile into one shared manager: the system root is the
    conjunction of the group roots, and any component shared across pairs
    is a single decision level reused by every function that tests it.

    With an artifact store active (``REPRO_STORE``/``--store``) an LRU
    miss first tries the on-disk linearized arrays — a fresh process
    evaluating known structures performs zero BDD construction — and a
    fresh compile writes through for the next process.
    """
    groups = [list(group) for group in path_set_groups]
    if not groups:
        raise AnalysisError("system_availability requires at least one group")
    for group in groups:
        if not group:
            raise AnalysisError("a pair with no path sets is never connected")
    components = {c for group in groups for path in group for c in path}
    if not components:
        raise AnalysisError("system_availability requires at least one component")
    if order is None:
        ordered = frequency_order(groups)
    else:
        ordered = tuple(name for name in order if name in components)
        missing = components.difference(ordered)
        if missing:
            raise AnalysisError(
                f"variable order does not cover components {sorted(missing)}"
            )
    fingerprint = structure_fingerprint(groups, ordered)
    store = _store.active_store() if use_cache else None
    if use_cache:
        cached = _KERNELS.get(fingerprint)
        if cached is not None:
            return cached
        if store is not None:
            loaded = _kernel_from_store(store, fingerprint)
            if loaded is not None:
                _KERNELS.put(fingerprint, loaded, weight=loaded.size + 2)
                return loaded

    with _trace.span(
        "bdd.compile",
        variables=len(ordered),
        groups=len(groups),
        fingerprint=fingerprint,
    ) as span:
        bdd = BDD(len(ordered))
        index = {name: i for i, name in enumerate(ordered)}
        group_roots: List[int] = []
        for group in groups:
            root = BDD.FALSE
            for path in group:
                root = bdd.apply_or(root, bdd.cube(index[c] for c in path))
            group_roots.append(root)
        system = BDD.TRUE
        for root in dict.fromkeys(group_roots):
            system = bdd.apply_and(system, root)
        kernel = AvailabilityKernel(
            bdd, system, group_roots, ordered, fingerprint
        )
        span.set(nodes=len(bdd) - 2, ite_cache_hits=bdd.cache_hits)
    with _STATS_LOCK:
        _STATS["compilations"] += 1
    _M_COMPILATIONS.inc()
    _M_NODES_ALLOCATED.inc(len(bdd) - 2)
    _M_ITE_CACHE_HITS.inc(bdd.cache_hits)
    if use_cache:
        _KERNELS.put(fingerprint, kernel, weight=len(bdd))
        if store is not None:
            _kernel_to_store(store, kernel)
    return kernel


def compile_pair(
    path_sets: Sequence[FrozenSet[str]],
    *,
    order: Optional[Sequence[str]] = None,
    use_cache: bool = True,
) -> AvailabilityKernel:
    """Compile a single pair's path sets."""
    return compile_structure([list(path_sets)], order=order, use_cache=use_cache)


def _group_digest(canonical_group: Tuple[Tuple[str, ...], ...]) -> str:
    """blake2b digest of one canonicalized pair group — the unit of reuse
    for :class:`IncrementalAvailabilityKernel`."""
    digest = hashlib.blake2b(digest_size=16)
    for path in canonical_group:
        for component in path:
            digest.update(component.encode("utf-8"))
            digest.update(b"\x1f")
        digest.update(b"\x1d")
    return digest.hexdigest()


class IncrementalAvailabilityKernel:
    """A persistent BDD manager that recompiles only changed pair groups.

    :func:`compile_structure` memoizes *whole structures*: one changed
    path set gives a new structure fingerprint and rebuilds every group
    from scratch.  Under topology churn most pairs are untouched by any
    single event, so this class keeps one manager alive across epochs and
    caches each pair group's root by its content digest — a recompile
    after a link flap re-derives only the groups whose path sets actually
    changed and re-ANDs the (mostly cached) roots into a fresh system
    root.  This is the BDD half of the delta-aware invalidation story
    (the engine half is :func:`repro.core.engine.discover_delta`).

    Correctness constraints, and how they are met:

    * an ROBDD manager requires one global variable order — the order is
      held **stable across epochs**; components first seen in a later
      epoch are *appended* (largest indices, see :meth:`BDD.grow`), which
      keeps every existing node and cached group root valid;
    * dead nodes accumulate as group structures change — when the
      reachable fraction drops below ~1/4 the manager is rebuilt from
      scratch (order re-derived, group cache cleared), bounding memory;
    * the returned :class:`AvailabilityKernel` snapshots the reachable
      DAG at construction (``_linearize`` copies into flat arrays), so
      kernels handed to earlier epochs stay internally consistent while
      later recompiles grow the shared manager.

    Thread safety: :meth:`recompile` holds an internal lock; returned
    kernels are immutable snapshots and safe to read concurrently.
    """

    #: full rebuild when reachable nodes are under this fraction of the
    #: manager.  The slack must be generous: sequential OR chains leave
    #: mostly-dead intermediates behind, so live/total sits well under
    #: the fraction even in a healthy manager — a small slack makes every
    #: recompile rebuild, discarding all cached group roots
    _GC_FRACTION = 0.25
    _GC_SLACK = 1 << 19

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bdd: Optional[BDD] = None
        self._order: Tuple[str, ...] = ()
        self._group_roots: Dict[str, int] = {}
        self.stats = {
            "recompiles": 0,
            "group_hits": 0,
            "group_misses": 0,
            "rebuilds": 0,
        }

    def _rebuild(
        self,
        canonical: Tuple[Tuple[Tuple[str, ...], ...], ...],
        components: FrozenSet[str],
        order_hint: Optional[Sequence[str]],
    ) -> None:
        if order_hint is not None:
            ordered = tuple(n for n in order_hint if n in components)
            ordered += tuple(sorted(components.difference(ordered)))
        else:
            ordered = frequency_order(canonical)
        self._order = ordered
        self._bdd = BDD(len(ordered))
        self._group_roots = {}
        self.stats["rebuilds"] += 1
        _M_REBUILDS.inc()

    def recompile(
        self,
        path_set_groups: Sequence[Sequence[FrozenSet[str]]],
        *,
        order_hint: Optional[Sequence[str]] = None,
    ) -> AvailabilityKernel:
        """Compile *path_set_groups* reusing cached group roots.

        *order_hint* (e.g. :func:`order_from_topology`) seeds the
        variable order on the first build and after a garbage rebuild; in
        between it is ignored so the established order — and with it
        every cached root — survives topology mutations that would
        reshuffle CSR ids.
        """
        groups = [list(group) for group in path_set_groups]
        if not groups:
            raise AnalysisError(
                "system_availability requires at least one group"
            )
        for group in groups:
            if not group:
                raise AnalysisError(
                    "a pair with no path sets is never connected"
                )
        canonical = _canonical_groups(groups)
        components = frozenset(
            c for group in canonical for path in group for c in path
        )
        with self._lock, _trace.span(
            "bdd.recompile_delta", groups=len(groups)
        ) as span:
            if self._bdd is None:
                self._rebuild(canonical, components, order_hint)
            elif not components.issubset(self._order):
                grown = self._order + tuple(
                    sorted(components.difference(self._order))
                )
                self._order = grown
                self._bdd.grow(len(grown))
            bdd = self._bdd
            index = {name: i for i, name in enumerate(self._order)}
            hits = misses = 0
            group_roots: List[int] = []
            for group in canonical:
                digest = _group_digest(group)
                root = self._group_roots.get(digest)
                if root is None:
                    misses += 1
                    root = BDD.FALSE
                    for path in group:
                        root = bdd.apply_or(
                            root, bdd.cube(index[c] for c in path)
                        )
                    self._group_roots[digest] = root
                else:
                    hits += 1
                group_roots.append(root)
            system = BDD.TRUE
            for root in dict.fromkeys(group_roots):
                system = bdd.apply_and(system, root)
            kernel = AvailabilityKernel(
                bdd,
                system,
                group_roots,
                self._order,
                structure_fingerprint(groups, self._order),
            )
            self.stats["recompiles"] += 1
            self.stats["group_hits"] += hits
            self.stats["group_misses"] += misses
            _M_GROUP_HITS.inc(hits)
            _M_GROUP_MISSES.inc(misses)
            span.set(
                group_hits=hits,
                group_misses=misses,
                nodes=len(bdd) - 2,
                reachable=kernel.size,
            )
            # garbage pressure: schedule a fresh manager for the *next*
            # recompile once dead nodes dominate
            live = kernel.size + 2
            if len(bdd) > self._GC_SLACK and live < len(bdd) * self._GC_FRACTION:
                self._bdd = None
            return kernel


def system_availability_bdd(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    availabilities: Mapping[str, float],
    *,
    order: Optional[Sequence[str]] = None,
) -> float:
    """Drop-in BDD-backed equivalent of
    :func:`repro.analysis.exact.system_availability` (no component bound)."""
    return compile_structure(path_set_groups, order=order).availability(
        availabilities
    )


def pair_availability_bdd(
    path_sets: Sequence[FrozenSet[str]],
    availabilities: Mapping[str, float],
    *,
    order: Optional[Sequence[str]] = None,
) -> float:
    """Drop-in BDD-backed equivalent of
    :func:`repro.analysis.exact.pair_availability`."""
    return compile_pair(path_sets, order=order).availability(availabilities)


# -- counters (same shape as repro.core.engine.engine_stats) ------------------


def kernel_stats() -> Dict[str, int]:
    """Counters for tests and benchmarks: structure compilations and
    probability-vector evaluations, plus the kernel-cache tally."""
    with _STATS_LOCK:
        stats = dict(_STATS)
    stats["kernel_cache_hits"] = _KERNELS.hits
    stats["kernel_cache_misses"] = _KERNELS.misses
    return stats


def reset_kernel_stats() -> None:
    with _STATS_LOCK:
        _STATS["compilations"] = 0
        _STATS["evaluations"] = 0


def kernel_cache_info() -> Dict[str, int]:
    return {
        "hits": _KERNELS.hits,
        "misses": _KERNELS.misses,
        "currsize": len(_KERNELS.data),
        "maxsize": _KERNELS.maxsize,
        "weight": _KERNELS.total_weight,
    }


def kernel_cache_clear() -> None:
    """Drop every compiled kernel (the big hammer for tests/benchmarks;
    structure changes invalidate implicitly via the fingerprint key)."""
    _KERNELS.clear()
