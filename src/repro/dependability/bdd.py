"""Compiled availability kernel: reduced ordered binary decision diagrams.

The exact evaluators of :mod:`repro.analysis.exact` enumerate all 2^n
component states and :func:`repro.dependability.cutsets.inclusion_exclusion`
is exponential in the number of path sets — and both redo all of that work
for every (requester, provider) pair and for every fault combination of a
campaign sweep, even though the logical *structure* never changes between
evaluations.  This module compiles the structure once:

* the success function of a pair (OR over its path sets, each the AND of
  its components) — and of the whole service (AND over all distinct
  pairs) — is built as a reduced ordered BDD with a shared unique table,
  so components repeated across paths and across pairs appear once;
* availability is a single bottom-up pass over the DAG,
  ``P(node) = p·P(high) + (1-p)·P(low)`` — O(|BDD|) per probability
  vector instead of O(2^n);
* Birnbaum importances for *every* variable come from one extra top-down
  pass (node reach probabilities), and all classic importance measures
  derive from them by multilinearity;
* minimal cut sets and minimal path sets fall out of one memoized
  bottom-up recursion over the same DAG (the structure function is
  monotone — all literals are positive — so no complement handling is
  needed);
* :meth:`AvailabilityKernel.evaluate_many` batches k probability vectors
  through one vectorized numpy sweep — the campaign fast path.

Compiled kernels are memoized in a weight-bounded LRU keyed by a blake2b
fingerprint of the path-set structure and the variable order, mirroring
the engine's PathSet cache: a campaign that evaluates hundreds of fault
combinations against one UPSIM compiles the BDD once and then only
re-evaluates terminal probabilities.

Variable order matters for BDD size; :func:`order_from_topology` derives
it from the compiled engine's CSR ids so that topologically adjacent
components (and the links between them) get adjacent decision levels —
a good heuristic for network connectivity functions.  Without a topology
the fallback orders by descending occurrence frequency.
"""

from __future__ import annotations

import atexit
import hashlib
import threading
from collections import Counter
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro import store as _store
from repro.core.engine import _LRU, compile_topology
from repro.dependability import _bddreorder
from repro.dependability._bddtables import ComputedTable, UniqueTable
from repro.dependability.cutsets import minimize_sets
from repro.errors import AnalysisError, StoreError
from repro.network.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "BDD",
    "AvailabilityKernel",
    "IncrementalAvailabilityKernel",
    "perturbed_sweep",
    "evaluate_perturbed_arrays",
    "compile_structure",
    "compile_many",
    "compile_pair",
    "configure_compile",
    "structure_fingerprint",
    "frequency_order",
    "order_from_topology",
    "system_availability_bdd",
    "pair_availability_bdd",
    "kernel_stats",
    "reset_kernel_stats",
    "kernel_cache_info",
    "kernel_cache_clear",
]


#: apply-operation tags (double as :class:`ComputedTable` key prefixes)
_OP_AND = 0
_OP_OR = 1
_OP_ITE = 2

#: below this many requests the bulk paths fall back to scalar loops —
#: numpy call overhead beats vectorization on tiny batches, which keeps
#: small compiles (and the 10k-deep series chain) at dict-era speed
_SCALAR_CUTOFF = 4


class BDD:
    """A reduced ordered BDD manager over variables ``0 … nvar-1``.

    Nodes live in parallel **int64 numpy buffers** (``_var``/``_low``/
    ``_high``, capacity-doubled) indexed by node id, with plain-list
    mirrors serving the scalar hot loops; ids 0 and 1 are the FALSE/TRUE
    terminals (their ``var`` is the out-of-range sentinel ``nvar``, which
    makes "smallest variable on top" comparisons uniform).  The
    open-addressed :class:`~repro.dependability._bddtables.UniqueTable`
    guarantees one node per (var, low, high) triple, so structurally
    equal functions are pointer equal and the apply caches can key on ids
    alone.

    Construction is never recursive: the scalar ``apply_*``/``ite``
    operations run an explicit worklist, and :meth:`apply_many` batches
    whole frontiers of apply requests through vectorized
    level-synchronous sweeps — deep composition structures cannot hit the
    interpreter recursion limit, and wide ones amortize per-node Python
    overhead across numpy calls.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, nvar: int):
        self.nvar = nvar
        capacity = 1 << 10
        self._var = np.empty(capacity, dtype=np.int64)
        self._low = np.empty(capacity, dtype=np.int64)
        self._high = np.empty(capacity, dtype=np.int64)
        self._var[0] = self._var[1] = nvar
        self._low[0], self._low[1] = 0, 1
        self._high[0], self._high[1] = 0, 1
        self._n = 2
        self._var_l: List[int] = [nvar, nvar]
        self._low_l: List[int] = [0, 1]
        self._high_l: List[int] = [0, 1]
        self._unique = UniqueTable()
        self._computed = ComputedTable()
        #: memoized apply/ITE results reused during construction
        self.cache_hits = 0

    # node fields are exposed as the list mirrors so callers keep the
    # seed-era ``bdd.var[node]`` access pattern
    @property
    def var(self) -> List[int]:
        return self._var_l

    @property
    def low(self) -> List[int]:
        return self._low_l

    @property
    def high(self) -> List[int]:
        return self._high_l

    def __len__(self) -> int:
        return self._n

    def table_stats(self) -> Dict[str, int]:
        """Probe/rehash tallies of both open-addressed tables."""
        return {
            "unique_probes": self._unique.probes,
            "unique_rehashes": self._unique.rehashes,
            "unique_capacity": self._unique.capacity,
            "unique_fill": self._unique.fill,
            "computed_probes": self._computed.probes,
            "computed_rehashes": self._computed.rehashes,
            "computed_capacity": self._computed.capacity,
            "computed_fill": self._computed.fill,
            "nodes": self._n,
        }

    # -- allocation -----------------------------------------------------------

    def _grow_buffers(self, need: int) -> None:
        capacity = self._var.size
        while capacity < need:
            capacity *= 2
        for name in ("_var", "_low", "_high"):
            old = getattr(self, name)
            buf = np.empty(capacity, dtype=np.int64)
            buf[: self._n] = old[: self._n]
            setattr(self, name, buf)

    def _append_node(self, v: int, lo: int, hi: int) -> int:
        node = self._n
        if node >= self._var.size:
            self._grow_buffers(node + 1)
        self._var[node] = v
        self._low[node] = lo
        self._high[node] = hi
        self._n = node + 1
        self._var_l.append(v)
        self._low_l.append(lo)
        self._high_l.append(hi)
        return node

    def _append_nodes(
        self, v: int, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        k = lo.size
        start = self._n
        if start + k > self._var.size:
            self._grow_buffers(start + k)
        self._var[start : start + k] = v
        self._low[start : start + k] = lo
        self._high[start : start + k] = hi
        self._n = start + k
        self._var_l.extend([v] * k)
        self._low_l.extend(lo.tolist())
        self._high_l.extend(hi.tolist())
        return np.arange(start, start + k, dtype=np.int64)

    def mk(self, variable: int, low: int, high: int) -> int:
        """The unique node for (variable, low, high), reduced."""
        if low == high:
            return low
        return self._unique.lookup_or_insert(self, variable, low, high)

    def mk_many(
        self, variable: int, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """Unique node ids for a batch of (variable, low, high) requests
        (requests may repeat; reduction and hash-consing are applied
        exactly as in :meth:`mk`)."""
        low = np.asarray(low, dtype=np.int64)
        high = np.asarray(high, dtype=np.int64)
        k = low.size
        if k <= _SCALAR_CUTOFF:
            return np.fromiter(
                (
                    self.mk(variable, int(lo), int(hi))
                    for lo, hi in zip(low, high)
                ),
                dtype=np.int64,
                count=k,
            )
        out = np.empty(k, dtype=np.int64)
        same = low == high
        out[same] = low[same]
        todo = ~same
        if todo.any():
            lo_t = low[todo]
            hi_t = high[todo]
            keys = (lo_t << 32) | hi_t
            _, first, inv = np.unique(
                keys, return_index=True, return_inverse=True
            )
            ids = self._unique.insert_many(
                self, variable, lo_t[first], hi_t[first]
            )
            out[todo] = ids[inv]
        return out

    def grow(self, nvar: int) -> None:
        """Extend the variable universe to *nvar* (append-only).

        New variables take the largest indices, so every existing node is
        still correctly ordered and every apply/unique-table entry stays
        valid; only the terminal sentinel (``var == nvar``) moves.
        """
        if nvar < self.nvar:
            raise AnalysisError(
                f"cannot shrink a BDD manager from {self.nvar} to {nvar} "
                f"variables"
            )
        self.nvar = nvar
        self._var[0] = self._var[1] = nvar
        self._var_l[0] = self._var_l[1] = nvar

    def cube(self, variables: Iterable[int]) -> int:
        """The conjunction of positive literals — one path's success."""
        node = self.TRUE
        for variable in sorted(set(variables), reverse=True):
            node = self.mk(variable, self.FALSE, node)
        return node

    def cube_many(self, paths: Sequence[Iterable[int]]) -> np.ndarray:
        """One :meth:`cube` root per path, built level-synchronously:
        all paths' literals at the deepest variable become one
        :meth:`mk_many` call, then the next level up, and so on."""
        k = len(paths)
        out = np.full(k, self.TRUE, dtype=np.int64)
        rows_l: List[int] = []
        vars_l: List[int] = []
        for row, path in enumerate(paths):
            distinct = set(path)
            rows_l.extend([row] * len(distinct))
            vars_l.extend(distinct)
        if not vars_l:
            return out
        va = np.array(vars_l, dtype=np.int64)
        ra = np.array(rows_l, dtype=np.int64)
        order = np.argsort(-va, kind="stable")
        va = va[order]
        ra = ra[order]
        boundaries = np.flatnonzero(np.diff(va)) + 1
        start = 0
        for stop in [*boundaries.tolist(), va.size]:
            v = int(va[start])
            rows = ra[start:stop]
            if rows.size <= _SCALAR_CUTOFF:
                for row in rows.tolist():
                    out[row] = self.mk(v, self.FALSE, int(out[row]))
            else:
                out[rows] = self.mk_many(
                    v, np.zeros(rows.size, dtype=np.int64), out[rows]
                )
            start = stop
        return out

    # -- scalar apply / ITE (iterative worklists) -----------------------------

    def _apply_scalar(self, op: int, f: int, g: int) -> int:
        """AND/OR of two nodes via an explicit two-phase worklist (CALL
        frames expand cofactors, RESUME frames fold children) — no
        interpreter recursion, identical memoization to the seed-era
        recursive apply."""
        computed = self._computed
        var_l, low_l, high_l = self._var_l, self._low_l, self._high_l
        hits = 0
        results: List[int] = []
        stack: List[Tuple[int, ...]] = [(0, f, g)]
        while stack:
            frame = stack.pop()
            if frame[0] == 0:  # CALL
                _, a, b = frame
                if op == _OP_AND:
                    if a == 0 or b == 0:
                        results.append(0)
                        continue
                    if a == 1:
                        results.append(b)
                        continue
                    if b == 1 or a == b:
                        results.append(a)
                        continue
                else:
                    if a == 1 or b == 1:
                        results.append(1)
                        continue
                    if a == 0:
                        results.append(b)
                        continue
                    if b == 0 or a == b:
                        results.append(a)
                        continue
                if a > b:
                    a, b = b, a
                cached = computed.get(op, a, b)
                if cached is not None:
                    hits += 1
                    results.append(cached)
                    continue
                top = min(var_l[a], var_l[b])
                if var_l[a] == top:
                    a0, a1 = low_l[a], high_l[a]
                else:
                    a0 = a1 = a
                if var_l[b] == top:
                    b0, b1 = low_l[b], high_l[b]
                else:
                    b0 = b1 = b
                stack.append((1, a, b, top))  # RESUME
                stack.append((0, a1, b1))
                stack.append((0, a0, b0))
            else:  # RESUME
                _, a, b, top = frame
                r1 = results.pop()
                r0 = results.pop()
                node = self.mk(top, r0, r1)
                computed.put(op, a, b, node)
                results.append(node)
        if hits:
            self.cache_hits += hits
            _note_cache_hits(hits)
        return results.pop()

    def apply_and(self, f: int, g: int) -> int:
        return self._apply_scalar(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply_scalar(_OP_OR, f, g)

    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else — the general apply, needed for voting gates."""
        computed = self._computed
        var_l, low_l, high_l = self._var_l, self._low_l, self._high_l
        hits = 0
        results: List[int] = []
        stack: List[Tuple[int, ...]] = [(0, f, g, h)]
        while stack:
            frame = stack.pop()
            if frame[0] == 0:  # CALL
                _, a, b, c = frame
                if a == 1:
                    results.append(b)
                    continue
                if a == 0:
                    results.append(c)
                    continue
                if b == c:
                    results.append(b)
                    continue
                if b == 1 and c == 0:
                    results.append(a)
                    continue
                cached = computed.get(_OP_ITE, a, b, c)
                if cached is not None:
                    hits += 1
                    results.append(cached)
                    continue
                top = min(var_l[a], var_l[b], var_l[c])
                a0, a1 = (
                    (low_l[a], high_l[a]) if var_l[a] == top else (a, a)
                )
                b0, b1 = (
                    (low_l[b], high_l[b]) if var_l[b] == top else (b, b)
                )
                c0, c1 = (
                    (low_l[c], high_l[c]) if var_l[c] == top else (c, c)
                )
                stack.append((1, a, b, c, top))  # RESUME
                stack.append((0, a1, b1, c1))
                stack.append((0, a0, b0, c0))
            else:  # RESUME
                _, a, b, c, top = frame
                r1 = results.pop()
                r0 = results.pop()
                node = self.mk(top, r0, r1)
                computed.put(_OP_ITE, a, b, node, c)
                results.append(node)
        if hits:
            self.cache_hits += hits
            _note_cache_hits(hits)
        return results.pop()

    # -- bulk apply (level-synchronous breadth-first) -------------------------

    @staticmethod
    def _rules_vec(op: int, f: np.ndarray, g: np.ndarray) -> np.ndarray:
        """Vectorized terminal rules: result id, or -1 when the request
        needs cofactor expansion."""
        if op == _OP_AND:
            return np.where(
                (f == 0) | (g == 0),
                0,
                np.where(f == 1, g, np.where((g == 1) | (f == g), f, -1)),
            ).astype(np.int64)
        return np.where(
            (f == 1) | (g == 1),
            1,
            np.where(f == 0, g, np.where((g == 0) | (f == g), f, -1)),
        ).astype(np.int64)

    def apply_many(self, op: int, f: np.ndarray, g: np.ndarray) -> np.ndarray:
        """AND/OR over k (f, g) request pairs in one breadth-first sweep.

        Requests are bucketed by their top variable; each level resolves
        terminal rules vectorized, probes the computed table in bulk,
        expands the misses' cofactors, and defers child results as
        (level, slot) references.  A bottom-up pass then materializes
        nodes level by level through :meth:`mk_many` — per-node Python
        overhead is amortized over whole frontiers.  Results are exactly
        those of :meth:`apply_and`/:meth:`apply_or` (same manager, same
        canonical nodes, same memo semantics).
        """
        f = np.asarray(f, dtype=np.int64)
        g = np.asarray(g, dtype=np.int64)
        k = f.size
        if k == 0:
            return np.empty(0, dtype=np.int64)
        if k <= _SCALAR_CUTOFF:
            return np.fromiter(
                (
                    self._apply_scalar(op, int(a), int(b))
                    for a, b in zip(f, g)
                ),
                dtype=np.int64,
                count=k,
            )
        out = np.empty(k, dtype=np.int64)
        resolved = self._rules_vec(op, f, g)
        pend = resolved < 0
        out[~pend] = resolved[~pend]
        if not pend.any():
            return out
        pf = np.minimum(f[pend], g[pend])
        pg = np.maximum(f[pend], g[pend])
        nvar = self.nvar
        cand_f: List[List[np.ndarray]] = [[] for _ in range(nvar)]
        cand_g: List[List[np.ndarray]] = [[] for _ in range(nvar)]
        cand_n = [0] * nvar
        hits = 0

        def push(fa: np.ndarray, ga: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            """Queue requests on their top-variable level; returns
            (level, slot-in-level) references."""
            var_a = self._var
            levels = np.minimum(var_a[fa], var_a[ga])
            idx = np.empty(fa.size, dtype=np.int64)
            order = np.argsort(levels, kind="stable")
            ls = levels[order]
            bounds = np.flatnonzero(np.diff(ls)) + 1
            start = 0
            for stop in [*bounds.tolist(), ls.size]:
                v = int(ls[start])
                rows = order[start:stop]
                base = cand_n[v]
                cand_f[v].append(fa[rows])
                cand_g[v].append(ga[rows])
                cand_n[v] = base + rows.size
                idx[rows] = np.arange(base, base + rows.size)
                start = stop
            return levels, idx

        root_lev, root_idx = push(pf, pg)
        lvl_inv: List[Optional[np.ndarray]] = [None] * nvar
        lvl_res: List[Optional[np.ndarray]] = [None] * nvar
        lvl_work: List[Optional[tuple]] = [None] * nvar
        processed: List[int] = []
        computed = self._computed
        for v in range(nvar):
            if cand_n[v] == 0:
                continue
            processed.append(v)
            fa = (
                cand_f[v][0]
                if len(cand_f[v]) == 1
                else np.concatenate(cand_f[v])
            )
            ga = (
                cand_g[v][0]
                if len(cand_g[v]) == 1
                else np.concatenate(cand_g[v])
            )
            cand_f[v] = cand_g[v] = []  # free the chunks
            keys = (fa << 32) | ga
            _, first, inv = np.unique(
                keys, return_index=True, return_inverse=True
            )
            uf = fa[first]
            ug = ga[first]
            lvl_inv[v] = inv
            res = np.empty(uf.size, dtype=np.int64)
            cached, found = computed.get_many(op, uf, ug)
            nhits = int(found.sum())
            if nhits:
                hits += nhits
                res[found] = cached[found]
            lvl_res[v] = res
            todo = np.flatnonzero(~found)
            if not todo.size:
                continue
            var_a, low_a, high_a = self._var, self._low, self._high
            ft = uf[todo]
            gt = ug[todo]
            f_at = var_a[ft] == v
            g_at = var_a[gt] == v
            f0 = np.where(f_at, low_a[ft], ft)
            f1 = np.where(f_at, high_a[ft], ft)
            g0 = np.where(g_at, low_a[gt], gt)
            g1 = np.where(g_at, high_a[gt], gt)
            refs = []
            for ca, cb in ((f0, g0), (f1, g1)):
                rv = self._rules_vec(op, ca, cb)
                cpend = rv < 0
                clev = np.full(ca.size, -1, dtype=np.int64)
                cidx = rv
                if cpend.any():
                    cf = np.minimum(ca[cpend], cb[cpend])
                    cg = np.maximum(ca[cpend], cb[cpend])
                    levs, idxs = push(cf, cg)
                    clev[cpend] = levs
                    cidx[cpend] = idxs
                refs.append((clev, cidx))
            lvl_work[v] = (todo, ft, gt, refs)

        def resolve(levels: np.ndarray, idxs: np.ndarray) -> np.ndarray:
            vals = np.empty(levels.size, dtype=np.int64)
            direct = levels < 0
            vals[direct] = idxs[direct]
            rest = np.flatnonzero(~direct)
            if rest.size:
                levs = levels[rest]
                for lv in np.unique(levs).tolist():
                    rows = rest[levs == lv]
                    vals[rows] = lvl_res[lv][lvl_inv[lv][idxs[rows]]]
            return vals

        for v in reversed(processed):
            work = lvl_work[v]
            if work is None:
                continue
            todo, ft, gt, ((l0, i0), (l1, i1)) = work
            lo = resolve(l0, i0)
            hi = resolve(l1, i1)
            ids = self.mk_many(v, lo, hi)
            lvl_res[v][todo] = ids
            computed.put_many(op, ft, gt, ids)
        out[pend] = resolve(root_lev, root_idx)
        if hits:
            self.cache_hits += hits
            _note_cache_hits(hits)
        return out

    def reduce_many(
        self, op: int, groups: Sequence[np.ndarray]
    ) -> List[int]:
        """Fold each group of node ids under *op* (AND/OR) by balanced
        binary reduction, batching every group's pair list into one
        :meth:`apply_many` call per round.  ROBDD canonicity makes the
        result independent of association order, so this equals the
        sequential seed-era fold node-for-node."""
        identity = self.TRUE if op == _OP_AND else self.FALSE
        cur = [np.asarray(group, dtype=np.int64) for group in groups]
        while max((c.size for c in cur), default=0) > 1:
            fa_parts: List[np.ndarray] = []
            ga_parts: List[np.ndarray] = []
            metas: List[Tuple[int, np.ndarray]] = []
            for arr in cur:
                npairs = arr.size // 2
                fa_parts.append(arr[0 : 2 * npairs : 2])
                ga_parts.append(arr[1 : 2 * npairs : 2])
                metas.append((npairs, arr[2 * npairs :]))
            fa = np.concatenate(fa_parts)
            ga = np.concatenate(ga_parts)
            res = self.apply_many(op, fa, ga)
            nxt: List[np.ndarray] = []
            pos = 0
            for npairs, carry in metas:
                chunk = res[pos : pos + npairs]
                pos += npairs
                nxt.append(
                    np.concatenate((chunk, carry)) if carry.size else chunk
                )
            cur = nxt
        return [int(c[0]) if c.size else identity for c in cur]


_STATS_LOCK = threading.Lock()
_STATS = {"compilations": 0, "evaluations": 0, "cache_hits": 0}

#: Compiled kernels keyed by structure fingerprint.  The weight budget
#: (total BDD nodes retained) mirrors the engine's PathSet cache: a sweep
#: over many structures cannot grow memory without bound.
_KERNELS = _LRU(maxsize=256, max_weight=2_000_000)

_M_COMPILATIONS = _metrics.counter(
    "repro_bdd_compilations_total",
    "Structure compilations into the BDD availability kernel",
)
_M_NODES_ALLOCATED = _metrics.counter(
    "repro_bdd_nodes_allocated_total",
    "Decision nodes allocated across BDD compilations",
)
_M_ITE_CACHE_HITS = _metrics.counter(
    "repro_bdd_ite_cache_hits_total",
    "Apply/ITE memo hits while building BDD structure functions",
)
_M_EVALUATIONS = _metrics.counter(
    "repro_bdd_evaluations_total",
    "Probability-vector evaluations on compiled kernels",
)
_M_GROUP_HITS = _metrics.counter(
    "repro_bdd_group_root_hits_total",
    "Pair-group roots reused across incremental recompiles",
)
_M_GROUP_MISSES = _metrics.counter(
    "repro_bdd_group_root_misses_total",
    "Pair-group roots built from scratch during incremental recompiles",
)
_M_REBUILDS = _metrics.counter(
    "repro_bdd_incremental_rebuilds_total",
    "Full manager rebuilds forced by order changes or garbage pressure",
)
_metrics.gauge(
    "repro_bdd_kernel_cache_hits", "Compiled-kernel LRU cache hits"
).set_function(lambda: _KERNELS.hits)
_metrics.gauge(
    "repro_bdd_kernel_cache_misses", "Compiled-kernel LRU cache misses"
).set_function(lambda: _KERNELS.misses)
_metrics.gauge(
    "repro_bdd_kernel_cache_entries", "Compiled kernels currently cached"
).set_function(lambda: len(_KERNELS.data))
_metrics.gauge(
    "repro_bdd_kernel_cache_weight",
    "Total BDD nodes retained by the kernel cache",
).set_function(lambda: _KERNELS.total_weight)


_M_TABLE_PROBES = _metrics.counter(
    "repro_bdd_table_probes_total",
    "Open-addressed unique/computed table probe steps during compiles",
)
_M_TABLE_REHASHES = _metrics.counter(
    "repro_bdd_table_rehashes_total",
    "Open-addressed table growth rehashes during compiles",
)
_M_REORDER_PASSES = _metrics.counter(
    "repro_bdd_reorder_passes_total",
    "Sifting reorder passes run over compiled managers",
)
_M_REORDER_SWAPS = _metrics.counter(
    "repro_bdd_reorder_swaps_total",
    "Adjacent-level swaps performed while sifting",
)
_M_REORDER_NODES_SAVED = _metrics.counter(
    "repro_bdd_reorder_nodes_saved_total",
    "Decision nodes eliminated by sifting reorders",
)


def _count_evaluation(count: int = 1) -> None:
    with _STATS_LOCK:
        _STATS["evaluations"] += count
    _M_EVALUATIONS.inc(count)


def _note_cache_hits(count: int) -> None:
    """Flush apply/ITE memo hits into the stats/metrics layer as they
    happen — :func:`kernel_stats` reflects hits live, not only at
    :func:`compile_structure` exit."""
    with _STATS_LOCK:
        _STATS["cache_hits"] += count
    _M_ITE_CACHE_HITS.inc(count)


def _flush_table_metrics(bdd: "BDD") -> None:
    stats = bdd.table_stats()
    _M_TABLE_PROBES.inc(stats["unique_probes"] + stats["computed_probes"])
    _M_TABLE_REHASHES.inc(
        stats["unique_rehashes"] + stats["computed_rehashes"]
    )


class AvailabilityKernel:
    """A compiled service structure: one BDD, many cheap evaluations.

    Holds the system root (conjunction over all pair functions) plus one
    root per pair group, all in the same manager — pairs share subgraphs
    wherever their paths share components.  All queries are passes over
    the linearized DAG:

    * :meth:`availability` / :meth:`unavailability` — one bottom-up pass;
    * :meth:`evaluate_all` — the same pass, also reporting every pair root;
    * :meth:`evaluate_many` — the pass vectorized over k probability
      vectors (numpy row operations);
    * :meth:`birnbaum` — one bottom-up plus one top-down pass, giving the
      importance of **every** variable at once;
    * :meth:`minimal_cut_sets` / :meth:`minimal_path_sets` — one memoized
      bottom-up recursion.
    """

    def __init__(
        self,
        bdd: BDD,
        root: int,
        group_roots: Sequence[int],
        variables: Sequence[str],
        fingerprint: str = "",
    ):
        self._bdd = bdd
        self.root = root
        self.group_roots = tuple(group_roots)
        self.variables = tuple(variables)
        self.index = {name: i for i, name in enumerate(self.variables)}
        self.fingerprint = fingerprint
        self._linearize()

    # -- layout ---------------------------------------------------------------

    def _linearize(self) -> None:
        """Topologically order the reachable DAG into flat arrays.

        In an ordered BDD every edge goes from a smaller variable index to
        a larger one (or to a terminal), so sorting non-terminal nodes by
        *descending* variable yields a valid bottom-up evaluation order.
        Positions 0 and 1 are the FALSE/TRUE terminals.
        """
        bdd = self._bdd
        n = bdd._n
        var_a = bdd._var[:n]
        low_a = bdd._low[:n]
        high_a = bdd._high[:n]
        reached = np.zeros(n, dtype=bool)
        reached[0] = reached[1] = True
        roots = np.unique(
            np.array([self.root, *self.group_roots], dtype=np.int64)
        )
        frontier = roots[~reached[roots]]
        reached[frontier] = True
        # wave-order BFS: each round gathers both children of the whole
        # frontier at once — reachability is a few array passes, not a
        # per-node Python loop
        while frontier.size:
            kids = np.unique(
                np.concatenate((low_a[frontier], high_a[frontier]))
            )
            kids = kids[~reached[kids]]
            reached[kids] = True
            frontier = kids
        interior = np.flatnonzero(reached)
        interior = interior[interior > 1]
        interior = interior[np.lexsort((interior, -var_a[interior]))]
        position = np.zeros(n, dtype=np.int64)
        position[1] = 1
        position[interior] = np.arange(2, interior.size + 2)
        self._np_var = var_a[interior].astype(np.intp)
        self._np_low = position[low_a[interior]].astype(np.intp)
        self._np_high = position[high_a[interior]].astype(np.intp)
        self._var_ix = self._np_var.tolist()
        self._low_pos = self._np_low.tolist()
        self._high_pos = self._np_high.tolist()
        # frozen: these views are shared with shard workers, cached across
        # callers, and (for store-loaded kernels) mmap-backed — a caller
        # mutating them in place would silently corrupt every consumer
        self._np_var.flags.writeable = False
        self._np_low.flags.writeable = False
        self._np_high.flags.writeable = False
        self._root_pos = int(position[self.root])
        self._group_pos = tuple(int(position[r]) for r in self.group_roots)
        #: number of interior (decision) nodes reachable from the roots
        self.size = int(interior.size)

    @classmethod
    def from_flat(
        cls,
        var_ix: np.ndarray,
        low_pos: np.ndarray,
        high_pos: np.ndarray,
        root_pos: int,
        group_pos: Sequence[int],
        variables: Sequence[str],
        fingerprint: str = "",
    ) -> "AvailabilityKernel":
        """Rebuild a kernel from its linearized arrays — no BDD manager.

        This is the warm-start constructor: :mod:`repro.store` persists
        exactly the :meth:`flat_arrays` shape (plus the group positions
        and variable names), and every evaluation/importance/set query
        runs on the linearized DAG alone, so a loaded kernel is fully
        equivalent to the freshly compiled one — bit-identical results,
        zero compilation work.  ``root``/``group_roots`` (manager node
        ids) are ``None`` on such kernels; all queries go through the
        position-space fields.
        """
        self = object.__new__(cls)
        self._bdd = None
        self.root = None
        self.group_roots = None
        self.variables = tuple(variables)
        self.index = {name: i for i, name in enumerate(self.variables)}
        self.fingerprint = fingerprint
        var = np.asarray(var_ix, dtype=np.intp)
        low = np.asarray(low_pos, dtype=np.intp)
        high = np.asarray(high_pos, dtype=np.intp)
        n = len(var)
        if len(low) != n or len(high) != n:
            raise AnalysisError(
                f"flat kernel arrays disagree on node count: "
                f"{n}/{len(low)}/{len(high)}"
            )
        if n and (
            int(var.min()) < 0
            or int(var.max()) >= len(self.variables)
            or int(low.min()) < 0
            or int(high.min()) < 0
            or int(low.max()) >= n + 2
            or int(high.max()) >= n + 2
        ):
            raise AnalysisError("flat kernel arrays reference out-of-range ids")
        for array in (var, low, high):
            if array.flags.writeable:
                array.flags.writeable = False
        self._np_var = var
        self._np_low = low
        self._np_high = high
        self._var_ix = var.tolist()
        self._low_pos = low.tolist()
        self._high_pos = high.tolist()
        self._root_pos = int(root_pos)
        self._group_pos = tuple(int(g) for g in group_pos)
        for pos in (self._root_pos, *self._group_pos):
            if not 0 <= pos < n + 2:
                raise AnalysisError(
                    f"flat kernel root/group position {pos} out of range"
                )
        self.size = n
        return self

    # -- probability vectors --------------------------------------------------

    def probability_vector(self, availabilities: Mapping[str, float]) -> np.ndarray:
        """The kernel-ordered numpy vector for a component→availability
        table (extra table entries are ignored; missing ones raise)."""
        missing = [name for name in self.variables if name not in availabilities]
        if missing:
            raise AnalysisError(f"no availability for components {missing}")
        vector = np.empty(len(self.variables), dtype=np.float64)
        for i, name in enumerate(self.variables):
            value = availabilities[name]
            if not 0.0 <= value <= 1.0:
                raise AnalysisError(
                    f"availability of {name!r} must be in [0, 1], got {value}"
                )
            vector[i] = value
        return vector

    # -- evaluation -----------------------------------------------------------

    def _values(self, p: np.ndarray) -> List[float]:
        """Bottom-up node probabilities for one probability vector."""
        values = [0.0] * (len(self._var_ix) + 2)
        values[1] = 1.0
        var_ix, low, high = self._var_ix, self._low_pos, self._high_pos
        for k in range(len(var_ix)):
            pv = p[var_ix[k]]
            values[k + 2] = pv * values[high[k]] + (1.0 - pv) * values[low[k]]
        return values

    def availability(self, availabilities: Mapping[str, float]) -> float:
        """P(system structure function is true) — one O(|BDD|) pass."""
        p = self.probability_vector(availabilities)
        _count_evaluation()
        return self._values(p)[self._root_pos]

    def unavailability(self, availabilities: Mapping[str, float]) -> float:
        return 1.0 - self.availability(availabilities)

    def pair_availability(
        self, group: int, availabilities: Mapping[str, float]
    ) -> float:
        """Availability of one pair's root (index into the compiled groups)."""
        p = self.probability_vector(availabilities)
        _count_evaluation()
        return self._values(p)[self._group_pos[group]]

    def evaluate_all(
        self, availabilities: Mapping[str, float]
    ) -> Tuple[float, Tuple[float, ...]]:
        """(system availability, per-group availabilities) in one pass."""
        p = self.probability_vector(availabilities)
        _count_evaluation()
        values = self._values(p)
        return values[self._root_pos], tuple(values[g] for g in self._group_pos)

    def evaluate_vector(
        self, p: np.ndarray
    ) -> Tuple[float, Tuple[float, ...]]:
        """(system, per-group) availabilities for one kernel-ordered raw
        vector — :meth:`evaluate_all` without the mapping validation.

        The churn evaluator uses this with 0.0 defaults for variables
        absent from the current model epoch: an incremental kernel's
        variable set only grows, and variables no longer referenced by
        any live group are unreachable from the evaluated roots, so their
        probability never influences the result.
        """
        p = np.asarray(p, dtype=np.float64)
        if p.ndim != 1 or p.shape[0] != len(self.variables):
            raise AnalysisError(
                f"probability vector must have shape "
                f"({len(self.variables)},), got {p.shape}"
            )
        _count_evaluation()
        values = self._values(p)
        return values[self._root_pos], tuple(
            values[g] for g in self._group_pos
        )

    def evaluate_many(
        self,
        tables: Union[np.ndarray, Sequence[Mapping[str, float]]],
        *,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """System availability for k probability vectors in one vectorized
        sweep — the campaign/what-if batch fast path.

        *tables* is either a (k, n_variables) float array in kernel
        variable order (see :meth:`probability_vector`) or a sequence of
        component→availability mappings.  *out* (when given) receives the
        k results in place and is returned — no trailing allocation/copy,
        matching :meth:`evaluate_perturbed`'s discipline; it must be a
        float64 vector of length k.
        """
        if isinstance(tables, np.ndarray):
            matrix = np.asarray(tables, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[1] != len(self.variables):
                raise AnalysisError(
                    f"probability matrix must be (k, {len(self.variables)}), "
                    f"got {matrix.shape}"
                )
        else:
            matrix = np.stack(
                [self.probability_vector(table) for table in tables]
            ) if tables else np.empty((0, len(self.variables)))
        k = matrix.shape[0]
        if out is not None:
            if (
                not isinstance(out, np.ndarray)
                or out.shape != (k,)
                or out.dtype != np.float64
            ):
                raise AnalysisError(
                    f"out must be a float64 array of shape ({k},)"
                )
        if k == 0:
            return out if out is not None else np.empty(0, dtype=np.float64)
        _count_evaluation(k)
        values = np.empty((len(self._var_ix) + 2, k), dtype=np.float64)
        values[0] = 0.0
        values[1] = 1.0
        var_ix, low, high = self._var_ix, self._low_pos, self._high_pos
        for i in range(len(var_ix)):
            pv = matrix[:, var_ix[i]]
            values[i + 2] = pv * values[high[i]] + (1.0 - pv) * values[low[i]]
        if out is None:
            return values[self._root_pos].copy()
        out[:] = values[self._root_pos]
        return out

    def evaluate_many_all(
        self,
        tables: Union[np.ndarray, Sequence[Mapping[str, float]]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(system, per-group)`` availabilities for k probability vectors
        in one vectorized sweep.

        :meth:`evaluate_many` extended with the group roots: the same
        bottom-up pass over the linearized DAG, but the per-group node
        values are read off alongside the system root.  This is the
        one-pass multi-dimension fast path (:mod:`repro.dimensions`
        stacks one probability table per dimension and evaluates them
        all in a single traversal).  Returns ``(roots, groups)`` with
        shapes ``(k,)`` and ``(k, n_groups)``.
        """
        if isinstance(tables, np.ndarray):
            matrix = np.asarray(tables, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[1] != len(self.variables):
                raise AnalysisError(
                    f"probability matrix must be (k, {len(self.variables)}), "
                    f"got {matrix.shape}"
                )
        else:
            matrix = np.stack(
                [self.probability_vector(table) for table in tables]
            ) if tables else np.empty((0, len(self.variables)))
        k = matrix.shape[0]
        n_groups = len(self._group_pos)
        if k == 0:
            return (
                np.empty(0, dtype=np.float64),
                np.empty((0, n_groups), dtype=np.float64),
            )
        _count_evaluation(k)
        values = np.empty((len(self._var_ix) + 2, k), dtype=np.float64)
        values[0] = 0.0
        values[1] = 1.0
        var_ix, low, high = self._var_ix, self._low_pos, self._high_pos
        for i in range(len(var_ix)):
            pv = matrix[:, var_ix[i]]
            values[i + 2] = pv * values[high[i]] + (1.0 - pv) * values[low[i]]
        roots = values[self._root_pos].copy()
        groups = np.empty((k, n_groups), dtype=np.float64)
        for j, pos in enumerate(self._group_pos):
            groups[:, j] = values[pos]
        return roots, groups

    def flat_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """The linearized DAG as ``(var, low, high, root_pos)`` numpy
        arrays — the shape the sharding plane ships to workers and the
        artifact store persists (see :mod:`repro.workload.sharding` and
        :mod:`repro.store`).  ``var`` indexes :attr:`variables`;
        ``low``/``high`` are positions in the evaluation array (0/1 are
        the FALSE/TRUE terminals, interior node *i* lives at position
        ``i + 2``).  The views are **read-only** — they are shared by
        every consumer of this kernel (and may be mmap-backed)."""
        return self._np_var, self._np_low, self._np_high, self._root_pos

    def evaluate_perturbed(
        self,
        base: np.ndarray,
        var: int,
        values: np.ndarray,
        *,
        batch_rows: int = 65536,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """System availability when every variable holds its *base*
        probability except variable *var*, which sweeps over *values*.

        The population evaluation plane's workhorse: users sharing one
        attachment point and service differ only in the availability of
        their own access device, so the k distinct per-user annotations
        collapse to one scalar base vector plus a k-vector at a single
        decision variable.  Memory is O(k · nodes-above-*var*) instead of
        the (k, n_variables) annotation matrix :meth:`evaluate_many`
        needs, and the sweep is chunked at *batch_rows* rows.
        """
        base = np.asarray(base, dtype=np.float64)
        if base.ndim != 1 or base.shape[0] != len(self.variables):
            raise AnalysisError(
                f"base probability vector must have shape "
                f"({len(self.variables)},), got {base.shape}"
            )
        if not 0 <= var < len(self.variables):
            raise AnalysisError(
                f"perturbed variable index {var} out of range "
                f"[0, {len(self.variables)})"
            )
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise AnalysisError(
                f"perturbed values must be a 1-D array, got shape {values.shape}"
            )
        _count_evaluation(len(values))
        return evaluate_perturbed_arrays(
            self._np_var,
            self._np_low,
            self._np_high,
            self._root_pos,
            base,
            var,
            values,
            batch_rows=batch_rows,
            out=out,
        )

    # -- importance -----------------------------------------------------------

    def birnbaum(self, availabilities: Mapping[str, float]) -> Dict[str, float]:
        """Birnbaum importance ``∂A_sys/∂A_c`` of every variable at once.

        One bottom-up pass gives node probabilities; one top-down pass
        accumulates each node's *reach* probability (the chance the
        evaluation path passes through it); the importance of variable v
        is ``Σ_{nodes n labeled v} reach(n)·(P(high) - P(low))``.
        """
        p = self.probability_vector(availabilities)
        _count_evaluation()
        values = self._values(p)
        reach = [0.0] * len(values)
        reach[self._root_pos] = 1.0
        var_ix, low, high = self._var_ix, self._low_pos, self._high_pos
        gradient = [0.0] * len(self.variables)
        # interior nodes are stored deepest-variable first, so the reverse
        # walk visits every parent before its children: reach is final at
        # visit time and the gradient can accumulate in the same sweep
        for k in range(len(var_ix) - 1, -1, -1):
            r = reach[k + 2]
            if r == 0.0:
                continue
            v = var_ix[k]
            pv = p[v]
            gradient[v] += r * (values[high[k]] - values[low[k]])
            reach[high[k]] += r * pv
            reach[low[k]] += r * (1.0 - pv)
        return dict(zip(self.variables, gradient))

    # -- cut / path sets ------------------------------------------------------

    def _bottom_up_sets(
        self, root_pos: int, terminal_false, terminal_true, combine
    ) -> List[FrozenSet[str]]:
        """Shared memoized bottom-up recursion (iterative: component
        counts can exceed the interpreter recursion limit).

        Runs in linearized *position* space — positions 0/1 are the
        terminals, interior node *k* lives at ``k + 2`` — so it works
        identically on manager-backed and store-loaded kernels: the
        reachable DAG is the same either way.
        """
        var_ix, low_pos, high_pos = self._var_ix, self._low_pos, self._high_pos
        memo: Dict[int, Tuple[FrozenSet[str], ...]] = {
            0: terminal_false,
            1: terminal_true,
        }
        stack = [root_pos]
        while stack:
            pos = stack[-1]
            if pos in memo:
                stack.pop()
                continue
            low, high = low_pos[pos - 2], high_pos[pos - 2]
            pending = [child for child in (low, high) if child not in memo]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            name = self.variables[var_ix[pos - 2]]
            memo[pos] = tuple(
                minimize_sets(combine(name, memo[low], memo[high]))
            )
        return list(memo[root_pos])

    def minimal_path_sets(
        self, group: Optional[int] = None
    ) -> List[FrozenSet[str]]:
        """Minimal path sets (minimal variable sets forcing the function
        true), from the DAG itself — independent of the input path lists."""
        root = self._root_pos if group is None else self._group_pos[group]
        return self._bottom_up_sets(
            root,
            terminal_false=(),
            terminal_true=(frozenset(),),
            combine=lambda name, low, high: list(low)
            + [s | {name} for s in high],
        )

    def minimal_cut_sets(
        self, group: Optional[int] = None
    ) -> List[FrozenSet[str]]:
        """Minimal cut sets (minimal variable sets forcing the function
        false) by the dual bottom-up recursion over the same DAG."""
        root = self._root_pos if group is None else self._group_pos[group]
        return self._bottom_up_sets(
            root,
            terminal_false=(frozenset(),),
            terminal_true=(),
            combine=lambda name, low, high: [s | {name} for s in low]
            + list(high),
        )


# -- perturbed evaluation (shared by kernel method and shard workers) --------


def perturbed_sweep(
    var_ix: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    root_pos: int,
    base: np.ndarray,
    var: int,
    values: np.ndarray,
) -> np.ndarray:
    """One bottom-up sweep with a single vectorized variable.

    Every variable carries its scalar ``base`` probability except *var*,
    which carries the whole *values* vector.  Node results stay Python
    floats until the sweep first touches *var*; only nodes whose subgraph
    depends on the perturbed variable ever widen to k-vectors, so memory
    is proportional to the perturbed cone, not to ``nodes × k``.

    This module-level function is the **single implementation** evaluated
    by :meth:`AvailabilityKernel.evaluate_perturbed` and by the
    shared-memory shard workers of :mod:`repro.workload.sharding` — both
    paths run the identical arithmetic, so their results agree bit for
    bit with each other and (since numpy float64 scalar ops are the same
    IEEE doubles) with the scalar :meth:`AvailabilityKernel.availability`
    loop.
    """
    node_values: List[object] = [0.0] * (len(var_ix) + 2)
    node_values[1] = 1.0
    for i in range(len(var_ix)):
        v = var_ix[i]
        pv = values if v == var else base[v]
        node_values[i + 2] = (
            pv * node_values[high[i]] + (1.0 - pv) * node_values[low[i]]
        )
    root = node_values[root_pos]
    if isinstance(root, np.ndarray):
        return root
    # the root never saw the perturbed variable (or k == 0): broadcast
    return np.full(len(values), float(root))


def evaluate_perturbed_arrays(
    var_ix: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    root_pos: int,
    base: np.ndarray,
    var: int,
    values: np.ndarray,
    *,
    batch_rows: int = 65536,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Chunked :func:`perturbed_sweep` over raw linearized-DAG arrays.

    Operates purely on arrays (no kernel object), so shard workers can
    call it directly on shared-memory views; *out* (when given) receives
    the results in place — the sharding plane points it at the shared
    result segment.
    """
    if batch_rows < 1:
        raise AnalysisError(f"batch_rows must be >= 1, got {batch_rows}")
    k = len(values)
    if out is None:
        out = np.empty(k, dtype=np.float64)
    for start in range(0, k, batch_rows):
        stop = min(start + batch_rows, k)
        out[start:stop] = perturbed_sweep(
            var_ix, low, high, root_pos, base, var, values[start:stop]
        )
    return out


# -- variable orders ----------------------------------------------------------


def frequency_order(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
) -> Tuple[str, ...]:
    """Fallback variable order: most frequently used components first
    (shared components high in the diagram maximizes subgraph sharing)."""
    counts: Counter = Counter()
    for group in path_set_groups:
        for path in group:
            counts.update(path)
    return tuple(sorted(counts, key=lambda name: (-counts[name], name)))


def order_from_topology(
    topology: Topology, components: Iterable[str]
) -> Tuple[str, ...]:
    """Variable order from the compiled engine's CSR ids.

    Node components sort by their CSR id; a link component ``a|b`` sorts
    right after its lower-id endpoint (keeping each cable adjacent to the
    device it hangs off), and names unknown to the topology go last in
    lexical order.
    """
    compiled = compile_topology(topology)
    index = compiled.index

    def key(name: str) -> Tuple[int, int, int, str]:
        node_id = index.get(name)
        if node_id is not None:
            return (node_id, 0, -1, name)
        if "|" in name:
            a, b = name.split("|", 1)
            ia, ib = index.get(a), index.get(b)
            if ia is not None and ib is not None:
                low_id, high_id = sorted((ia, ib))
                return (low_id, 1, high_id, name)
        return (len(compiled.names), 2, 0, name)

    return tuple(sorted(set(components), key=key))


# -- compilation --------------------------------------------------------------


def _canonical_groups(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
) -> Tuple[Tuple[Tuple[str, ...], ...], ...]:
    return tuple(
        tuple(sorted({tuple(sorted(path)) for path in group}))
        for group in path_set_groups
    )


def structure_fingerprint(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    order: Sequence[str],
) -> str:
    """blake2b digest of the path-set structure plus variable order — the
    kernel cache key (same idiom as the engine's topology fingerprint)."""
    digest = hashlib.blake2b(digest_size=16)
    for name in order:
        digest.update(name.encode("utf-8"))
        digest.update(b"\x1f")
    digest.update(b"\x1e")
    for group in _canonical_groups(path_set_groups):
        for path in group:
            for component in path:
                digest.update(component.encode("utf-8"))
                digest.update(b"\x1f")
            digest.update(b"\x1d")
        digest.update(b"\x1e")
    return digest.hexdigest()


#: artifact kind the kernel tier persists (see :mod:`repro.store`)
_KIND_KERNEL = "kernel"


def _kernel_from_store(
    store: "_store.ArtifactStore", fingerprint: str
) -> Optional[AvailabilityKernel]:
    """Second-tier lookup: rebuild a stored kernel's linearized DAG as
    zero-copy mmap views, or ``None`` on miss/corruption/foreign data."""
    artifact = store.get(_KIND_KERNEL, (fingerprint,))
    if artifact is None:
        return None
    try:
        return AvailabilityKernel.from_flat(
            artifact.arrays["var"],
            artifact.arrays["low"],
            artifact.arrays["high"],
            int(artifact.meta["root_pos"]),
            artifact.arrays["group_pos"],
            artifact.meta["variables"],
            fingerprint,
        )
    except (KeyError, TypeError, ValueError, AnalysisError):
        return None


def _kernel_to_store(
    store: "_store.ArtifactStore", kernel: AvailabilityKernel
) -> None:
    """Write a kernel's flat arrays through (works for plain and
    incremental-snapshot kernels alike); store trouble never aborts the
    compilation that produced the kernel."""
    var, low, high, root_pos = kernel.flat_arrays()
    try:
        store.put(
            _KIND_KERNEL,
            (kernel.fingerprint,),
            {
                "var": np.asarray(var, dtype=np.int64),
                "low": np.asarray(low, dtype=np.int64),
                "high": np.asarray(high, dtype=np.int64),
                "group_pos": np.asarray(kernel._group_pos, dtype=np.int64),
            },
            {
                "root_pos": int(root_pos),
                "variables": list(kernel.variables),
            },
        )
    except StoreError:
        pass


#: process-wide compile-plane defaults, set by :func:`configure_compile`
#: (the CLI's ``--reorder``/``--compile-jobs`` land here)
_REORDER_MODES = ("auto", "sift", "none")
_COMPILE_DEFAULTS = {"reorder": "auto", "jobs": 1}

#: ``reorder="auto"`` sifts only when the compiled manager is both large
#: and bloated relative to its input (nodes ≥ growth × total path-set
#: incidences) — well-ordered structures never pay the sifting pass
_AUTO_MIN_NODES = 2048
_AUTO_GROWTH = 8


def _resolve_reorder(reorder: Optional[str]) -> str:
    mode = _COMPILE_DEFAULTS["reorder"] if reorder is None else reorder
    if mode not in _REORDER_MODES:
        raise AnalysisError(
            f"unknown reorder mode {mode!r}; choose one of "
            f"{', '.join(_REORDER_MODES)}"
        )
    return mode


def configure_compile(
    *, reorder: Optional[str] = None, jobs: Optional[int] = None
) -> Dict[str, object]:
    """Set process-wide compile-plane defaults; returns the active ones.

    *reorder* is the default dynamic-reordering mode ("auto" sifts only
    badly-bloated managers, "sift" always, "none" never); *jobs* is the
    default worker count for :func:`compile_many` fan-out.
    """
    if reorder is not None:
        if reorder not in _REORDER_MODES:
            raise AnalysisError(
                f"unknown reorder mode {reorder!r}; choose one of "
                f"{', '.join(_REORDER_MODES)}"
            )
        _COMPILE_DEFAULTS["reorder"] = reorder
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise AnalysisError(f"compile jobs must be >= 1, got {jobs}")
        _COMPILE_DEFAULTS["jobs"] = jobs
    return dict(_COMPILE_DEFAULTS)


def _prepare_structure(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    order: Optional[Sequence[str]],
    mode: str,
) -> Tuple[List[List[FrozenSet[str]]], Tuple[str, ...], str, str]:
    """Validate inputs and resolve ``(groups, ordered, fingerprint,
    cache_key)``.  The cache key is the structure fingerprint, tagged
    only under explicit ``reorder="sift"`` — "auto"/"none" kernels are
    interchangeable (sifting preserves the evaluated function exactly,
    and auto only fires on structures neither mode pins), so they share
    the untagged key and the warm-start tiers stay mode-agnostic."""
    groups = [list(group) for group in path_set_groups]
    if not groups:
        raise AnalysisError("system_availability requires at least one group")
    for group in groups:
        if not group:
            raise AnalysisError("a pair with no path sets is never connected")
    components = {c for group in groups for path in group for c in path}
    if not components:
        raise AnalysisError("system_availability requires at least one component")
    if order is None:
        ordered = frequency_order(groups)
    else:
        order_list = list(order)
        if len(set(order_list)) != len(order_list):
            counts = Counter(order_list)
            dupes = sorted(n for n, c in counts.items() if c > 1)
            raise AnalysisError(
                f"variable order contains duplicate components {dupes}"
            )
        ordered = tuple(name for name in order_list if name in components)
        missing = components.difference(ordered)
        if missing:
            raise AnalysisError(
                f"variable order does not cover components {sorted(missing)}"
            )
    fingerprint = structure_fingerprint(groups, ordered)
    cache_key = (
        fingerprint + "|reorder=sift" if mode == "sift" else fingerprint
    )
    return groups, ordered, fingerprint, cache_key


def _build_group_roots(
    bdd: BDD, index: Mapping[str, int], groups: Sequence[Sequence[FrozenSet[str]]]
) -> List[int]:
    """All groups' OR-of-cubes roots through the bulk plane: one
    :meth:`BDD.cube_many` over every path of every group, then one
    balanced OR reduction per round across all groups at once."""
    paths: List[List[int]] = []
    slices: List[Tuple[int, int]] = []
    start = 0
    for group in groups:
        converted = [[index[c] for c in path] for path in group]
        paths.extend(converted)
        slices.append((start, start + len(converted)))
        start += len(converted)
    roots = bdd.cube_many(paths)
    return bdd.reduce_many(_OP_OR, [roots[a:b] for a, b in slices])


def _sift_compiled(
    bdd: BDD,
    system: int,
    group_roots: Sequence[int],
    variables: Tuple[str, ...],
) -> Tuple[BDD, int, List[int], Tuple[str, ...]]:
    """Run a sifting pass over a freshly compiled manager and translate
    the roots and variable naming into the reordered manager."""
    with _trace.span("bdd.reorder", variables=len(variables)) as span:
        new_bdd, mapping, perm, stats = _bddreorder.sift(
            bdd, [system, *group_roots]
        )
        span.set(
            swaps=stats["swaps"],
            nodes_before=stats["live_before"],
            nodes_after=stats["live_after"],
        )
    _M_REORDER_PASSES.inc()
    _M_REORDER_SWAPS.inc(stats["swaps"])
    saved = stats["live_before"] - stats["live_after"]
    if saved > 0:
        _M_REORDER_NODES_SAVED.inc(saved)
    new_bdd.cache_hits = bdd.cache_hits
    return (
        new_bdd,
        mapping[system],
        [mapping[root] for root in group_roots],
        tuple(variables[perm[level]] for level in range(len(variables))),
    )


def compile_structure(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    *,
    order: Optional[Sequence[str]] = None,
    use_cache: bool = True,
    reorder: Optional[str] = None,
) -> AvailabilityKernel:
    """Compile path-set groups (the :func:`system_availability` input
    shape) into an :class:`AvailabilityKernel`, memoized by structure
    fingerprint.

    All groups compile into one shared manager: the system root is the
    conjunction of the group roots, and any component shared across pairs
    is a single decision level reused by every function that tests it.
    Construction goes through the array-native bulk plane (open-addressed
    tables + level-synchronous apply batches); *reorder* selects the
    dynamic variable-reordering mode ("auto" by default — sifting fires
    only on managers that blew up relative to their input structure).

    With an artifact store active (``REPRO_STORE``/``--store``) an LRU
    miss first tries the on-disk linearized arrays — a fresh process
    evaluating known structures performs zero BDD construction — and a
    fresh compile writes through for the next process.
    """
    mode = _resolve_reorder(reorder)
    groups, ordered, fingerprint, cache_key = _prepare_structure(
        path_set_groups, order, mode
    )
    store = _store.active_store() if use_cache else None
    if use_cache:
        cached = _KERNELS.get(cache_key)
        if cached is not None:
            return cached
        if store is not None:
            loaded = _kernel_from_store(store, cache_key)
            if loaded is not None:
                _KERNELS.put(cache_key, loaded, weight=loaded.size + 2)
                return loaded

    with _trace.span(
        "bdd.compile",
        variables=len(ordered),
        groups=len(groups),
        fingerprint=fingerprint,
    ) as span:
        bdd = BDD(len(ordered))
        index = {name: i for i, name in enumerate(ordered)}
        group_roots = _build_group_roots(bdd, index, groups)
        unique_roots = list(dict.fromkeys(group_roots))
        system = bdd.reduce_many(
            _OP_AND, [np.array(unique_roots, dtype=np.int64)]
        )[0]
        variables = tuple(ordered)
        incidences = sum(len(path) for group in groups for path in group)
        if mode == "sift" or (
            mode == "auto"
            and len(bdd) - 2 >= _AUTO_MIN_NODES
            and len(bdd) - 2 >= _AUTO_GROWTH * max(1, incidences)
        ):
            bdd, system, group_roots, variables = _sift_compiled(
                bdd, system, group_roots, variables
            )
        kernel = AvailabilityKernel(
            bdd, system, group_roots, variables, cache_key
        )
        span.set(nodes=len(bdd) - 2, ite_cache_hits=bdd.cache_hits)
    with _STATS_LOCK:
        _STATS["compilations"] += 1
    _M_COMPILATIONS.inc()
    _M_NODES_ALLOCATED.inc(len(bdd) - 2)
    _flush_table_metrics(bdd)
    if use_cache:
        _KERNELS.put(cache_key, kernel, weight=len(bdd))
        if store is not None:
            _kernel_to_store(store, kernel)
    return kernel


def compile_pair(
    path_sets: Sequence[FrozenSet[str]],
    *,
    order: Optional[Sequence[str]] = None,
    use_cache: bool = True,
    reorder: Optional[str] = None,
) -> AvailabilityKernel:
    """Compile a single pair's path sets."""
    return compile_structure(
        [list(path_sets)], order=order, use_cache=use_cache, reorder=reorder
    )


# -- parallel fan-out ---------------------------------------------------------

_POOL = None
_POOL_JOBS = 0
_POOL_LOCK = threading.Lock()


def _pool_shutdown() -> None:
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = None


atexit.register(_pool_shutdown)


def _get_pool(jobs: int):
    """The persistent spawn-context process pool (recreated only when
    the worker count changes)."""
    global _POOL, _POOL_JOBS
    import concurrent.futures
    import multiprocessing

    with _POOL_LOCK:
        if _POOL is None or _POOL_JOBS != jobs:
            if _POOL is not None:
                _POOL.shutdown(wait=True)
            _POOL = concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context("spawn"),
            )
            _POOL_JOBS = jobs
        return _POOL


def _compile_worker(payload):
    """Pool worker: compile a bucket of structures.

    With a shared artifact store the worker only needs to write through
    (the parent mmap-loads the result zero-copy); without one it ships
    the linearized arrays back over the pipe.
    """
    tasks, store_root, mode = payload
    if store_root is not None:
        _store.configure(store_root)
    results = []
    for idx, groups, order in tasks:
        kernel = compile_structure(
            groups, order=order, use_cache=True, reorder=mode
        )
        if store_root is not None:
            results.append((idx, None))
        else:
            var, low, high, root_pos = kernel.flat_arrays()
            results.append(
                (
                    idx,
                    (
                        np.asarray(var, dtype=np.int64),
                        np.asarray(low, dtype=np.int64),
                        np.asarray(high, dtype=np.int64),
                        int(root_pos),
                        tuple(kernel._group_pos),
                        tuple(kernel.variables),
                        kernel.fingerprint,
                    ),
                )
            )
    return results


def compile_many(
    structures: Sequence[Sequence[Sequence[FrozenSet[str]]]],
    *,
    orders: Optional[Sequence[Optional[Sequence[str]]]] = None,
    order: Optional[Sequence[str]] = None,
    use_cache: bool = True,
    reorder: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[AvailabilityKernel]:
    """Compile many independent structures, fanning out across a
    persistent process pool when ``jobs > 1``.

    Structures already warm in the LRU or the artifact store never reach
    the pool; the rest are LPT-balanced across workers by total path-set
    incidence (the compile-cost proxy).  With an active store, workers
    write through and the parent mmap-loads zero-copy; without one the
    flat arrays travel back over the result pipe.  Kernels compiled in a
    worker are store/flat-backed (no manager), which every evaluation and
    set query supports.
    """
    mode = _resolve_reorder(reorder)
    n = len(structures)
    if orders is None:
        per_order: List[Optional[Sequence[str]]] = [order] * n
    else:
        if len(orders) != n:
            raise AnalysisError(
                f"orders must match structures: {len(orders)} != {n}"
            )
        per_order = list(orders)
    jobs = int(_COMPILE_DEFAULTS["jobs"] if jobs is None else jobs)
    if jobs < 1:
        raise AnalysisError(f"compile jobs must be >= 1, got {jobs}")
    if jobs <= 1 or n <= 1:
        return [
            compile_structure(
                s, order=o, use_cache=use_cache, reorder=mode
            )
            for s, o in zip(structures, per_order)
        ]
    prepared = [
        _prepare_structure(s, o, mode)
        for s, o in zip(structures, per_order)
    ]
    results: List[Optional[AvailabilityKernel]] = [None] * n
    store = _store.active_store() if use_cache else None
    with _trace.span("bdd.compile.many", structures=n, jobs=jobs) as span:
        todo: List[int] = []
        for i, (_, _, _, cache_key) in enumerate(prepared):
            if use_cache:
                cached = _KERNELS.get(cache_key)
                if cached is not None:
                    results[i] = cached
                    continue
                if store is not None:
                    loaded = _kernel_from_store(store, cache_key)
                    if loaded is not None:
                        _KERNELS.put(
                            cache_key, loaded, weight=loaded.size + 2
                        )
                        results[i] = loaded
                        continue
            todo.append(i)
        shipped = 0
        if todo:
            costs = sorted(
                (
                    (
                        sum(
                            len(path)
                            for group in prepared[i][0]
                            for path in group
                        ),
                        i,
                    )
                    for i in todo
                ),
                reverse=True,
            )
            buckets: List[List[int]] = [
                [] for _ in range(min(jobs, len(todo)))
            ]
            loads = [0] * len(buckets)
            for cost, i in costs:
                slot = loads.index(min(loads))
                buckets[slot].append(i)
                loads[slot] += cost
            pool = _get_pool(jobs)
            store_root = str(store.root) if store is not None else None
            futures = [
                pool.submit(
                    _compile_worker,
                    (
                        [
                            (i, prepared[i][0], prepared[i][1])
                            for i in bucket
                        ],
                        store_root,
                        mode,
                    ),
                )
                for bucket in buckets
                if bucket
            ]
            for future in futures:
                try:
                    worker_results = future.result()
                except Exception:
                    continue  # bucket falls back to local compilation
                for idx, flat in worker_results:
                    shipped += 1
                    if flat is None:
                        if store is not None:
                            loaded = _kernel_from_store(
                                store, prepared[idx][3]
                            )
                            if loaded is not None:
                                results[idx] = loaded
                    else:
                        try:
                            results[idx] = AvailabilityKernel.from_flat(
                                *flat[:4],
                                group_pos=flat[4],
                                variables=flat[5],
                                fingerprint=flat[6],
                            )
                        except AnalysisError:
                            results[idx] = None
            for i in todo:
                if results[i] is None:
                    results[i] = compile_structure(
                        structures[i],
                        order=per_order[i],
                        use_cache=use_cache,
                        reorder=mode,
                    )
                elif use_cache:
                    kernel = results[i]
                    _KERNELS.put(
                        kernel.fingerprint, kernel, weight=kernel.size + 2
                    )
        span.set(compiled=len(todo), shipped=shipped)
    return results


def _group_digest(canonical_group: Tuple[Tuple[str, ...], ...]) -> str:
    """blake2b digest of one canonicalized pair group — the unit of reuse
    for :class:`IncrementalAvailabilityKernel`."""
    digest = hashlib.blake2b(digest_size=16)
    for path in canonical_group:
        for component in path:
            digest.update(component.encode("utf-8"))
            digest.update(b"\x1f")
        digest.update(b"\x1d")
    return digest.hexdigest()


class IncrementalAvailabilityKernel:
    """A persistent BDD manager that recompiles only changed pair groups.

    :func:`compile_structure` memoizes *whole structures*: one changed
    path set gives a new structure fingerprint and rebuilds every group
    from scratch.  Under topology churn most pairs are untouched by any
    single event, so this class keeps one manager alive across epochs and
    caches each pair group's root by its content digest — a recompile
    after a link flap re-derives only the groups whose path sets actually
    changed and re-ANDs the (mostly cached) roots into a fresh system
    root.  This is the BDD half of the delta-aware invalidation story
    (the engine half is :func:`repro.core.engine.discover_delta`).

    Correctness constraints, and how they are met:

    * an ROBDD manager requires one global variable order — the order is
      held **stable across epochs**; components first seen in a later
      epoch are *appended* (largest indices, see :meth:`BDD.grow`), which
      keeps every existing node and cached group root valid;
    * dead nodes accumulate as group structures change — when the
      reachable fraction drops below ~1/4 the manager is rebuilt from
      scratch (order re-derived, group cache cleared), bounding memory;
    * the returned :class:`AvailabilityKernel` snapshots the reachable
      DAG at construction (``_linearize`` copies into flat arrays), so
      kernels handed to earlier epochs stay internally consistent while
      later recompiles grow the shared manager.

    Thread safety: :meth:`recompile` holds an internal lock; returned
    kernels are immutable snapshots and safe to read concurrently.
    """

    #: full rebuild when reachable nodes are under this fraction of the
    #: manager.  The slack must be generous: sequential OR chains leave
    #: mostly-dead intermediates behind, so live/total sits well under
    #: the fraction even in a healthy manager — a small slack makes every
    #: recompile rebuild, discarding all cached group roots
    _GC_FRACTION = 0.25
    _GC_SLACK = 1 << 19

    def __init__(self, reorder: str = "none") -> None:
        if reorder not in ("none", "sift"):
            raise AnalysisError(
                f"unknown incremental reorder mode {reorder!r}; "
                f"choose 'none' or 'sift'"
            )
        self._lock = threading.Lock()
        self._bdd: Optional[BDD] = None
        self._order: Tuple[str, ...] = ()
        self._group_roots: Dict[str, int] = {}
        self._reorder = reorder
        #: sifting is only legal at epoch boundaries (a fresh build or a
        #: garbage rebuild): in between, the established order keeps every
        #: cached group root valid
        self._sift_pending = False
        self.stats = {
            "recompiles": 0,
            "group_hits": 0,
            "group_misses": 0,
            "rebuilds": 0,
        }

    def _rebuild(
        self,
        canonical: Tuple[Tuple[Tuple[str, ...], ...], ...],
        components: FrozenSet[str],
        order_hint: Optional[Sequence[str]],
    ) -> None:
        if order_hint is not None:
            ordered = tuple(n for n in order_hint if n in components)
            ordered += tuple(sorted(components.difference(ordered)))
        else:
            ordered = frequency_order(canonical)
        self._order = ordered
        self._bdd = BDD(len(ordered))
        self._group_roots = {}
        self._sift_pending = self._reorder == "sift"
        self.stats["rebuilds"] += 1
        _M_REBUILDS.inc()

    def _sift_epoch(
        self, system: int, group_roots: List[int]
    ) -> Tuple[int, List[int]]:
        """Sift the freshly rebuilt manager, remapping the digest cache,
        the current roots, and the established variable order into the
        reordered manager (subsequent epochs grow it unchanged)."""
        bdd = self._bdd
        cached_roots = list(self._group_roots.values())
        with _trace.span(
            "bdd.reorder", variables=len(self._order)
        ) as span:
            new_bdd, mapping, perm, stats = _bddreorder.sift(
                bdd, [system, *group_roots, *cached_roots]
            )
            span.set(
                swaps=stats["swaps"],
                nodes_before=stats["live_before"],
                nodes_after=stats["live_after"],
            )
        _M_REORDER_PASSES.inc()
        _M_REORDER_SWAPS.inc(stats["swaps"])
        saved = stats["live_before"] - stats["live_after"]
        if saved > 0:
            _M_REORDER_NODES_SAVED.inc(saved)
        new_bdd.cache_hits = bdd.cache_hits
        self._bdd = new_bdd
        self._order = tuple(
            self._order[perm[level]] for level in range(len(self._order))
        )
        self._group_roots = {
            digest: mapping[root]
            for digest, root in self._group_roots.items()
        }
        return mapping[system], [mapping[root] for root in group_roots]

    def recompile(
        self,
        path_set_groups: Sequence[Sequence[FrozenSet[str]]],
        *,
        order_hint: Optional[Sequence[str]] = None,
    ) -> AvailabilityKernel:
        """Compile *path_set_groups* reusing cached group roots.

        *order_hint* (e.g. :func:`order_from_topology`) seeds the
        variable order on the first build and after a garbage rebuild; in
        between it is ignored so the established order — and with it
        every cached root — survives topology mutations that would
        reshuffle CSR ids.
        """
        groups = [list(group) for group in path_set_groups]
        if not groups:
            raise AnalysisError(
                "system_availability requires at least one group"
            )
        for group in groups:
            if not group:
                raise AnalysisError(
                    "a pair with no path sets is never connected"
                )
        canonical = _canonical_groups(groups)
        components = frozenset(
            c for group in canonical for path in group for c in path
        )
        with self._lock, _trace.span(
            "bdd.recompile_delta", groups=len(groups)
        ) as span:
            if self._bdd is None:
                self._rebuild(canonical, components, order_hint)
            elif not components.issubset(self._order):
                grown = self._order + tuple(
                    sorted(components.difference(self._order))
                )
                self._order = grown
                self._bdd.grow(len(grown))
            bdd = self._bdd
            index = {name: i for i, name in enumerate(self._order)}
            hits = misses = 0
            group_roots: List[int] = [0] * len(canonical)
            missed: List[Tuple[int, str, Tuple[Tuple[str, ...], ...]]] = []
            for slot, group in enumerate(canonical):
                digest = _group_digest(group)
                root = self._group_roots.get(digest)
                if root is None:
                    misses += 1
                    missed.append((slot, digest, group))
                else:
                    hits += 1
                    group_roots[slot] = root
            if missed:
                built = _build_group_roots(
                    bdd, index, [group for _, _, group in missed]
                )
                for (slot, digest, _), root in zip(missed, built):
                    self._group_roots[digest] = root
                    group_roots[slot] = root
            unique_roots = list(dict.fromkeys(group_roots))
            system = bdd.reduce_many(
                _OP_AND, [np.array(unique_roots, dtype=np.int64)]
            )[0]
            if self._sift_pending and len(bdd) > 2:
                self._sift_pending = False
                system, group_roots = self._sift_epoch(system, group_roots)
                bdd = self._bdd
            kernel = AvailabilityKernel(
                bdd,
                system,
                group_roots,
                self._order,
                structure_fingerprint(groups, self._order),
            )
            self.stats["recompiles"] += 1
            self.stats["group_hits"] += hits
            self.stats["group_misses"] += misses
            _M_GROUP_HITS.inc(hits)
            _M_GROUP_MISSES.inc(misses)
            span.set(
                group_hits=hits,
                group_misses=misses,
                nodes=len(bdd) - 2,
                reachable=kernel.size,
            )
            # garbage pressure: schedule a fresh manager for the *next*
            # recompile once dead nodes dominate
            live = kernel.size + 2
            if len(bdd) > self._GC_SLACK and live < len(bdd) * self._GC_FRACTION:
                self._bdd = None
            return kernel


def system_availability_bdd(
    path_set_groups: Sequence[Sequence[FrozenSet[str]]],
    availabilities: Mapping[str, float],
    *,
    order: Optional[Sequence[str]] = None,
) -> float:
    """Drop-in BDD-backed equivalent of
    :func:`repro.analysis.exact.system_availability` (no component bound)."""
    return compile_structure(path_set_groups, order=order).availability(
        availabilities
    )


def pair_availability_bdd(
    path_sets: Sequence[FrozenSet[str]],
    availabilities: Mapping[str, float],
    *,
    order: Optional[Sequence[str]] = None,
) -> float:
    """Drop-in BDD-backed equivalent of
    :func:`repro.analysis.exact.pair_availability`."""
    return compile_pair(path_sets, order=order).availability(availabilities)


# -- counters (same shape as repro.core.engine.engine_stats) ------------------


def kernel_stats() -> Dict[str, int]:
    """Counters for tests and benchmarks: structure compilations and
    probability-vector evaluations, plus the kernel-cache tally."""
    with _STATS_LOCK:
        stats = dict(_STATS)
    stats["kernel_cache_hits"] = _KERNELS.hits
    stats["kernel_cache_misses"] = _KERNELS.misses
    return stats


def reset_kernel_stats() -> None:
    with _STATS_LOCK:
        _STATS["compilations"] = 0
        _STATS["evaluations"] = 0
        _STATS["cache_hits"] = 0


def kernel_cache_info() -> Dict[str, int]:
    return {
        "hits": _KERNELS.hits,
        "misses": _KERNELS.misses,
        "currsize": len(_KERNELS.data),
        "maxsize": _KERNELS.maxsize,
        "weight": _KERNELS.total_weight,
    }


def kernel_cache_clear() -> None:
    """Drop every compiled kernel (the big hammer for tests/benchmarks;
    structure changes invalidate implicitly via the fingerprint key)."""
    _KERNELS.clear()
