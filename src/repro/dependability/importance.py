"""Component importance measures on the user-perceived structure.

The UPSIM's troubleshooting use-case — "a quick overview on which ICT
components can be the cause" of a service problem (Section VII) — is
quantified by classic importance measures.  All measures are computed
against an arbitrary availability evaluator (a function from a component→
availability table to system availability), so they work identically with
the RBD, fault-tree or inclusion–exclusion back ends.

* **Birnbaum** ``I_B(c) = A_sys(A_c := 1) - A_sys(A_c := 0)`` — the
  partial derivative of system availability w.r.t. the component's.
* **Improvement potential** ``I_IP(c) = A_sys(A_c := 1) - A_sys`` — the
  headroom gained by a perfect component.
* **Risk achievement worth** ``RAW(c) = U_sys(A_c := 0) / U_sys`` — how
  much worse unavailability gets if the component is down.
* **Fussell–Vesely** ``I_FV(c) ≈ (U_sys - U_sys(A_c := 1)) / U_sys`` —
  the fraction of system unavailability the component contributes to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.errors import AnalysisError

__all__ = ["ImportanceRow", "importance_table", "importance_from_birnbaum"]

Evaluator = Callable[[Dict[str, float]], float]


@dataclass(frozen=True)
class ImportanceRow:
    """All importance measures for one component."""

    component: str
    availability: float
    birnbaum: float
    improvement_potential: float
    risk_achievement_worth: float
    fussell_vesely: float


def importance_table(
    evaluator: Evaluator,
    availabilities: Dict[str, float],
    components: Sequence[str] | None = None,
) -> List[ImportanceRow]:
    """Compute all measures for every component (or the given subset).

    *evaluator* must be deterministic in its argument; it is called with
    perturbed copies of *availabilities* (component pinned to 0 or 1).
    Rows are sorted by descending Birnbaum importance.
    """
    names = list(components) if components is not None else sorted(availabilities)
    unknown = [n for n in names if n not in availabilities]
    if unknown:
        raise AnalysisError(f"no availability for components {unknown}")

    base = evaluator(dict(availabilities))
    if not 0.0 <= base <= 1.0:
        raise AnalysisError(f"evaluator returned {base}, outside [0, 1]")
    base_unavailability = 1.0 - base

    rows: List[ImportanceRow] = []
    for name in names:
        up = dict(availabilities)
        up[name] = 1.0
        down = dict(availabilities)
        down[name] = 0.0
        a_up = evaluator(up)
        a_down = evaluator(down)
        birnbaum = a_up - a_down
        improvement = a_up - base
        if base_unavailability > 0.0:
            raw = (1.0 - a_down) / base_unavailability
            fussell_vesely = (base_unavailability - (1.0 - a_up)) / base_unavailability
        else:
            raw = 1.0
            fussell_vesely = 0.0
        rows.append(
            ImportanceRow(
                component=name,
                availability=availabilities[name],
                birnbaum=birnbaum,
                improvement_potential=improvement,
                risk_achievement_worth=raw,
                fussell_vesely=fussell_vesely,
            )
        )
    rows.sort(key=lambda row: (-row.birnbaum, row.component))
    return rows


def importance_from_birnbaum(
    availabilities: Dict[str, float],
    base_availability: float,
    birnbaum: Dict[str, float],
    components: Sequence[str] | None = None,
) -> List[ImportanceRow]:
    """All measures from precomputed Birnbaum importances.

    System availability is multilinear in each component's availability,
    so ``A(A_c := x) = A + (x - A_c)·I_B(c)`` — the pinned evaluations
    behind every measure follow from the base value and the gradient
    without re-evaluating the system.  Paired with
    :meth:`repro.dependability.bdd.AvailabilityKernel.birnbaum` (which
    yields the whole gradient in one extra DAG pass) this replaces the
    ``2n + 1`` full evaluations of :func:`importance_table`; the rows are
    identical.

    Components missing from *birnbaum* are treated as irrelevant to the
    structure (gradient 0) — e.g. mapped instances that no discovered
    path traverses.
    """
    names = list(components) if components is not None else sorted(availabilities)
    unknown = [n for n in names if n not in availabilities]
    if unknown:
        raise AnalysisError(f"no availability for components {unknown}")
    if not 0.0 <= base_availability <= 1.0:
        raise AnalysisError(
            f"base availability {base_availability} is outside [0, 1]"
        )
    base_unavailability = 1.0 - base_availability

    rows: List[ImportanceRow] = []
    for name in names:
        gradient = birnbaum.get(name, 0.0)
        availability = availabilities[name]
        a_up = base_availability + (1.0 - availability) * gradient
        a_down = base_availability - availability * gradient
        if base_unavailability > 0.0:
            raw = (1.0 - a_down) / base_unavailability
            fussell_vesely = (
                base_unavailability - (1.0 - a_up)
            ) / base_unavailability
        else:
            raw = 1.0
            fussell_vesely = 0.0
        rows.append(
            ImportanceRow(
                component=name,
                availability=availability,
                birnbaum=a_up - a_down,
                improvement_potential=a_up - base_availability,
                risk_achievement_worth=raw,
                fussell_vesely=fussell_vesely,
            )
        )
    rows.sort(key=lambda row: (-row.birnbaum, row.component))
    return rows
