"""Continuous-time Markov chains for component and group availability.

Formula (1) and the renewal simulation treat each component as a two-state
process; the Markov view makes that model explicit and extends it to
repair-limited redundancy groups, the regime where the simple
``1-(1-A)^(k+1)`` independence formula of
:func:`repro.dependability.availability.with_redundancy` stops being
exact.  Performability [6] is a Markov-reward measure; :func:`markov_reward`
computes it directly on a chain's steady state.

Provided:

* :class:`CTMC` — generator-matrix chain with steady-state solution
  (linear solve), transient distribution (matrix exponential) and mean
  time to absorption;
* :func:`component_ctmc` — the 2-state up/down component; its steady
  state reproduces the exact availability ``MTBF/(MTBF+MTTR)``;
* :func:`redundancy_group_ctmc` — birth–death chain of an n-unit group
  with *r* repair crews; with ``r = n`` it matches the independence
  formula, with ``r < n`` it quantifies the repair-contention penalty;
* :func:`markov_reward` — steady-state expected reward.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np
from scipy.linalg import expm

from repro.errors import AnalysisError

__all__ = [
    "CTMC",
    "component_ctmc",
    "redundancy_group_ctmc",
    "markov_reward",
]


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    states:
        State labels, in generator-row order.
    generator:
        The (n, n) generator matrix Q: off-diagonal rates >= 0, rows sum
        to zero (the diagonal is recomputed from the off-diagonals to
        absorb rounding).
    """

    def __init__(self, states: Sequence[Hashable], generator: np.ndarray):
        self.states: List[Hashable] = list(states)
        if len(set(self.states)) != len(self.states):
            raise AnalysisError("duplicate CTMC state labels")
        q = np.array(generator, dtype=np.float64)
        n = len(self.states)
        if q.shape != (n, n):
            raise AnalysisError(
                f"generator shape {q.shape} does not match {n} states"
            )
        off_diagonal = q.copy()
        np.fill_diagonal(off_diagonal, 0.0)
        if np.any(off_diagonal < 0):
            raise AnalysisError("off-diagonal generator rates must be >= 0")
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        self.generator = q
        self._index: Dict[Hashable, int] = {s: i for i, s in enumerate(self.states)}

    def index(self, state: Hashable) -> int:
        try:
            return self._index[state]
        except KeyError:
            raise AnalysisError(f"unknown CTMC state {state!r}") from None

    # -- steady state -------------------------------------------------------

    def steady_state(self) -> np.ndarray:
        """The stationary distribution π with πQ = 0, Σπ = 1.

        Solved as a least-squares system with the normalization row
        appended; requires an irreducible chain (checked by verifying the
        solution is a proper distribution).
        """
        n = len(self.states)
        a = np.vstack([self.generator.T, np.ones((1, n))])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        if np.any(pi < -1e-9) or abs(pi.sum() - 1.0) > 1e-6:
            raise AnalysisError(
                "no valid stationary distribution (chain reducible?)"
            )
        return np.clip(pi, 0.0, None) / np.clip(pi, 0.0, None).sum()

    def steady_state_probability(self, states: Sequence[Hashable]) -> float:
        """Total stationary probability of the given states."""
        pi = self.steady_state()
        return float(sum(pi[self.index(s)] for s in states))

    # -- transient ------------------------------------------------------------

    def transient(self, initial: Hashable, t: float) -> np.ndarray:
        """State distribution at time *t* starting from *initial*."""
        if t < 0:
            raise AnalysisError(f"time must be >= 0, got {t}")
        p0 = np.zeros(len(self.states))
        p0[self.index(initial)] = 1.0
        return p0 @ expm(self.generator * t)

    # -- absorption -------------------------------------------------------------

    def mean_time_to_absorption(
        self, initial: Hashable, absorbing: Sequence[Hashable]
    ) -> float:
        """Expected time from *initial* until any state in *absorbing*.

        Computed from the fundamental matrix of the chain restricted to
        transient states: solve ``Q_TT · m = -1``.
        """
        absorbing_idx = {self.index(s) for s in absorbing}
        if self.index(initial) in absorbing_idx:
            return 0.0
        transient_idx = [
            i for i in range(len(self.states)) if i not in absorbing_idx
        ]
        q_tt = self.generator[np.ix_(transient_idx, transient_idx)]
        try:
            m = np.linalg.solve(q_tt, -np.ones(len(transient_idx)))
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(
                f"absorption times undefined (states unreachable?): {exc}"
            ) from exc
        position = transient_idx.index(self.index(initial))
        return float(m[position])


def component_ctmc(mtbf: float, mttr: float) -> CTMC:
    """The two-state (up/down) component chain.

    Failure rate 1/MTBF, repair rate 1/MTTR.  Its stationary probability
    of ``"up"`` is the exact availability ``MTBF/(MTBF+MTTR)``.
    """
    if mtbf <= 0 or mttr <= 0:
        raise AnalysisError("component_ctmc requires MTBF > 0 and MTTR > 0")
    failure = 1.0 / mtbf
    repair = 1.0 / mttr
    generator = np.array([[-failure, failure], [repair, -repair]])
    return CTMC(["up", "down"], generator)


def redundancy_group_ctmc(
    n: int, mtbf: float, mttr: float, *, repair_crews: int = 1
) -> CTMC:
    """Birth–death chain of an *n*-unit redundancy group.

    State *k* = number of failed units.  Failure rate from state k is
    ``(n-k)/MTBF`` (remaining units fail independently); repair rate is
    ``min(k, repair_crews)/MTTR``.  The group is available while k < n.

    With ``repair_crews >= n`` repairs never queue and the stationary
    unavailability equals the independence formula ``(U_comp)^n``; with
    fewer crews, repair contention lowers availability — the effect the
    ``redundantComponents`` attribute silently ignores.
    """
    if n < 1:
        raise AnalysisError("redundancy group needs n >= 1 units")
    if repair_crews < 1:
        raise AnalysisError("redundancy group needs at least one repair crew")
    if mtbf <= 0 or mttr <= 0:
        raise AnalysisError("redundancy_group_ctmc requires MTBF, MTTR > 0")
    failure = 1.0 / mtbf
    repair = 1.0 / mttr
    size = n + 1
    generator = np.zeros((size, size))
    for k in range(size):
        if k < n:
            generator[k, k + 1] = (n - k) * failure
        if k > 0:
            generator[k, k - 1] = min(k, repair_crews) * repair
    return CTMC(list(range(size)), generator)


def markov_reward(ctmc: CTMC, rewards: Dict[Hashable, float]) -> float:
    """Steady-state expected reward ``Σ_s π_s · r_s`` (performability)."""
    missing = [s for s in ctmc.states if s not in rewards]
    if missing:
        raise AnalysisError(f"no reward for states {missing}")
    pi = ctmc.steady_state()
    return float(sum(pi[ctmc.index(s)] * rewards[s] for s in ctmc.states))
