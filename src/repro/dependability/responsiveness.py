"""Responsiveness: probability of service completion within a deadline.

Section VII lists responsiveness [7] among the user-perceived properties
the UPSIM enables "with only minor changes to the mapping file".  The
model here follows the decentralized-service-discovery evaluation of [7]:
every component traversed by a request contributes a random processing /
forwarding latency; responsiveness for deadline *d* is the probability
that the end-to-end latency does not exceed *d* — conditioned on the
components being up at all.

Latency model: each component (node or link) has an exponential latency
with a given mean.  A path's latency is then *hypoexponential* (a sum of
independent exponentials); its CDF is evaluated exactly through the
matrix exponential of the associated phase-type generator — numerically
robust even with repeated rates, where the classical partial-fraction
formula breaks down.

For redundant paths the request races over all of them (the UPSIM keeps
"all redundant paths between requester and provider"), so path latencies
combine as a minimum.  Shared components make path latencies dependent;
:func:`pair_responsiveness` therefore offers both the independence
approximation (fast, upper bound in practice) and an exact Monte-Carlo
evaluation that samples shared latencies once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import expm

from repro.errors import AnalysisError

__all__ = [
    "hypoexponential_cdf",
    "path_responsiveness",
    "pair_responsiveness",
    "pair_responsiveness_reference",
    "ResponsivenessResult",
    "structure_completion_samples",
    "service_responsiveness",
]


def hypoexponential_cdf(rates: Sequence[float], deadline: float) -> float:
    """P(X_1 + … + X_n <= deadline) for independent ``X_i ~ Exp(rate_i)``.

    Uses the phase-type representation: the CDF equals
    ``1 - e_1ᵀ exp(Q·t) 1`` with the bidiagonal generator ``Q`` holding
    ``-λ_i`` on the diagonal and ``λ_i`` on the superdiagonal.

    Redundant path sets in a mapped topology overwhelmingly repeat the
    same rate profile (annotation defaults make most paths of equal hop
    count identical), so results are memoized per distinct
    ``(rates, deadline)`` — each profile pays the matrix exponential
    once per process.
    """
    if deadline < 0:
        return 0.0
    return _hypoexponential_cdf(
        tuple(float(rate) for rate in rates), float(deadline)
    )


@lru_cache(maxsize=4096)
def _hypoexponential_cdf(rates: Tuple[float, ...], deadline: float) -> float:
    rates_arr = np.asarray(rates, dtype=np.float64)
    if rates_arr.size == 0:
        return 1.0
    if np.any(rates_arr <= 0):
        raise AnalysisError("all latency rates must be > 0")
    n = rates_arr.size
    generator = np.zeros((n, n))
    generator[np.arange(n), np.arange(n)] = -rates_arr
    generator[np.arange(n - 1), np.arange(1, n)] = rates_arr[:-1]
    transient = expm(generator * deadline)
    survival = transient[0, :].sum()
    return float(min(1.0, max(0.0, 1.0 - survival)))


def path_responsiveness(
    mean_latencies: Sequence[float], deadline: float
) -> float:
    """Responsiveness of one path from per-component mean latencies."""
    if any(m <= 0 for m in mean_latencies):
        raise AnalysisError("mean latencies must be > 0")
    return hypoexponential_cdf([1.0 / m for m in mean_latencies], deadline)


@dataclass(frozen=True)
class ResponsivenessResult:
    """Responsiveness of a requester/provider pair at one deadline."""

    deadline: float
    probability: float
    per_path: Tuple[float, ...]
    method: str


def pair_responsiveness(
    paths: Sequence[Sequence[str]],
    mean_latency: Dict[str, float],
    deadline: float,
    *,
    availabilities: Optional[Dict[str, float]] = None,
    method: str = "independent",
    samples: int = 50_000,
    seed: int = 0,
) -> ResponsivenessResult:
    """Responsiveness over redundant paths.

    Thin registry-backed delegate: the ``"independent"`` method is the
    single fold implementation behind the registered ``responsiveness``
    dimension (:func:`repro.dimensions.pair_responsiveness_fold`), so the
    legacy API and :func:`repro.dimensions.evaluate_dimensions` can never
    drift apart.  ``"montecarlo"`` (and the equivalence tests) run
    through :func:`pair_responsiveness_reference`, the legacy evaluator
    kept verbatim as the oracle.

    Parameters
    ----------
    paths:
        Component-name sequences (typically node paths; include link names
        if links contribute latency).
    mean_latency:
        Mean latency per component, same unit as *deadline*.
    availabilities:
        Optional steady-state availabilities; when given, a path only
        counts if all its components are up (sampled in the Monte-Carlo
        method; multiplied in the independent method).
    method:
        ``"independent"`` — combine per-path CDFs as
        ``1 - ∏(1 - A_path·F_path(d))``, treating paths as independent;
        ``"montecarlo"`` — sample shared component latencies (and up/down
        states) once per trial, exact in the limit.
    """
    if not paths:
        raise AnalysisError("pair responsiveness requires at least one path")
    if deadline < 0:
        raise AnalysisError(f"deadline must be >= 0, got {deadline}")
    component_names = sorted({c for path in paths for c in path})
    missing = [c for c in component_names if c not in mean_latency]
    if missing:
        raise AnalysisError(f"no mean latency for components {missing}")
    if method == "independent":
        from repro.dimensions.builtins import pair_responsiveness_fold

        probability, per_path = pair_responsiveness_fold(
            paths, mean_latency, deadline, availabilities=availabilities
        )
        return ResponsivenessResult(deadline, probability, per_path, method)
    if method != "montecarlo":
        raise AnalysisError(f"unknown responsiveness method {method!r}")
    return pair_responsiveness_reference(
        paths,
        mean_latency,
        deadline,
        availabilities=availabilities,
        method=method,
        samples=samples,
        seed=seed,
    )


def pair_responsiveness_reference(
    paths: Sequence[Sequence[str]],
    mean_latency: Dict[str, float],
    deadline: float,
    *,
    availabilities: Optional[Dict[str, float]] = None,
    method: str = "independent",
    samples: int = 50_000,
    seed: int = 0,
) -> ResponsivenessResult:
    """The legacy per-module evaluator, kept verbatim as the oracle the
    registry fold is differentially tested against (PR-1 ``*_reference``
    convention)."""
    if not paths:
        raise AnalysisError("pair responsiveness requires at least one path")
    if deadline < 0:
        raise AnalysisError(f"deadline must be >= 0, got {deadline}")
    component_names = sorted({c for path in paths for c in path})
    missing = [c for c in component_names if c not in mean_latency]
    if missing:
        raise AnalysisError(f"no mean latency for components {missing}")

    per_path: List[float] = []
    for path in paths:
        prob = path_responsiveness([mean_latency[c] for c in path], deadline)
        if availabilities is not None:
            for component in path:
                if component not in availabilities:
                    raise AnalysisError(
                        f"no availability for component {component!r}"
                    )
                prob *= availabilities[component]
        per_path.append(prob)

    if method == "independent":
        miss = 1.0
        for prob in per_path:
            miss *= 1.0 - prob
        return ResponsivenessResult(deadline, 1.0 - miss, tuple(per_path), method)

    if method != "montecarlo":
        raise AnalysisError(f"unknown responsiveness method {method!r}")

    rng = np.random.default_rng(seed)
    index = {name: i for i, name in enumerate(component_names)}
    means = np.array([mean_latency[c] for c in component_names])
    latencies = rng.exponential(means, size=(samples, len(component_names)))
    if availabilities is not None:
        avail = np.array([availabilities[c] for c in component_names])
        up = rng.random((samples, len(component_names))) < avail
    else:
        up = np.ones((samples, len(component_names)), dtype=bool)
    success = np.zeros(samples, dtype=bool)
    for path in paths:
        idx = np.array([index[c] for c in path], dtype=np.intp)
        path_ok = up[:, idx].all(axis=1)
        path_latency = latencies[:, idx].sum(axis=1)
        success |= path_ok & (path_latency <= deadline)
    probability = float(success.mean())
    return ResponsivenessResult(deadline, probability, tuple(per_path), method)


# ---------------------------------------------------------------------------
# service-level responsiveness over the activity structure


def structure_completion_samples(
    structure,
    step_means: Dict[str, float],
    samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sampled completion times of a series-parallel activity structure.

    The structure tree comes from
    :meth:`repro.uml.activity.Activity.to_structure`; each leaf (atomic
    service execution) draws an exponential duration with the given mean.
    Series sections add durations; parallel sections complete when their
    slowest branch does (max) — the join semantics of the activity diagram.

    Returns a vector of *samples* completion times (vectorized numpy
    throughout; no Python-level per-sample loop).
    """
    from repro.uml.activity import SPLeaf, SPParallel, SPSeries

    if isinstance(structure, SPLeaf):
        name = structure.atomic_service_name
        if name not in step_means:
            raise AnalysisError(f"no mean duration for atomic service {name!r}")
        mean = step_means[name]
        if mean <= 0:
            raise AnalysisError(
                f"mean duration of {name!r} must be > 0, got {mean}"
            )
        return rng.exponential(mean, size=samples)
    if isinstance(structure, SPSeries):
        total = np.zeros(samples)
        for child in structure.children:
            total += structure_completion_samples(child, step_means, samples, rng)
        return total
    if isinstance(structure, SPParallel):
        stacked = np.stack(
            [
                structure_completion_samples(child, step_means, samples, rng)
                for child in structure.children
            ]
        )
        return stacked.max(axis=0)
    raise AnalysisError(f"unknown structure node {type(structure).__name__}")


def service_responsiveness(
    service,
    step_means: Dict[str, float],
    deadline: float,
    *,
    samples: int = 100_000,
    seed: int = 0,
) -> float:
    """P(the whole composite service completes within *deadline*).

    *service* is a :class:`repro.services.CompositeService` (or any object
    with a ``structure()`` method returning an SP tree); *step_means* maps
    each atomic service to its mean execution duration.  Durations are
    sampled per the activity semantics: sequential steps add, parallel
    branches synchronize at the join (max).

    For a purely sequential service this converges to the hypoexponential
    CDF of the step rates (cross-checked in the tests).
    """
    if deadline < 0:
        raise AnalysisError(f"deadline must be >= 0, got {deadline}")
    if samples <= 0:
        raise AnalysisError(f"samples must be > 0, got {samples}")
    structure = service.structure() if hasattr(service, "structure") else service
    rng = np.random.default_rng(seed)
    times = structure_completion_samples(structure, step_means, samples, rng)
    return float((times <= deadline).mean())
