"""Steady-state availability of ICT components (Section VII, Formula 1).

The paper computes the availability of an individual component from its
profile attributes as

    A_comp = 1 - MTTR / MTBF                                   (Formula 1)

which is the first-order approximation of the exact renewal-theory value

    A_comp = MTBF / (MTBF + MTTR).

Both are provided; the case-study MTTR ≪ MTBF regime makes them agree to
~1e-7, and the tests assert that closeness.  Redundant components
(`redundantComponents = k`) model k additional standby replicas: the
component is unavailable only when all k+1 replicas are down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import AnalysisError
from repro.uml.objects import InstanceSpecification, Link

__all__ = [
    "steady_state_availability",
    "exact_availability",
    "with_redundancy",
    "ComponentAvailability",
    "instance_availability",
    "link_availability",
    "downtime_minutes_per_year",
    "service_availability",
    "service_availability_reference",
]

HOURS_PER_YEAR = 8760.0


def steady_state_availability(mtbf: float, mttr: float) -> float:
    """Formula (1): ``A = 1 - MTTR/MTBF``.

    Raises :class:`AnalysisError` for non-positive MTBF, negative MTTR, or
    MTTR > MTBF (where the approximation leaves [0, 1]).
    """
    if mtbf <= 0:
        raise AnalysisError(f"MTBF must be > 0, got {mtbf}")
    if mttr < 0:
        raise AnalysisError(f"MTTR must be >= 0, got {mttr}")
    if mttr > mtbf:
        raise AnalysisError(
            f"Formula (1) requires MTTR <= MTBF, got MTTR={mttr} > MTBF={mtbf}"
        )
    return 1.0 - mttr / mtbf


def exact_availability(mtbf: float, mttr: float) -> float:
    """Exact steady-state availability ``A = MTBF / (MTBF + MTTR)``."""
    if mtbf <= 0:
        raise AnalysisError(f"MTBF must be > 0, got {mtbf}")
    if mttr < 0:
        raise AnalysisError(f"MTTR must be >= 0, got {mttr}")
    return mtbf / (mtbf + mttr)


def with_redundancy(availability: float, redundant_components: int) -> float:
    """Availability of a component with *k* redundant standby replicas.

    The component group fails only when all ``k+1`` replicas are down
    (independent failures assumed): ``A_group = 1 - (1-A)^(k+1)``.
    """
    if not 0.0 <= availability <= 1.0:
        raise AnalysisError(f"availability must be in [0, 1], got {availability}")
    if redundant_components < 0:
        raise AnalysisError(
            f"redundantComponents must be >= 0, got {redundant_components}"
        )
    return 1.0 - (1.0 - availability) ** (redundant_components + 1)


@dataclass(frozen=True)
class ComponentAvailability:
    """Resolved availability of one component, with its inputs."""

    name: str
    mtbf: float
    mttr: float
    redundant_components: int
    availability: float

    def unavailability(self) -> float:
        return 1.0 - self.availability


def _resolve(name: str, properties: Dict[str, Any], *, formula: str) -> ComponentAvailability:
    try:
        mtbf = float(properties["MTBF"])
        mttr = float(properties["MTTR"])
    except (KeyError, TypeError, ValueError) as exc:
        raise AnalysisError(
            f"component {name!r} lacks usable MTBF/MTTR attributes "
            f"(availability profile not applied?): {exc}"
        ) from exc
    redundant = int(properties.get("redundantComponents") or 0)
    if formula == "paper":
        base = steady_state_availability(mtbf, mttr)
    elif formula == "exact":
        base = exact_availability(mtbf, mttr)
    else:
        raise AnalysisError(f"unknown availability formula {formula!r}")
    return ComponentAvailability(
        name, mtbf, mttr, redundant, with_redundancy(base, redundant)
    )


def instance_availability(
    instance: InstanceSpecification, *, formula: str = "paper"
) -> ComponentAvailability:
    """Availability of a deployed node, from its class's profile attributes.

    ``formula="paper"`` applies Formula (1); ``"exact"`` the renewal value.
    """
    return _resolve(instance.signature, instance.property_dict(), formula=formula)


def link_availability(link: Link, *, formula: str = "paper") -> ComponentAvailability:
    """Availability of a link, from its association's «Connector» attributes."""
    return _resolve(link.name, link.property_dict(), formula=formula)


def downtime_minutes_per_year(availability: float) -> float:
    """Expected annual downtime in minutes for a given availability."""
    if not 0.0 <= availability <= 1.0:
        raise AnalysisError(f"availability must be in [0, 1], got {availability}")
    return (1.0 - availability) * HOURS_PER_YEAR * 60.0


def service_availability(
    structure,
    *,
    annotations: Optional[Dict[str, Dict[str, float]]] = None,
    include_links: bool = True,
    formula: str = "paper",
) -> float:
    """Service-level availability — thin registry-backed delegate.

    Routes through the registered ``availability`` dimension
    (:func:`repro.dimensions.evaluate_dimensions`): one shared structure
    compile, exact BDD evaluation.  *structure* is a UPSIM (annotations
    resolve from the model via Formula 1) or raw path-set groups (pass
    ``annotations={"availability": {...}}``).  The enumeration oracle is
    :func:`service_availability_reference`.
    """
    from repro.dimensions import evaluate_dimensions

    report = evaluate_dimensions(
        structure,
        ["availability"],
        annotations=annotations,
        include_links=include_links,
        formula=formula,
    )
    return report["availability"].value


def service_availability_reference(path_set_groups, availabilities) -> float:
    """The seed's exact state-enumeration evaluator (the oracle the
    registry path is differentially tested against)."""
    from repro.analysis.exact import system_availability_reference

    return system_availability_reference(path_set_groups, availabilities)
