"""Fault trees: the second analysis formalism named in Section VII.

A fault tree expresses the *failure* of the system (top event) as a logic
of component failures (basic events) through AND / OR / k-of-n voting
gates.  It is the boolean dual of the RBD: a series RBD structure fails
when *any* block fails (OR gate); a parallel structure fails when *all*
blocks fail (AND gate).  :func:`from_rbd` performs that conversion, and
:func:`FaultTreeNode.probability` evaluates the top-event probability —
exactly, with repeated basic events handled by factoring (exponential in
the number of *distinct* repeated events) or, with ``method="bdd"``, by
compiling the tree into a BDD over the basic events and running one
O(|BDD|) bottom-up pass (:mod:`repro.dependability.bdd`); ``"auto"``
switches to the BDD once factoring's conditioning depth gets expensive.

Minimal cut sets are extracted with the classic top-down MOCUS expansion
(:func:`FaultTreeNode.minimal_cut_sets`), or from the compiled BDD with
``method="bdd"`` — both fully minimized and identical up to ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, FrozenSet

from repro.dependability import rbd as rbd_mod
from repro.dependability.cutsets import minimize_sets
from repro.errors import AnalysisError

__all__ = [
    "FaultTreeNode",
    "BasicEvent",
    "AndGate",
    "OrGate",
    "VoteGate",
    "from_rbd",
    "MAX_FACTORED_REPEATS",
]


#: ``method="auto"``: factor up to this many distinct repeated events
#: (2^12 tree evaluations), compile to a BDD beyond it.
MAX_FACTORED_REPEATS = 12


class FaultTreeNode:
    """Base class of fault-tree nodes.  Values are failure probabilities."""

    def basic_event_names(self) -> List[str]:
        raise NotImplementedError

    def _evaluate(self, failure_probabilities: Dict[str, float]) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def leaves(self) -> Iterator["BasicEvent"]:
        raise NotImplementedError

    def probability(
        self,
        failure_probabilities: Optional[Dict[str, float]] = None,
        *,
        method: str = "auto",
    ) -> float:
        """Top-event (failure) probability, exact.

        Repeated basic events make the naive gate-by-gate product wrong;
        ``method`` picks the exact strategy: ``"factor"`` conditions on
        every distinct repeated event (2^r tree evaluations — the seed
        behavior), ``"bdd"`` compiles the tree into a BDD over the basic
        events and runs one bottom-up pass, and ``"auto"`` (default)
        factors while ``r <= MAX_FACTORED_REPEATS`` and compiles beyond.
        All strategies agree to within floating-point noise.
        """
        if method not in ("auto", "factor", "bdd"):
            raise AnalysisError(
                f"unknown evaluation method {method!r}; "
                f"expected 'auto', 'factor' or 'bdd'"
            )
        table: Dict[str, float] = {}
        for leaf in self.leaves():
            if leaf.value is not None:
                table[leaf.name] = leaf.value
        if failure_probabilities:
            table.update(failure_probabilities)
        names = self.basic_event_names()
        missing = [n for n in set(names) if n not in table]
        if missing:
            raise AnalysisError(
                f"no failure probability for basic events {sorted(missing)}"
            )
        for name, value in table.items():
            if not 0.0 <= value <= 1.0:
                raise AnalysisError(
                    f"failure probability of {name!r} must be in [0, 1], "
                    f"got {value}"
                )
        repeated = sorted({n for n in names if names.count(n) > 1})
        if method == "auto":
            method = "factor" if len(repeated) <= MAX_FACTORED_REPEATS else "bdd"
        if method == "bdd":
            kernel = self._compile_bdd()
            return kernel.availability(table)
        return self._factor(table, repeated)

    def _compile_bdd(self):
        """The tree as an :class:`~repro.dependability.bdd.AvailabilityKernel`
        over the basic events (variable true = event occurs, root value =
        top-event probability).  Variables are ordered most-shared first."""
        from collections import Counter

        from repro.dependability.bdd import BDD, AvailabilityKernel

        names = self.basic_event_names()
        counts = Counter(names)
        variables = tuple(sorted(counts, key=lambda n: (-counts[n], n)))
        index = {name: i for i, name in enumerate(variables)}
        bdd = BDD(len(variables))
        root = self._build_bdd(bdd, index)
        return AvailabilityKernel(bdd, root, (root,), variables)

    def _build_bdd(self, bdd, index: Dict[str, int]) -> int:
        raise NotImplementedError

    def _factor(self, table: Dict[str, float], repeated: Sequence[str]) -> float:
        if not repeated:
            return self._evaluate(table)
        name = repeated[0]
        rest = repeated[1:]
        failed = dict(table)
        failed[name] = 1.0
        working = dict(table)
        working[name] = 0.0
        q = table[name]
        return q * self._factor(failed, rest) + (1.0 - q) * self._factor(working, rest)

    def availability(
        self, availabilities: Optional[Dict[str, float]] = None
    ) -> float:
        """System availability = 1 - top-event probability, with component
        *availabilities* (converted to failure probabilities)."""
        failure = (
            {name: 1.0 - value for name, value in availabilities.items()}
            if availabilities
            else None
        )
        return 1.0 - self.probability(failure)

    # -- cut sets ------------------------------------------------------------

    def minimal_cut_sets(self, *, method: str = "mocus") -> List[FrozenSet[str]]:
        """Minimal cut sets by top-down MOCUS expansion (default) or from
        the compiled BDD (``method="bdd"`` — one memoized bottom-up pass,
        immune to MOCUS's intermediate cross-product blow-up).

        :class:`VoteGate` is expanded into the OR of AND-combinations of
        its children before MOCUS expansion; the BDD route handles it
        natively through the voting threshold network.
        """
        if method == "bdd":
            # the tree maps event-occurrence variables to top-event
            # occurrence, so its minimal *path* sets (variable sets forcing
            # the function true) are exactly the minimal cut sets
            return minimize_sets(self._compile_bdd().minimal_path_sets())
        if method != "mocus":
            raise AnalysisError(
                f"unknown cut-set method {method!r}; expected 'mocus' or 'bdd'"
            )
        return minimize_sets(self._expand_cut_sets())

    def _expand_cut_sets(self) -> List[FrozenSet[str]]:
        raise NotImplementedError


@dataclass(frozen=True)
class BasicEvent(FaultTreeNode):
    """A component failure, optionally with an intrinsic probability."""

    name: str
    value: Optional[float] = None

    def basic_event_names(self) -> List[str]:
        return [self.name]

    def _evaluate(self, failure_probabilities: Dict[str, float]) -> float:
        return failure_probabilities[self.name]

    def describe(self) -> str:
        return self.name

    def leaves(self) -> Iterator["BasicEvent"]:
        yield self

    def _expand_cut_sets(self) -> List[FrozenSet[str]]:
        return [frozenset([self.name])]

    def _build_bdd(self, bdd, index: Dict[str, int]) -> int:
        return bdd.mk(index[self.name], bdd.FALSE, bdd.TRUE)


class _Gate(FaultTreeNode):
    symbol = "?"

    def __init__(self, children: Sequence[FaultTreeNode | str]):
        if not children:
            raise AnalysisError(f"{type(self).__name__} requires at least one child")
        self.children: List[FaultTreeNode] = [
            BasicEvent(child) if isinstance(child, str) else child
            for child in children
        ]

    def basic_event_names(self) -> List[str]:
        names: List[str] = []
        for child in self.children:
            names.extend(child.basic_event_names())
        return names

    def leaves(self) -> Iterator[BasicEvent]:
        for child in self.children:
            yield from child.leaves()

    def describe(self) -> str:
        return f" {self.symbol} ".join(
            child.describe() if isinstance(child, BasicEvent) else f"({child.describe()})"
            for child in self.children
        )


class AndGate(_Gate):
    """Output fails iff all inputs fail."""

    symbol = "AND"

    def _evaluate(self, failure_probabilities: Dict[str, float]) -> float:
        result = 1.0
        for child in self.children:
            result *= child._evaluate(failure_probabilities)
        return result

    def _expand_cut_sets(self) -> List[FrozenSet[str]]:
        result: List[FrozenSet[str]] = [frozenset()]
        for child in self.children:
            child_sets = child._expand_cut_sets()
            result = [existing | cs for existing in result for cs in child_sets]
        return result

    def _build_bdd(self, bdd, index: Dict[str, int]) -> int:
        root = bdd.TRUE
        for child in self.children:
            root = bdd.apply_and(root, child._build_bdd(bdd, index))
        return root


class OrGate(_Gate):
    """Output fails iff any input fails."""

    symbol = "OR"

    def _evaluate(self, failure_probabilities: Dict[str, float]) -> float:
        result = 1.0
        for child in self.children:
            result *= 1.0 - child._evaluate(failure_probabilities)
        return 1.0 - result

    def _expand_cut_sets(self) -> List[FrozenSet[str]]:
        result: List[FrozenSet[str]] = []
        for child in self.children:
            result.extend(child._expand_cut_sets())
        return result

    def _build_bdd(self, bdd, index: Dict[str, int]) -> int:
        root = bdd.FALSE
        for child in self.children:
            root = bdd.apply_or(root, child._build_bdd(bdd, index))
        return root


class VoteGate(_Gate):
    """k-of-n voting gate: output fails iff at least *k* inputs fail."""

    symbol = "VOTE"

    def __init__(self, k: int, children: Sequence[FaultTreeNode | str]):
        super().__init__(children)
        if not 1 <= k <= len(self.children):
            raise AnalysisError(
                f"VoteGate requires 1 <= k <= n, got k={k}, n={len(self.children)}"
            )
        self.k = k

    def describe(self) -> str:
        return f"{self.k}/{len(self.children)}[" + ", ".join(
            child.describe() for child in self.children
        ) + "]"

    def _evaluate(self, failure_probabilities: Dict[str, float]) -> float:
        dist = [1.0]
        for child in self.children:
            q = child._evaluate(failure_probabilities)
            new = [0.0] * (len(dist) + 1)
            for count, prob in enumerate(dist):
                new[count] += prob * (1.0 - q)
                new[count + 1] += prob * q
            dist = new
        return sum(dist[self.k :])

    def _expand_cut_sets(self) -> List[FrozenSet[str]]:
        from itertools import combinations

        result: List[FrozenSet[str]] = []
        for combo in combinations(self.children, self.k):
            partial: List[FrozenSet[str]] = [frozenset()]
            for child in combo:
                child_sets = child._expand_cut_sets()
                partial = [existing | cs for existing in partial for cs in child_sets]
            result.extend(partial)
        return result

    def _build_bdd(self, bdd, index: Dict[str, int]) -> int:
        # threshold network: at_least[j] = "at least j of the children
        # processed so far have failed", updated child by child with ITE
        at_least = [bdd.TRUE] + [bdd.FALSE] * self.k
        for child in self.children:
            failed = child._build_bdd(bdd, index)
            for j in range(self.k, 0, -1):
                at_least[j] = bdd.ite(failed, at_least[j - 1], at_least[j])
        return at_least[self.k]


def from_rbd(node: "rbd_mod.RBDNode") -> FaultTreeNode:
    """Convert an RBD structure into its dual fault tree.

    Series → OR (fails when any block fails); Parallel → AND (fails when
    all blocks fail); KofN(k, n) available → Vote(n-k+1, n) failed; leaf
    block availability ``a`` → basic-event probability ``1 - a``.
    """
    if isinstance(node, rbd_mod.Block):
        value = None if node.value is None else 1.0 - node.value
        return BasicEvent(node.name, value)
    if isinstance(node, rbd_mod.Series):
        return OrGate([from_rbd(child) for child in node.children])
    if isinstance(node, rbd_mod.Parallel):
        return AndGate([from_rbd(child) for child in node.children])
    if isinstance(node, rbd_mod.KofN):
        n = len(node.children)
        return VoteGate(n - node.k + 1, [from_rbd(child) for child in node.children])
    raise AnalysisError(f"cannot convert RBD node type {type(node).__name__}")
