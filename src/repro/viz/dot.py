"""Graphviz DOT emitters for every diagram kind.

"The generated UPSIM can be used to visualize the set of ICT components
and their connections relevant for a particular pair requester and
provider" (Section VII).  These emitters produce standard DOT text (no
graphviz binary required — any renderer works), one function per diagram
kind of the methodology:

* :func:`object_model_dot` — object diagrams (Figures 9, 11, 12), with
  UML-style ``name:Class`` labels and optional highlighting of a node
  subset (e.g. the UPSIM inside the full infrastructure);
* :func:`class_model_dot` — class diagrams (Figures 1, 8) with stereotype
  and attribute compartments;
* :func:`activity_dot` — activity diagrams (Figures 2, 10);
* :func:`profile_dot` — profile diagrams (Figures 6, 7).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.uml.activity import Action, Activity, FinalNode, ForkNode, InitialNode, JoinNode
from repro.uml.classes import ClassModel
from repro.uml.objects import ObjectModel
from repro.uml.profiles import Profile

__all__ = ["object_model_dot", "class_model_dot", "activity_dot", "profile_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def object_model_dot(
    model: ObjectModel,
    *,
    highlight: Optional[Iterable[str]] = None,
    kind_shapes: bool = True,
) -> str:
    """DOT for an object diagram.

    ``highlight`` fills the named instances — used to show a UPSIM inside
    the full infrastructure.  With ``kind_shapes`` the network-profile
    stereotype selects the node shape (servers as cylinders, printers as
    notes, clients as ellipses, switches as boxes).
    """
    highlighted: Set[str] = set(highlight or ())
    lines = [f"graph {_quote(model.name)} {{"]
    lines.append("  node [fontsize=10];")
    for instance in model.instances:
        attrs = [f"label={_quote(instance.signature)}"]
        shape = "box"
        if kind_shapes:
            classifier = instance.classifier
            if classifier.has_stereotype("Server"):
                shape = "cylinder"
            elif classifier.has_stereotype("Printer"):
                shape = "note"
            elif classifier.has_stereotype("Client"):
                shape = "ellipse"
        attrs.append(f"shape={shape}")
        if instance.name in highlighted:
            attrs.append('style=filled fillcolor="#cfe8ff"')
        lines.append(f"  {_quote(instance.name)} [{' '.join(attrs)}];")
    for link in model.links:
        lines.append(
            f"  {_quote(link.end1.name)} -- {_quote(link.end2.name)};"
        )
    lines.append("}")
    return "\n".join(lines)


def class_model_dot(model: ClassModel) -> str:
    """DOT for a class diagram with stereotype/attribute compartments."""
    lines = [f"digraph {_quote(model.name)} {{"]
    lines.append("  node [shape=record fontsize=10];")
    lines.append("  rankdir=BT;")
    for cls in model.classes:
        stereotypes = ";".join(cls.stereotype_names())
        header = f"\\<\\<{stereotypes}\\>\\>\\n{cls.name}" if stereotypes else cls.name
        if cls.is_abstract:
            header += "\\n(abstract)"
        attributes = []
        for app in cls.applied_stereotypes:
            for name, value in app.values().items():
                if value is not None:
                    attributes.append(f"{name}={value}")
        for prop in cls.attributes:
            rendered = f"{prop.name}:{prop.type_name}"
            if prop.default is not None:
                rendered += f"={prop.default}"
            attributes.append(rendered)
        label = "{" + header + ("|" + "\\l".join(attributes) + "\\l" if attributes else "") + "}"
        lines.append(f"  {_quote(cls.name)} [label={_quote(label)}];")
    for cls in model.classes:
        for parent in cls.superclasses:
            lines.append(
                f"  {_quote(cls.name)} -> {_quote(parent.name)} "
                f"[arrowhead=onormal];"
            )
    for assoc in model.associations:
        lines.append(
            f"  {_quote(assoc.end1.type.name)} -> {_quote(assoc.end2.type.name)} "
            f"[arrowhead=none label={_quote(assoc.name)} fontsize=9 "
            f"taillabel={_quote(assoc.end1.multiplicity_str())} "
            f"headlabel={_quote(assoc.end2.multiplicity_str())}];"
        )
    lines.append("}")
    return "\n".join(lines)


def activity_dot(activity: Activity) -> str:
    """DOT for an activity diagram (Figure 10 style)."""
    lines = [f"digraph {_quote(activity.name)} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [fontsize=10];")
    ids: Dict[str, str] = {}
    for index, node in enumerate(activity.nodes):
        node_id = f"n{index}"
        ids[node.xmi_id] = node_id
        if isinstance(node, InitialNode):
            lines.append(
                f"  {node_id} [shape=circle style=filled fillcolor=black "
                f'label="" width=0.15];'
            )
        elif isinstance(node, FinalNode):
            lines.append(
                f"  {node_id} [shape=doublecircle style=filled "
                f'fillcolor=black label="" width=0.12];'
            )
        elif isinstance(node, (ForkNode, JoinNode)):
            lines.append(
                f'  {node_id} [shape=box style=filled fillcolor=black '
                f'label="" height=0.08 width=0.6];'
            )
        elif isinstance(node, Action):
            lines.append(
                f"  {node_id} [shape=box style=rounded "
                f"label={_quote(node.atomic_service_name)}];"
            )
    for flow in activity.flows:
        lines.append(f"  {ids[flow.source.xmi_id]} -> {ids[flow.target.xmi_id]};")
    lines.append("}")
    return "\n".join(lines)


def profile_dot(profile: Profile) -> str:
    """DOT for a profile diagram (Figures 6, 7 style)."""
    lines = [f"digraph {_quote(profile.name)} {{"]
    lines.append("  node [shape=record fontsize=10];")
    lines.append("  rankdir=BT;")
    for stereotype in profile:
        header = f"\\<\\<Stereotype\\>\\>\\n{stereotype.name}"
        if stereotype.is_abstract:
            header += "\\n(abstract)"
        attributes = [
            f"{prop.name}:{prop.type_name}" for prop in stereotype.attributes
        ]
        label = "{" + header + ("|" + "\\l".join(attributes) + "\\l" if attributes else "") + "}"
        lines.append(f"  {_quote(stereotype.name)} [label={_quote(label)}];")
        for metaclass in stereotype.extends:
            meta_id = f"meta_{metaclass}"
            meta_label = "{\\<\\<metaclass\\>\\>\\n" + metaclass + "}"
            lines.append(f"  {meta_id} [label={_quote(meta_label)}];")
            lines.append(
                f"  {_quote(stereotype.name)} -> {meta_id} [arrowhead=normal "
                f'style=solid label="extends" fontsize=9];'
            )
    for stereotype in profile:
        for parent in stereotype.generalizations:
            lines.append(
                f"  {_quote(stereotype.name)} -> {_quote(parent.name)} "
                f"[arrowhead=onormal];"
            )
    lines.append("}")
    return "\n".join(lines)
