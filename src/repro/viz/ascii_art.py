"""Plain-text renderers for terminals, logs and the benchmark harness.

The figure-regeneration benches print these renderings so every paper
figure has a textual counterpart in ``bench_output.txt``:

* :func:`object_model_text` — Figure 9/11/12 style box rows per network
  layer (BFS layers from a chosen root);
* :func:`activity_text` — Figure 10 style ``●→[a]→[b]→…→◉`` chain with
  fork/join brackets;
* :func:`mapping_table` — Table I as an aligned text table;
* :func:`paths_text` — the §VI-G path listing;
* :func:`profile_text` / :func:`class_table` — profile and Figure 8
  summaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.mapping import ServiceMapping
from repro.core.pathdiscovery import PathSet
from repro.uml.activity import Activity, SPLeaf, SPNode, SPParallel, SPSeries
from repro.uml.classes import ClassModel
from repro.uml.objects import ObjectModel
from repro.uml.profiles import Profile

__all__ = [
    "object_model_text",
    "activity_text",
    "mapping_table",
    "paths_text",
    "profile_text",
    "class_table",
]


def object_model_text(model: ObjectModel, *, root: Optional[str] = None) -> str:
    """Render an object diagram as rows of ``[name:Class]`` boxes.

    Rows are BFS layers from *root* (default: the highest-degree node,
    which in a campus network is a core switch), echoing the layered
    layout of Figure 9.
    """
    if len(model) == 0:
        return "(empty object diagram)"
    if root is None:
        root = max(model.instance_names(), key=model.degree)
    elif not model.has_instance(root):
        root = max(model.instance_names(), key=model.degree)

    visited = {root}
    layers: List[List[str]] = [[root]]
    frontier = [root]
    while frontier:
        next_frontier: List[str] = []
        for name in frontier:
            for neighbor in model.neighbors(name):
                if neighbor.name not in visited:
                    visited.add(neighbor.name)
                    next_frontier.append(neighbor.name)
        if next_frontier:
            layers.append(sorted(next_frontier))
        frontier = next_frontier
    unreachable = sorted(set(model.instance_names()) - visited)
    if unreachable:
        layers.append(unreachable)

    lines = [f"object diagram {model.name!r} ({len(model)} instances, "
             f"{len(model.links)} links)"]
    for layer in layers:
        boxes = "  ".join(f"[{model.get_instance(n).signature}]" for n in layer)
        lines.append("  " + boxes)
    return "\n".join(lines)


def _structure_text(structure: SPNode) -> str:
    if isinstance(structure, SPLeaf):
        return f"[{structure.atomic_service_name}]"
    if isinstance(structure, SPSeries):
        return "→".join(_structure_text(child) for child in structure.children)
    if isinstance(structure, SPParallel):
        inner = " ∥ ".join(_structure_text(child) for child in structure.children)
        return "⟨" + inner + "⟩"
    return "?"


def activity_text(activity: Activity) -> str:
    """Figure 10 style rendering: ``●→[request printing]→…→◉``."""
    structure = activity.to_structure()
    return f"●→{_structure_text(structure)}→◉"


def mapping_table(mapping: ServiceMapping, *, title: str = "") -> str:
    """Table I as aligned text (AS | RQ | PR)."""
    width_service = max(
        [len("atomic service (AS)")] + [len(p.atomic_service) for p in mapping.pairs]
    )
    width_requester = max(
        [len("RQ")] + [len(p.requester) for p in mapping.pairs]
    )
    width_provider = max([len("PR")] + [len(p.provider) for p in mapping.pairs])
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'atomic service (AS)':<{width_service}} | "
        f"{'RQ':<{width_requester}} | {'PR':<{width_provider}}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for pair in mapping.pairs:
        lines.append(
            f"{pair.atomic_service:<{width_service}} | "
            f"{pair.requester:<{width_requester}} | "
            f"{pair.provider:<{width_provider}}"
        )
    return "\n".join(lines)


def paths_text(path_set: PathSet) -> str:
    """The §VI-G style path listing for one pair."""
    lines = [
        f"paths {path_set.requester} -> {path_set.provider} "
        f"({path_set.count}{', truncated' if path_set.truncated else ''}):"
    ]
    for rendered in path_set.as_strings():
        lines.append(f"  {rendered}")
    return "\n".join(lines)


def profile_text(profile: Profile) -> str:
    """Figure 6/7 style profile summary."""
    lines = [f"profile {profile.name!r}:"]
    for stereotype in profile:
        flags = []
        if stereotype.is_abstract:
            flags.append("abstract")
        if stereotype.extends:
            flags.append("extends " + ",".join(stereotype.extends))
        if stereotype.generalizations:
            flags.append(
                "specializes " + ",".join(p.name for p in stereotype.generalizations)
            )
        suffix = f" ({'; '.join(flags)})" if flags else ""
        lines.append(f"  «{stereotype.name}»{suffix}")
        for prop in stereotype.attributes:
            lines.append(f"      {prop.name}: {prop.type_name}")
    return "\n".join(lines)


def class_table(model: ClassModel, attributes: Sequence[str] = ("MTBF", "MTTR", "redundantComponents")) -> str:
    """Figure 8 as a table: one row per concrete class with its values."""
    rows: List[List[str]] = []
    for cls in model.classes:
        if cls.is_abstract:
            continue
        row = [cls.name, ";".join(cls.stereotype_names())]
        for attribute in attributes:
            try:
                value = cls.attribute_value(attribute)
            except Exception:
                value = ""
            row.append(str(value))
        rows.append(row)
    headers = ["class", "stereotypes", *attributes]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(f"{headers[i]:<{widths[i]}}" for i in range(len(headers)))
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(f"{row[i]:<{widths[i]}}" for i in range(len(row))))
    return "\n".join(lines)
