"""Renderers for dependability structures (RBDs and fault trees).

Section VII's outlook transforms the UPSIM into RBDs and fault trees;
these renderers make the transformed structures inspectable — an indented
text tree for terminals and Graphviz DOT for documents.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dependability import faulttree as ft
from repro.dependability import rbd

__all__ = ["rbd_text", "rbd_dot", "fault_tree_text", "fault_tree_dot"]


def _rbd_label(node: rbd.RBDNode) -> str:
    if isinstance(node, rbd.Block):
        if node.value is not None:
            return f"[{node.name} A={node.value:g}]"
        return f"[{node.name}]"
    if isinstance(node, rbd.Series):
        return "SERIES"
    if isinstance(node, rbd.Parallel):
        return "PARALLEL"
    if isinstance(node, rbd.KofN):
        return f"{node.k}-of-{len(node.children)}"
    return type(node).__name__


def rbd_text(node: rbd.RBDNode, *, indent: str = "") -> str:
    """Indented tree rendering of an RBD structure."""
    lines: List[str] = [f"{indent}{_rbd_label(node)}"]
    if not isinstance(node, rbd.Block):
        for child in node.children:  # type: ignore[attr-defined]
            lines.append(rbd_text(child, indent=indent + "  "))
    return "\n".join(lines)


def _emit_dot(
    node,
    label_fn,
    shape_fn,
    lines: List[str],
    counter: Dict[str, int],
) -> str:
    node_id = f"n{counter['n']}"
    counter["n"] += 1
    label = label_fn(node).replace('"', '\\"')
    lines.append(f'  {node_id} [label="{label}" shape={shape_fn(node)}];')
    children = getattr(node, "children", None)
    if children:
        for child in children:
            child_id = _emit_dot(child, label_fn, shape_fn, lines, counter)
            lines.append(f"  {node_id} -> {child_id};")
    return node_id


def rbd_dot(node: rbd.RBDNode, name: str = "rbd") -> str:
    """Graphviz DOT rendering of an RBD structure tree."""

    def shape(n) -> str:
        return "box" if isinstance(n, rbd.Block) else "ellipse"

    lines = [f'digraph "{name}" {{', "  node [fontsize=10];"]
    _emit_dot(node, _rbd_label, shape, lines, {"n": 0})
    lines.append("}")
    return "\n".join(lines)


def _ft_label(node: ft.FaultTreeNode) -> str:
    if isinstance(node, ft.BasicEvent):
        if node.value is not None:
            return f"{node.name} q={node.value:g}"
        return node.name
    if isinstance(node, ft.VoteGate):
        return f"VOTE {node.k}/{len(node.children)}"
    if isinstance(node, ft.AndGate):
        return "AND"
    if isinstance(node, ft.OrGate):
        return "OR"
    return type(node).__name__


def fault_tree_text(node: ft.FaultTreeNode, *, indent: str = "") -> str:
    """Indented tree rendering of a fault tree (top event first)."""
    lines: List[str] = [f"{indent}{_ft_label(node)}"]
    if not isinstance(node, ft.BasicEvent):
        for child in node.children:  # type: ignore[attr-defined]
            lines.append(fault_tree_text(child, indent=indent + "  "))
    return "\n".join(lines)


def fault_tree_dot(node: ft.FaultTreeNode, name: str = "faulttree") -> str:
    """Graphviz DOT rendering of a fault tree."""

    def shape(n) -> str:
        if isinstance(n, ft.BasicEvent):
            return "circle"
        if isinstance(n, ft.AndGate):
            return "invhouse"
        if isinstance(n, ft.OrGate):
            return "invtriangle"
        return "diamond"

    lines = [f'digraph "{name}" {{', "  node [fontsize=10];"]
    _emit_dot(node, _ft_label, shape, lines, {"n": 0})
    lines.append("}")
    return "\n".join(lines)
