"""Mermaid emitters — a second, markdown-embeddable rendering backend.

Mermaid diagrams render directly in GitHub/GitLab markdown, so reports and
issues can embed UPSIM visualizations without a graphviz toolchain.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.uml.activity import Action, Activity, FinalNode, ForkNode, InitialNode, JoinNode
from repro.uml.objects import ObjectModel

__all__ = ["object_model_mermaid", "activity_mermaid"]


def _safe_id(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def object_model_mermaid(
    model: ObjectModel, *, highlight: Optional[Iterable[str]] = None
) -> str:
    """``graph TD`` rendering of an object diagram."""
    highlighted: Set[str] = set(highlight or ())
    lines = ["graph TD"]
    for instance in model.instances:
        node_id = _safe_id(instance.name)
        lines.append(f'    {node_id}["{instance.signature}"]')
    for link in model.links:
        lines.append(
            f"    {_safe_id(link.end1.name)} --- {_safe_id(link.end2.name)}"
        )
    for name in sorted(highlighted):
        if model.has_instance(name):
            lines.append(f"    style {_safe_id(name)} fill:#cfe8ff")
    return "\n".join(lines)


def activity_mermaid(activity: Activity) -> str:
    """``graph LR`` rendering of an activity diagram."""
    lines = ["graph LR"]
    ids: Dict[str, str] = {}
    for index, node in enumerate(activity.nodes):
        node_id = f"n{index}"
        ids[node.xmi_id] = node_id
        if isinstance(node, InitialNode):
            lines.append(f"    {node_id}((start))")
        elif isinstance(node, FinalNode):
            lines.append(f"    {node_id}(((end)))")
        elif isinstance(node, ForkNode):
            lines.append(f"    {node_id}{{fork}}")
        elif isinstance(node, JoinNode):
            lines.append(f"    {node_id}{{join}}")
        elif isinstance(node, Action):
            lines.append(f'    {node_id}["{node.atomic_service_name}"]')
    for flow in activity.flows:
        lines.append(f"    {ids[flow.source.xmi_id]} --> {ids[flow.target.xmi_id]}")
    return "\n".join(lines)
