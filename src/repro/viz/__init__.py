"""Visualization backends: Graphviz DOT, plain text, Mermaid.

Every diagram kind of the methodology (object, class, activity, profile)
has an emitter in each backend; the figure-regeneration benchmarks print
the text backend, and the DOT/Mermaid outputs can be rendered externally.
"""

from repro.viz.ascii_art import (
    activity_text,
    class_table,
    mapping_table,
    object_model_text,
    paths_text,
    profile_text,
)
from repro.viz.dot import activity_dot, class_model_dot, object_model_dot, profile_dot
from repro.viz.mermaid import activity_mermaid, object_model_mermaid
from repro.viz.structures import fault_tree_dot, fault_tree_text, rbd_dot, rbd_text

__all__ = [
    "rbd_text",
    "rbd_dot",
    "fault_tree_text",
    "fault_tree_dot",
    "object_model_dot",
    "class_model_dot",
    "activity_dot",
    "profile_dot",
    "object_model_text",
    "activity_text",
    "mapping_table",
    "paths_text",
    "profile_text",
    "class_table",
    "object_model_mermaid",
    "activity_mermaid",
]
