"""Fault injection and graceful degradation (:mod:`repro.resilience`).

The paper evaluates *user-perceived* dependability in the nominal
topology; this subsystem evaluates it **under failure**: deterministic
fault plans overlay a topology copy-on-write
(:class:`FaultOverlayTopology`), the degradation-tolerant runner
(:func:`discover_many_resilient`) turns unreachable or stalled pairs
into structured :class:`PairDiagnostic` records instead of exceptions,
and :func:`run_campaign` sweeps 1..k-fault combinations and ranks them
by user-visible damage.  See ``docs/robustness.md``.
"""

from repro.resilience.faults import FAULT_KINDS, Fault, FaultPlan
from repro.resilience.overlay import FaultOverlayTopology
from repro.resilience.runner import (
    DiscoveryOutcome,
    PairDiagnostic,
    ResiliencePolicy,
    discover_many_resilient,
)
from repro.resilience.campaign import (
    CampaignReport,
    CampaignResult,
    default_candidates,
    run_campaign,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultOverlayTopology",
    "DiscoveryOutcome",
    "PairDiagnostic",
    "ResiliencePolicy",
    "discover_many_resilient",
    "CampaignReport",
    "CampaignResult",
    "default_candidates",
    "run_campaign",
]
