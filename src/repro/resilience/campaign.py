"""Fault-injection campaigns: sweep fault combinations, rank the damage.

:func:`run_campaign` answers "which failures hurt this service's users,
and how much?" systematically: it generates candidate faults (every
UPSIM component crash by default, optionally cable cuts), sweeps all
single- and k-fault combinations, evaluates each combination on a
copy-on-write :class:`~repro.resilience.overlay.FaultOverlayTopology`
with the degradation-tolerant runner, and ranks the results by
unreachable-pair count and availability loss — reusing
:func:`repro.analysis.whatif.combined_failure_impact` for the
availability side of the ranking.

Determinism contract: a campaign is a pure function of its inputs.
Flapping faults resolve through seeded schedules, evaluation memoizes by
resolved-plan fingerprint (so a flap that resolves to the same crash
pattern on two ticks is evaluated once — and the underlying PathSets are
additionally memoized by overlay fingerprint inside the engine), and
:meth:`CampaignReport.to_dict` excludes wall-clock timing.  Equal inputs
therefore produce byte-identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.exact import DEFAULT_KERNEL, KERNELS
from repro.analysis.whatif import combined_failure_impact
from repro.analysis.transformations import component_availabilities
from repro.core.mapping import ServiceMapping
from repro.core.upsim import UPSIM, generate_upsim
from repro.dependability.availability import (
    steady_state_availability,
    with_redundancy,
)
from repro.errors import FaultPlanError
from repro.network.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience.faults import Fault, FaultPlan
from repro.resilience.runner import (
    DiscoveryOutcome,
    PairDiagnostic,
    ResiliencePolicy,
    discover_many_resilient,
)
from repro.services.composite import CompositeService
from repro.uml.objects import ObjectModel

__all__ = ["CampaignResult", "CampaignReport", "run_campaign", "default_candidates"]

_M_CAMPAIGNS = _metrics.counter(
    "repro_campaign_runs_total", "Fault-injection campaigns executed"
)
_M_COMBINATIONS = _metrics.counter(
    "repro_campaign_combinations_total",
    "Fault combinations swept across campaigns",
)
_M_FAULTS_INJECTED = _metrics.counter(
    "repro_campaign_faults_injected_total",
    "Individual faults applied over all evaluated fault plans",
)
_M_MEMO_HITS = _metrics.counter(
    "repro_campaign_memo_hits_total",
    "Campaign evaluations answered from the resolved-plan memo",
)


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated consequences of one fault combination.

    Plans without flapping evaluate exactly once (``ticks_evaluated ==
    1``); flapping plans are swept over the tick range and aggregated:
    unreachable pairs and service outages are unions over ticks,
    availability is the per-tick mean, and ``diagnostics`` carries the
    worst tick's per-pair records.
    """

    faults: Tuple[str, ...]
    fingerprint: str
    ticks_evaluated: int
    #: ticks on which at least one fault was active (flap schedules)
    active_ticks: int
    unreachable_pairs: Tuple[Tuple[str, str], ...]
    disconnected_services: Tuple[str, ...]
    degraded_services: Tuple[str, ...]
    #: mean service availability over the evaluated ticks
    availability: float
    #: nominal baseline minus :attr:`availability`
    availability_loss: float
    diagnostics: Tuple[PairDiagnostic, ...] = ()

    @property
    def is_single_point_of_failure(self) -> bool:
        """A *single* injected fault that severs at least one pair."""
        return len(self.faults) == 1 and bool(self.unreachable_pairs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "faults": list(self.faults),
            "fingerprint": self.fingerprint,
            "ticks_evaluated": self.ticks_evaluated,
            "active_ticks": self.active_ticks,
            "unreachable_pairs": [list(p) for p in self.unreachable_pairs],
            "disconnected_services": list(self.disconnected_services),
            "degraded_services": list(self.degraded_services),
            "availability": self.availability,
            "availability_loss": self.availability_loss,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


@dataclass
class CampaignReport:
    """Machine-readable outcome of one campaign, ranked most severe first."""

    service_name: str
    topology_fingerprint: str
    baseline_availability: float
    pairs: Tuple[Tuple[str, str], ...]
    results: List[CampaignResult] = field(default_factory=list)

    def single_points_of_failure(self) -> List[CampaignResult]:
        return [r for r in self.results if r.is_single_point_of_failure]

    def worst(self, n: int = 5) -> List[CampaignResult]:
        return self.results[:n]

    def to_dict(self) -> Dict[str, object]:
        return {
            "service": self.service_name,
            "topology_fingerprint": self.topology_fingerprint,
            "baseline_availability": self.baseline_availability,
            "pairs": [list(p) for p in self.pairs],
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self, *, limit: Optional[int] = 10) -> str:
        lines = [
            f"fault campaign for service {self.service_name!r} "
            f"(baseline availability {self.baseline_availability:.9f})",
            f"{'faults':<32} {'unreachable':>11} {'outages':>8} "
            f"{'availability':>13} {'loss':>10}",
        ]
        shown = self.results if limit is None else self.results[:limit]
        for result in shown:
            lines.append(
                f"{' + '.join(result.faults):<32} "
                f"{len(result.unreachable_pairs):>11} "
                f"{len(result.disconnected_services):>8} "
                f"{result.availability:>13.9f} "
                f"{result.availability_loss:>10.3e}"
            )
        hidden = len(self.results) - len(shown)
        if hidden > 0:
            lines.append(f"... {hidden} more combination(s)")
        return "\n".join(lines)


def default_candidates(
    upsim: UPSIM, *, include_links: bool = False
) -> List[Fault]:
    """One crash fault per UPSIM component (the components whose failure
    can affect this service at all), plus one cut per used link when
    ``include_links`` is set."""
    candidates = [Fault.crash(name) for name in sorted(upsim.component_names)]
    if include_links:
        candidates.extend(
            Fault.cut(a, b) for a, b in sorted(upsim.used_links())
        )
    return candidates


def _degraded_table(
    upsim: UPSIM, plan: FaultPlan, nominal: Dict[str, float]
) -> Dict[str, float]:
    """The availability table with the plan's degrade overrides applied."""
    overrides = plan.overrides()
    if not overrides:
        return nominal
    table = dict(nominal)
    model = upsim.model
    for target, values in overrides.items():
        if target not in table:
            continue  # degraded component outside the user-perceived scope
        if "|" in target and not model.has_instance(target):
            a, b = target.split("|", 1)
            link = model.find_link(a, b)
            properties = link.property_dict() if link is not None else {}
        else:
            properties = model.get_instance(target).property_dict()
        mtbf = float(values.get("MTBF", properties.get("MTBF", 0.0)))
        mttr = float(values.get("MTTR", properties.get("MTTR", 0.0)))
        redundant = int(properties.get("redundantComponents") or 0)
        table[target] = with_redundancy(
            steady_state_availability(mtbf, mttr), redundant
        )
    return table


@dataclass
class _Evaluation:
    """Cached per-resolved-plan evaluation."""

    outcome: DiscoveryOutcome
    unreachable: Tuple[Tuple[str, str], ...]
    disconnected: Tuple[str, ...]
    degraded: Tuple[str, ...]
    availability: float


def run_campaign(
    infrastructure: Union[ObjectModel, Topology],
    service: CompositeService,
    mapping: ServiceMapping,
    *,
    candidates: Optional[Iterable[Union[Fault, str]]] = None,
    k: int = 1,
    ticks: int = 4,
    include_links: bool = False,
    policy: Optional[ResiliencePolicy] = None,
    max_depth: Optional[int] = None,
    max_paths: Optional[int] = None,
    kernel: str = DEFAULT_KERNEL,
) -> CampaignReport:
    """Sweep all 1..k-fault combinations of the candidate faults.

    *candidates* accepts :class:`Fault` objects or spec strings; the
    default is every UPSIM component crash (plus used-link cuts with
    ``include_links``).  *ticks* bounds the schedule sweep for flapping
    candidates; plans without flapping are evaluated once.  Evaluations
    are memoized by resolved-plan fingerprint, so overlapping
    combinations and repeating flap schedules cost nothing extra.

    *kernel* selects the availability evaluator
    (:data:`repro.analysis.exact.KERNELS`).  The default ``"bdd"``
    compiles the service structure once; every fault combination then
    costs one O(|BDD|) probability pass instead of a fresh 2^n state
    enumeration — the campaign sweep's dominant cost in the seed.  The
    report is byte-identical for equal inputs regardless of kernel (up
    to float noise between kernels).
    """
    if k < 1:
        raise FaultPlanError(f"campaign needs k >= 1, got {k}")
    if ticks < 1:
        raise FaultPlanError(f"campaign needs ticks >= 1, got {ticks}")
    if kernel not in KERNELS:
        raise FaultPlanError(
            f"unknown availability kernel {kernel!r}; expected one of {KERNELS}"
        )
    topology = (
        infrastructure
        if isinstance(infrastructure, Topology)
        else Topology(infrastructure)
    )
    policy = policy or ResiliencePolicy()

    # nominal reference: strict generation — a campaign over a service
    # that does not work nominally has no baseline to degrade from
    upsim = generate_upsim(
        topology, service, mapping, max_depth=max_depth, max_paths=max_paths
    )
    pairs = tuple(
        (pair.requester, pair.provider)
        for pair in mapping.pairs_for_service(service)
    )
    nominal_table = component_availabilities(upsim.model, include_links=True)
    baseline = combined_failure_impact(
        upsim, (), availabilities=nominal_table, kernel=kernel
    ).baseline_availability

    if candidates is None:
        fault_pool = default_candidates(upsim, include_links=include_links)
    else:
        fault_pool = [
            Fault.parse(c) if isinstance(c, str) else c for c in candidates
        ]
    if not fault_pool:
        raise FaultPlanError("campaign has no candidate faults to inject")

    evaluations: Dict[str, _Evaluation] = {}

    def evaluate(resolved: FaultPlan) -> _Evaluation:
        cached = evaluations.get(resolved.fingerprint())
        if cached is not None:
            _M_MEMO_HITS.inc()
            return cached
        _M_FAULTS_INJECTED.inc(len(resolved))
        with _trace.span("campaign.evaluate", faults=len(resolved)):
            return _evaluate_fresh(resolved)

    def _evaluate_fresh(resolved: FaultPlan) -> _Evaluation:
        overlay = resolved.apply(topology)
        outcome = discover_many_resilient(
            overlay,
            pairs,
            max_depth=max_depth,
            max_paths=max_paths,
            policy=policy,
        )
        table = _degraded_table(upsim, resolved, nominal_table)
        structural = [
            name for name in resolved.component_names() if name in table
        ]
        impact = combined_failure_impact(
            upsim, structural, availabilities=table, kernel=kernel
        )
        # degrade faults leave every path alive but still weaken any
        # service whose paths visit an overridden component
        degraded = set(impact.degraded_services)
        weakened = {
            target
            for target in resolved.overrides()
            if table.get(target) != nominal_table.get(target)
        }
        if weakened:
            for atomic_service, path_set in upsim.path_sets.items():
                if atomic_service in degraded:
                    continue
                if atomic_service in impact.disconnected_services:
                    continue
                touched = set(path_set.nodes())
                touched.update(
                    "|".join(sorted((a, b))) for a, b in path_set.links()
                )
                if touched & weakened:
                    degraded.add(atomic_service)
        evaluation = _Evaluation(
            outcome=outcome,
            unreachable=tuple(
                (d.requester, d.provider) for d in outcome.failed()
            ),
            disconnected=impact.disconnected_services,
            degraded=tuple(sorted(degraded)),
            availability=impact.conditional_availability,
        )
        evaluations[resolved.fingerprint()] = evaluation
        return evaluation

    _M_CAMPAIGNS.inc()
    with _trace.span(
        "campaign.run", service=service.name, k=k, ticks=ticks, kernel=kernel
    ) as sweep_span:
        results = _sweep(
            fault_pool, k, ticks, evaluate, baseline, sweep_span
        )
    _metrics.gauge(
        "repro_campaign_memo_entries",
        "Distinct resolved fault plans evaluated by the last campaign",
    ).set(len(evaluations))
    return CampaignReport(
        service_name=service.name,
        topology_fingerprint=topology.fingerprint(),
        baseline_availability=baseline,
        pairs=pairs,
        results=results,
    )


def _sweep(
    fault_pool: List[Fault],
    k: int,
    ticks: int,
    evaluate,
    baseline: float,
    sweep_span,
) -> List[CampaignResult]:
    """All 1..k-fault combinations, evaluated and ranked most severe first."""
    results: List[CampaignResult] = []
    for size in range(1, min(k, len(fault_pool)) + 1):
        for combo in combinations(fault_pool, size):
            plan = FaultPlan(combo)
            if len(plan) < size:
                continue  # duplicate faults collapsed — same as a smaller combo
            _M_COMBINATIONS.inc()
            tick_range = range(ticks) if not plan.is_resolved else range(1)
            unreachable: Dict[Tuple[str, str], None] = {}
            disconnected: Dict[str, None] = {}
            degraded: Dict[str, None] = {}
            availability_sum = 0.0
            active_ticks = 0
            worst: Optional[_Evaluation] = None
            for tick in tick_range:
                resolved = plan.at(tick)
                evaluation = evaluate(resolved)
                if len(resolved):
                    active_ticks += 1
                availability_sum += evaluation.availability
                for pair in evaluation.unreachable:
                    unreachable.setdefault(pair)
                for name in evaluation.disconnected:
                    disconnected.setdefault(name)
                for name in evaluation.degraded:
                    degraded.setdefault(name)
                if worst is None or len(evaluation.unreachable) > len(
                    worst.unreachable
                ):
                    worst = evaluation
            assert worst is not None
            availability = availability_sum / len(tick_range)
            results.append(
                CampaignResult(
                    faults=plan.specs(),
                    fingerprint=plan.fingerprint(),
                    ticks_evaluated=len(tick_range),
                    active_ticks=active_ticks,
                    unreachable_pairs=tuple(unreachable),
                    disconnected_services=tuple(disconnected),
                    degraded_services=tuple(degraded),
                    availability=availability,
                    availability_loss=baseline - availability,
                    diagnostics=tuple(worst.outcome.diagnostics),
                )
            )

    results.sort(
        key=lambda r: (
            -len(r.unreachable_pairs),
            -r.availability_loss,
            r.faults,
        )
    )
    sweep_span.set(combinations=len(results))
    return results
