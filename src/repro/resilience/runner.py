"""Degradation-tolerant path discovery: timeouts, retries, diagnostics.

The engine's :func:`repro.core.engine.discover_many` is strict: the first
worker failure aborts the whole batch.  :func:`discover_many_resilient`
keeps going — every (requester, provider) pair independently resolves to
either a :class:`~repro.core.pathdiscovery.PathSet` or a structured
:class:`PairDiagnostic` explaining *why* it failed (crashed endpoint,
severed cut, expired deadline, repeated worker error) — so one
unreachable pair degrades the analysis instead of killing it.

Mechanics, governed by a :class:`ResiliencePolicy`:

* **per-pair timeout** — each discovery attempt runs on its own thread
  and is abandoned when ``pair_timeout`` expires (the DFS is pure CPU
  with no cancellation point; the abandoned thread finishes in the
  background and at worst warms the PathSet cache).  Timeouts are not
  retried: enumeration is deterministic, so a second identical attempt
  would expire identically.
* **bounded retry with backoff** — unexpected worker errors are retried
  up to ``retries`` times with exponential backoff; deterministic
  failures (missing endpoints, empty path sets) are diagnosed
  immediately.
* **graceful degradation** — unreachable pairs get a diagnostic carrying
  the active fault context and the *nearest-reachable cut*: the set of
  crashed components / severed links sitting on the frontier of the
  requester's surviving connected region — the first thing an operator
  would check.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.engine import discover
from repro.core.pathdiscovery import PathSet
from repro.errors import PathDiscoveryTimeout
from repro.network.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience.faults import _link_name
from repro.resilience.overlay import FaultOverlayTopology

__all__ = [
    "ResiliencePolicy",
    "PairDiagnostic",
    "DiscoveryOutcome",
    "discover_many_resilient",
]

_M_PAIRS = _metrics.counter(
    "repro_resilience_pairs_total",
    "Resilient pair discoveries by final status",
    labelnames=("status",),
)
_M_RETRIES = _metrics.counter(
    "repro_resilience_retries_total",
    "Discovery attempts retried after a worker error",
)
_M_TIMEOUTS = _metrics.counter(
    "repro_resilience_timeouts_total",
    "Discovery attempts abandoned at the pair deadline",
)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the degradation-tolerant runner.

    ``pair_timeout``
        Seconds allowed per discovery attempt (``None`` disables the
        deadline).  The default keeps pathological topologies from
        stalling a campaign while staying far above any realistic
        enumeration.
    ``retries``
        Extra attempts after the first worker *error* (timeouts and
        deterministic unreachability are never retried).
    ``backoff``
        Base sleep before retry *n* (seconds, doubled each retry).
    ``jobs``
        Fan-out width across pairs (``None``/1 = sequential).
    """

    pair_timeout: Optional[float] = 30.0
    retries: int = 1
    backoff: float = 0.05
    jobs: Optional[int] = None

    def __post_init__(self):
        if self.pair_timeout is not None and self.pair_timeout <= 0:
            raise ValueError("pair_timeout must be > 0 or None")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be >= 1 or None")


@dataclass(frozen=True)
class PairDiagnostic:
    """Structured outcome of one (requester, provider) discovery.

    ``status`` is one of ``"ok"``, ``"unreachable"``, ``"timeout"``,
    ``"error"``; everything except ``"ok"`` means the pair contributed no
    paths and the surrounding analysis degraded around it.
    """

    requester: str
    provider: str
    status: str
    reason: str = ""
    attempts: int = 1
    path_count: int = 0
    #: spec strings of the faults active on the analyzed topology
    fault_context: Tuple[str, ...] = ()
    #: crashed components / severed links on the frontier of the
    #: requester's surviving region (empty when not determinable)
    nearest_cut: Tuple[str, ...] = ()
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view.  Wall-clock timing is deliberately excluded so
        equal campaigns serialize identically (determinism contract)."""
        return {
            "requester": self.requester,
            "provider": self.provider,
            "status": self.status,
            "reason": self.reason,
            "attempts": self.attempts,
            "path_count": self.path_count,
            "fault_context": list(self.fault_context),
            "nearest_cut": list(self.nearest_cut),
        }

    def describe(self) -> str:
        label = f"{self.requester} -> {self.provider}"
        if self.ok:
            return f"{label}: reachable ({self.path_count} path(s))"
        text = f"{label}: {self.status}"
        if self.reason:
            text += f" ({self.reason})"
        if self.nearest_cut:
            text += f"; nearest cut: {', '.join(self.nearest_cut)}"
        return text


@dataclass
class DiscoveryOutcome:
    """Result of one resilient batch discovery."""

    #: PathSets of the reachable pairs, keyed (requester, provider),
    #: first-seen order
    path_sets: Dict[Tuple[str, str], PathSet] = field(default_factory=dict)
    #: one diagnostic per distinct pair, first-seen order (ok pairs too)
    diagnostics: List[PairDiagnostic] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return all(diag.ok for diag in self.diagnostics)

    def failed(self) -> List[PairDiagnostic]:
        return [diag for diag in self.diagnostics if not diag.ok]

    def diagnostic_for(self, requester: str, provider: str) -> PairDiagnostic:
        for diag in self.diagnostics:
            if (diag.requester, diag.provider) == (requester, provider):
                return diag
        raise KeyError((requester, provider))


def _nearest_cut(topology: Topology, requester: str) -> Tuple[str, ...]:
    """Faulted elements on the frontier of the requester's surviving region.

    Only meaningful on a fault overlay: walk the surviving component
    around *requester*, then collect every crashed neighbor and severed
    link incident to it in the *base* topology.  On a plain topology (or
    a crashed requester) there is no frontier to report.
    """
    if not isinstance(topology, FaultOverlayTopology):
        return ()
    if not topology.has_node(requester):
        # the requester itself is down — it is its own cut
        return (requester,) if topology.base.has_node(requester) else ()
    region = topology.reachable_from(requester)
    cut: set = set()
    down = topology._down
    severed = topology._cut
    for node in region:
        for neighbor in topology.base.neighbors(node):
            if neighbor in down:
                cut.add(neighbor)
            elif _link_name(node, neighbor) in severed:
                cut.add(_link_name(node, neighbor))
    return tuple(sorted(cut))


def _attempt_with_deadline(run, timeout: Optional[float]):
    """Run *run()* on a dedicated thread, abandoning it after *timeout*.

    Returns ``(finished, result, exception)``.  The DFS has no
    cancellation point, so an expired attempt's thread is left to finish
    in the background (daemonized; at worst it warms the PathSet cache).
    """
    if timeout is None:
        try:
            return True, run(), None
        except Exception as exc:  # noqa: BLE001 - diagnosed by the caller
            return True, None, exc
    box: Dict[str, object] = {}

    def target() -> None:
        try:
            box["result"] = run()
        except Exception as exc:  # noqa: BLE001 - diagnosed by the caller
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        return False, None, None
    return True, box.get("result"), box.get("error")


def discover_many_resilient(
    topology: Topology,
    pairs: Iterable[Tuple[str, str]],
    *,
    max_depth: Optional[int] = None,
    max_paths: Optional[int] = None,
    policy: Optional[ResiliencePolicy] = None,
    use_cache: bool = True,
) -> DiscoveryOutcome:
    """Discover paths for many pairs, degrading instead of raising.

    Duplicate pairs are processed once; the outcome's diagnostics list
    carries exactly one entry per distinct pair in first-seen order, so
    reports are deterministic regardless of ``policy.jobs``.
    """
    policy = policy or ResiliencePolicy()
    unique = list(dict.fromkeys(tuple(p) for p in pairs))
    context = (
        topology.plan.specs()
        if isinstance(topology, FaultOverlayTopology)
        else ()
    )

    def run_pair(pair: Tuple[str, str]) -> PairDiagnostic:
        requester, provider = pair
        started = time.perf_counter()

        def diag(status: str, reason: str = "", **kw) -> PairDiagnostic:
            _M_PAIRS.labels(status=status).inc()
            return PairDiagnostic(
                requester,
                provider,
                status,
                reason=reason,
                fault_context=context,
                seconds=time.perf_counter() - started,
                **kw,
            )

        # deterministic pre-flight: a missing endpoint can never succeed,
        # so diagnose it without burning an attempt
        for role, node in (("requester", requester), ("provider", provider)):
            if not topology.has_node(node):
                crashed = isinstance(
                    topology, FaultOverlayTopology
                ) and topology.base.has_node(node)
                reason = (
                    f"{role} {node!r} crashed by fault injection"
                    if crashed
                    else f"{role} {node!r} is not a component of the topology"
                )
                return diag(
                    "unreachable",
                    reason,
                    nearest_cut=(node,) if crashed else (),
                )

        attempts = policy.retries + 1
        last_error: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            finished, result, error = _attempt_with_deadline(
                lambda: discover(
                    topology,
                    requester,
                    provider,
                    max_depth=max_depth,
                    max_paths=max_paths,
                    use_cache=use_cache,
                ),
                policy.pair_timeout,
            )
            if not finished:
                # enumeration is deterministic — retrying an expired
                # deadline would expire again, so diagnose immediately
                _M_TIMEOUTS.inc()
                timeout_error = PathDiscoveryTimeout(
                    requester, provider, policy.pair_timeout or 0.0
                )
                return diag("timeout", str(timeout_error), attempts=attempt)
            if error is None:
                path_set = result
                assert isinstance(path_set, PathSet)
                if not path_set:
                    return diag(
                        "unreachable",
                        "no surviving path"
                        if context
                        else "no path in the topology",
                        attempts=attempt,
                        nearest_cut=_nearest_cut(topology, requester),
                    )
                outcome.path_sets[pair] = path_set
                return diag(
                    "ok", attempts=attempt, path_count=len(path_set.paths)
                )
            last_error = error
            if attempt <= policy.retries:
                _M_RETRIES.inc()
                if policy.backoff > 0:
                    time.sleep(policy.backoff * (2 ** (attempt - 1)))
        return diag(
            "error",
            f"{type(last_error).__name__}: {last_error}",
            attempts=attempts,
        )

    outcome = DiscoveryOutcome()
    jobs = policy.jobs
    tracer = _trace.get_tracer()

    def traced_pair(pair: Tuple[str, str], parent=None) -> PairDiagnostic:
        with tracer.context(parent):
            with tracer.span(
                "resilience.pair", requester=pair[0], provider=pair[1]
            ) as span:
                diag = run_pair(pair)
                span.set(status=diag.status, attempts=diag.attempts)
                return diag

    with tracer.span(
        "resilience.discover_many", pairs=len(unique), jobs=jobs or 1
    ):
        if jobs is not None and jobs > 1 and len(unique) > 1:
            # capture the batch span: worker threads have empty span stacks
            parent = tracer.current()
            with ThreadPoolExecutor(max_workers=jobs) as executor:
                futures = {
                    pair: executor.submit(traced_pair, pair, parent)
                    for pair in unique
                }
                results = {pair: futures[pair].result() for pair in unique}
        else:
            results = {pair: traced_pair(pair) for pair in unique}
    # rebuild stores in first-seen order (workers may finish out of order)
    ordered_sets = {
        pair: outcome.path_sets[pair]
        for pair in unique
        if pair in outcome.path_sets
    }
    outcome.path_sets = ordered_sets
    outcome.diagnostics = [results[pair] for pair in unique]
    return outcome
