"""Copy-on-write fault overlays over a :class:`~repro.network.topology.Topology`.

A :class:`FaultOverlayTopology` presents the base infrastructure *as if*
a resolved :class:`~repro.resilience.faults.FaultPlan` had happened:
crashed components and severed links are filtered out of every structural
read, degrade faults override MTBF/MTTR property reads, and nothing else
changes — the underlying object model is shared, never copied, and never
mutated, so the nominal view stays valid (and its compiled-engine caches
stay warm) while any number of fault scenarios are analyzed against the
same model.

The overlay *is a* ``Topology``: the compiled path engine, the pipeline
and every analysis accept it unchanged.  Its :meth:`fingerprint` hashes
``(base fingerprint, plan fingerprint)``, so

* equal plans over the same base compile once and share memoized
  PathSets (injecting the same fault twice is a cache hit);
* different plans — or a mutated base model — invalidate implicitly;
* the nominal topology's fingerprint is untouched, so cached nominal
  results are reused after a fault campaign ends.

Overlays nest: applying a plan to an overlay composes the filters, which
is how k-fault campaigns layer an extra fault over a standing degraded
state.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Set, Tuple

from repro.errors import FaultPlanError, TopologyError
from repro.network.topology import Topology
from repro.resilience.faults import FaultPlan, _link_name
from repro.uml.objects import InstanceSpecification, Link

__all__ = ["FaultOverlayTopology"]


class FaultOverlayTopology(Topology):
    """A topology view with a resolved fault plan applied on read."""

    def __init__(self, base: Topology, plan: FaultPlan):
        if not plan.is_resolved:
            raise FaultPlanError(
                "overlay requires a resolved plan (no flapping faults); "
                "resolve with FaultPlan.at(tick) first"
            )
        super().__init__(base.model)
        self.base = base
        self.plan = plan
        self._down: Set[str] = set(plan.downed_nodes())
        self._cut: Set[str] = set(plan.cut_links())
        self._overrides = plan.overrides()
        self._validate()

    def _validate(self) -> None:
        """Every fault target must exist in the base topology."""
        problems: List[str] = []
        base = self.base
        link_names = {_link_name(a, b) for a, b in base.edges()}
        for fault in self.plan:
            if fault.kind == "cut":
                if fault.target not in link_names:
                    problems.append(f"cut: no link {fault.target!r}")
            elif fault.kind == "degrade" and "|" in fault.target:
                if fault.target not in link_names:
                    problems.append(f"degrade: no link {fault.target!r}")
            elif not base.has_node(fault.target):
                problems.append(
                    f"{fault.kind}: no component {fault.target!r}"
                )
        if problems:
            raise FaultPlanError(
                f"fault plan does not match topology {base.name!r}: "
                f"{'; '.join(problems)}"
            )

    # -- size and membership ----------------------------------------------

    def node_count(self) -> int:
        return len(self.nodes())

    def link_count(self) -> int:
        return len(self.edges())

    def nodes(self) -> List[str]:
        down = self._down
        return [name for name in self.base.nodes() if name not in down]

    def has_node(self, name: str) -> bool:
        return name not in self._down and self.base.has_node(name)

    # -- structure -----------------------------------------------------------

    def _alive_edge(self, a: str, b: str) -> bool:
        return (
            a not in self._down
            and b not in self._down
            and _link_name(a, b) not in self._cut
        )

    def neighbors(self, name: str) -> List[str]:
        if not self.has_node(name):
            raise TopologyError(f"unknown node {name!r}")
        return [
            other
            for other in self.base.neighbors(name)
            if self._alive_edge(name, other)
        ]

    def degree(self, name: str) -> int:
        return len(self.neighbors(name))

    def edges(self) -> List[Tuple[str, str]]:
        return [
            (a, b) for a, b in self.base.edges() if self._alive_edge(a, b)
        ]

    def link_between(self, a: str, b: str) -> Link:
        if not self._alive_edge(a, b):
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return self.base.link_between(a, b)

    def instance(self, name: str) -> InstanceSpecification:
        if not self.has_node(name):
            raise TopologyError(f"unknown node {name!r}")
        return self.base.instance(name)

    def nodes_of_kind(self, stereotype_name: str) -> List[str]:
        down = self._down
        return [
            name
            for name in self.base.nodes_of_kind(stereotype_name)
            if name not in down
        ]

    def is_connected(self) -> bool:
        nodes = self.nodes()
        if not nodes:
            return False
        return len(self.reachable_from(nodes[0])) == len(nodes)

    def reachable_from(self, start: str) -> Set[str]:
        """Names reachable from *start* through the surviving structure."""
        if not self.has_node(start):
            raise TopologyError(f"unknown node {start!r}")
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def cycle_rank(self) -> int:
        components = 0
        remaining = set(self.nodes())
        while remaining:
            components += 1
            remaining -= self.reachable_from(next(iter(remaining)))
        return self.link_count() - self.node_count() + components

    # -- properties -------------------------------------------------------------

    def node_property(self, name: str, attribute: str) -> Any:
        override = self._overrides.get(name)
        if override is not None and attribute in override:
            self.instance(name)  # membership check (crashed nodes are gone)
            return override[attribute]
        return super().node_property(name, attribute)

    def link_property(self, a: str, b: str, attribute: str) -> Any:
        override = self._overrides.get(_link_name(a, b))
        if override is not None and attribute in override:
            self.link_between(a, b)  # membership check (cut links are gone)
            return override[attribute]
        if not self._alive_edge(a, b):
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return self.base.link_property(a, b, attribute)

    def availability_overrides(self) -> Dict[str, Dict[str, float]]:
        """Per-component MTBF/MTTR overrides, for availability tables."""
        return {name: dict(vals) for name, vals in self._overrides.items()}

    # -- identity and conversions ----------------------------------------------

    def fingerprint(self) -> str:
        """Hash of ``(base fingerprint, plan fingerprint)``.

        Recomputed on every call (like the base), so a mutation of the
        shared object model invalidates overlay caches too.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(b"overlay\x00")
        digest.update(self.base.fingerprint().encode("ascii"))
        digest.update(b"\x00")
        digest.update(self.plan.fingerprint().encode("ascii"))
        return digest.hexdigest()

    def to_networkx(self, *, with_properties: bool = False):
        graph = self.base.to_networkx(with_properties=with_properties)
        graph.remove_nodes_from(
            [n for n in list(graph.nodes) if n in self._down]
        )
        graph.remove_edges_from(
            [
                (a, b)
                for a, b in list(graph.edges)
                if _link_name(a, b) in self._cut
            ]
        )
        return graph
