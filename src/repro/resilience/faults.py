"""Deterministic fault plans: what to break, described as data.

A :class:`Fault` is one injected defect; a :class:`FaultPlan` is a set of
them, applied together.  Plans are *values*: they parse from compact spec
strings (the CLI's ``--inject`` syntax), compare by content, and carry a
blake2b :meth:`~FaultPlan.fingerprint` so the path engine's memoization
stays correct — two overlays built from equal plans over the same base
topology hash identically and share cached PathSets, while the nominal
topology keeps its own fingerprint and its cached results untouched.

Supported fault kinds (spec syntax in parentheses):

``crash``  (``crash:<component>``)
    The component is down: removed from the overlay together with every
    incident link.
``cut``  (``cut:<a>|<b>``)
    The cable between *a* and *b* is severed; both endpoints stay up.
``flap``  (``flap:<component>@<seed>[:<duty>]``)
    Intermittent failure: the component is down on a pseudo-random
    subset of discrete ticks drawn from a seeded schedule (*duty* is the
    per-tick down probability, default 0.5).  Flapping must be resolved
    to a concrete tick with :meth:`FaultPlan.at` before the plan can be
    applied — the schedule is a pure function of (target, seed, tick),
    so equal seeds always produce equal campaigns.
``degrade``  (``degrade:<component>:mtbf=<h>[,mttr=<h>]``)
    The component stays connected but its dependability attributes are
    overridden — an aging device or a flaky optic that still passes
    traffic.  Structure-only consumers (path discovery) are unaffected;
    availability analysis sees the degraded MTBF/MTTR.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import FaultPlanError

__all__ = ["Fault", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = ("crash", "cut", "flap", "degrade")


def _link_name(a: str, b: str) -> str:
    """Canonical ``a|b`` link label (matches dependability cut-set names)."""
    return f"{a}|{b}" if a <= b else f"{b}|{a}"


@dataclass(frozen=True)
class Fault:
    """One injected defect.  Construct via :meth:`parse` or the factories."""

    kind: str
    target: str
    seed: Optional[int] = None
    duty: Optional[float] = None
    mtbf: Optional[float] = None
    mttr: Optional[float] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} (supported: "
                f"{', '.join(FAULT_KINDS)})"
            )
        if not self.target:
            raise FaultPlanError(f"{self.kind} fault needs a target component")
        if self.kind == "cut":
            a, sep, b = self.target.partition("|")
            if not sep or not a or not b:
                raise FaultPlanError(
                    f"cut fault target must name a link as '<a>|<b>', "
                    f"got {self.target!r}"
                )
            if a == b:
                raise FaultPlanError(
                    f"cut fault needs two distinct endpoints, got {self.target!r}"
                )
        if self.kind == "flap":
            if self.seed is None:
                raise FaultPlanError(
                    f"flap fault on {self.target!r} needs a schedule seed "
                    f"(spec: flap:<component>@<seed>)"
                )
            duty = 0.5 if self.duty is None else self.duty
            if not 0.0 < duty < 1.0:
                raise FaultPlanError(
                    f"flap duty must be in (0, 1), got {duty}"
                )
        if self.kind == "degrade":
            if self.mtbf is None and self.mttr is None:
                raise FaultPlanError(
                    f"degrade fault on {self.target!r} overrides nothing "
                    f"(spec: degrade:<component>:mtbf=<h>[,mttr=<h>])"
                )
            for label, value in (("mtbf", self.mtbf), ("mttr", self.mttr)):
                if value is not None and value <= 0:
                    raise FaultPlanError(
                        f"degrade fault on {self.target!r}: {label} must be "
                        f"> 0, got {value}"
                    )

    # -- factories ----------------------------------------------------------

    @classmethod
    def crash(cls, component: str) -> "Fault":
        return cls("crash", component)

    @classmethod
    def cut(cls, a: str, b: str) -> "Fault":
        return cls("cut", _link_name(a, b))

    @classmethod
    def flap(cls, component: str, seed: int, duty: float = 0.5) -> "Fault":
        return cls("flap", component, seed=seed, duty=duty)

    @classmethod
    def degrade(
        cls,
        component: str,
        *,
        mtbf: Optional[float] = None,
        mttr: Optional[float] = None,
    ) -> "Fault":
        return cls("degrade", component, mtbf=mtbf, mttr=mttr)

    @classmethod
    def parse(cls, spec: str) -> "Fault":
        """Parse one ``kind:...`` spec string (the CLI ``--inject`` syntax)."""
        kind, sep, rest = spec.partition(":")
        kind = kind.strip()
        if not sep or not rest:
            raise FaultPlanError(
                f"malformed fault spec {spec!r} (expected '<kind>:<target>...')"
            )
        if kind == "crash":
            return cls.crash(rest.strip())
        if kind == "cut":
            ends = [e.strip() for e in rest.split("|")]
            if len(ends) != 2 or not all(ends):
                raise FaultPlanError(
                    f"malformed cut spec {spec!r} (expected 'cut:<a>|<b>')"
                )
            return cls.cut(*ends)
        if kind == "flap":
            target, sep, schedule = rest.partition("@")
            if not sep or not target.strip():
                raise FaultPlanError(
                    f"malformed flap spec {spec!r} "
                    f"(expected 'flap:<component>@<seed>[:<duty>]')"
                )
            seed_text, _, duty_text = schedule.partition(":")
            try:
                seed = int(seed_text)
                duty = float(duty_text) if duty_text else 0.5
            except ValueError as exc:
                raise FaultPlanError(
                    f"malformed flap spec {spec!r}: {exc}"
                ) from None
            return cls.flap(target.strip(), seed, duty)
        if kind == "degrade":
            target, sep, overrides = rest.partition(":")
            if not sep or not target.strip():
                raise FaultPlanError(
                    f"malformed degrade spec {spec!r} (expected "
                    f"'degrade:<component>:mtbf=<h>[,mttr=<h>]')"
                )
            values: Dict[str, float] = {}
            for item in overrides.split(","):
                key, sep, value = item.partition("=")
                key = key.strip().lower()
                if not sep or key not in ("mtbf", "mttr"):
                    raise FaultPlanError(
                        f"malformed degrade spec {spec!r}: bad override "
                        f"{item!r} (expected mtbf=<h> or mttr=<h>)"
                    )
                try:
                    values[key] = float(value)
                except ValueError as exc:
                    raise FaultPlanError(
                        f"malformed degrade spec {spec!r}: {exc}"
                    ) from None
            return cls.degrade(target.strip(), **values)
        raise FaultPlanError(
            f"unknown fault kind {kind!r} in spec {spec!r} (supported: "
            f"{', '.join(FAULT_KINDS)})"
        )

    # -- views -------------------------------------------------------------

    def spec(self) -> str:
        """The canonical spec string (``parse(spec())`` round-trips)."""
        if self.kind == "flap":
            duty = 0.5 if self.duty is None else self.duty
            return f"flap:{self.target}@{self.seed}:{duty:g}"
        if self.kind == "degrade":
            parts = []
            if self.mtbf is not None:
                parts.append(f"mtbf={self.mtbf:g}")
            if self.mttr is not None:
                parts.append(f"mttr={self.mttr:g}")
            return f"degrade:{self.target}:{','.join(parts)}"
        return f"{self.kind}:{self.target}"

    def is_down_at(self, tick: int) -> bool:
        """Whether a flapping component is down at *tick*.

        The schedule is a pure function of (target, seed, tick) — stable
        across processes, platforms and fault-plan composition order.
        """
        if self.kind != "flap":
            raise FaultPlanError(
                f"{self.kind} fault on {self.target!r} has no schedule"
            )
        duty = 0.5 if self.duty is None else self.duty
        rng = random.Random(f"flap:{self.target}:{self.seed}:{tick}")
        return rng.random() < duty

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.spec()


class FaultPlan:
    """An unordered set of faults applied together.

    Plans are immutable values: equal fault sets compare equal, hash
    equal, and fingerprint equal regardless of construction order.
    """

    __slots__ = ("faults",)

    def __init__(self, faults: Iterable[Fault] = ()):
        unique = dict.fromkeys(faults)
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(unique, key=lambda f: f.spec())
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, specs: Iterable[str] | str) -> "FaultPlan":
        """Build a plan from spec strings (a single spec or an iterable)."""
        if isinstance(specs, str):
            specs = [specs]
        return cls(Fault.parse(spec) for spec in specs)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.faults + other.faults)

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.faults == other.faults

    def __hash__(self) -> int:
        return hash(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.specs())!r})"

    def specs(self) -> Tuple[str, ...]:
        return tuple(fault.spec() for fault in self.faults)

    def fingerprint(self) -> str:
        """Content hash of the plan (composes with the topology fingerprint).

        The overlay topology hashes ``(base fingerprint, plan
        fingerprint)``, so the same plan applied twice to the same base
        yields the same compiled topology and hits the memoized PathSet
        cache, while any differing fault invalidates implicitly.
        """
        digest = hashlib.blake2b(digest_size=16)
        for spec in self.specs():
            digest.update(b"\x00f")
            digest.update(spec.encode("utf-8"))
        return digest.hexdigest()

    # -- flap resolution -----------------------------------------------------

    @property
    def is_resolved(self) -> bool:
        """True when the plan has no unresolved flapping faults."""
        return all(fault.kind != "flap" for fault in self.faults)

    def at(self, tick: int) -> "FaultPlan":
        """Resolve flapping faults at *tick*: each becomes a crash when its
        seeded schedule says down, and disappears when it says up."""
        resolved: List[Fault] = []
        for fault in self.faults:
            if fault.kind != "flap":
                resolved.append(fault)
            elif fault.is_down_at(tick):
                resolved.append(Fault.crash(fault.target))
        return FaultPlan(resolved)

    # -- effective fault sets ------------------------------------------------

    def downed_nodes(self) -> Tuple[str, ...]:
        """Components removed by crash faults (resolved plans only)."""
        return tuple(f.target for f in self.faults if f.kind == "crash")

    def cut_links(self) -> Tuple[str, ...]:
        """Canonical ``a|b`` labels of severed links."""
        return tuple(f.target for f in self.faults if f.kind == "cut")

    def overrides(self) -> Dict[str, Dict[str, float]]:
        """Per-component MTBF/MTTR overrides from degrade faults."""
        table: Dict[str, Dict[str, float]] = {}
        for fault in self.faults:
            if fault.kind != "degrade":
                continue
            entry = table.setdefault(fault.target, {})
            if fault.mtbf is not None:
                entry["MTBF"] = fault.mtbf
            if fault.mttr is not None:
                entry["MTTR"] = fault.mttr
        return table

    def component_names(self) -> Tuple[str, ...]:
        """Availability-table names of structurally failed components:
        crash targets plus ``a|b`` labels of cut links (degrade targets
        stay up and are not included)."""
        return self.downed_nodes() + self.cut_links()

    # -- application ---------------------------------------------------------

    def apply(self, topology, *, tick: Optional[int] = None):
        """Overlay this plan onto *topology*.

        Unresolved flapping faults require a *tick*; crash/cut/degrade
        plans apply directly.  Returns a
        :class:`~repro.resilience.overlay.FaultOverlayTopology`; raises
        :class:`FaultPlanError` when a target does not exist in the base
        topology or flapping is left unresolved.
        """
        from repro.resilience.overlay import FaultOverlayTopology

        plan = self
        if not plan.is_resolved:
            if tick is None:
                raise FaultPlanError(
                    "plan contains flapping faults; resolve them with "
                    ".at(tick) or pass tick= to apply()"
                )
            plan = plan.at(tick)
        return FaultOverlayTopology(topology, plan)
