"""The population model: user classes × attachment locations × profiles.

A *population* is a set of simulated users, each belonging to one
:class:`UserClass` and attached to one infrastructure component (their
*attachment location* — the paper's "client position", Section V-A3).
The class describes everything that differentiates users of the same
attachment point:

* ``device_availability`` — the availability of the user's own access
  device as they perceive it (``None`` keeps the Formula-1 value of the
  attachment component);
* ``jitter`` — a relative per-user degradation spread: user *u* of the
  class perceives ``base · (1 − jitter · r_u)`` with ``r_u`` drawn once,
  deterministically, in ``[0, 1)``.  ``jitter = 0`` makes every user of
  a class at one attachment identical — the degenerate case the
  evaluation plane collapses to a single annotation row;
* ``demand`` — requests per user, a reporting weight for capacity-style
  roll-ups;
* ``mobility`` — the fraction of the attachment list the class roams
  over (1.0 = anywhere, small values concentrate the class on a few
  positions, raising the plane's deduplication ratio).

Everything is generated from a seeded :class:`numpy.random.Generator`,
so a population is a pure function of ``(n_users, classes, attachments,
seed)`` — benchmarks and the scalar/vectorized equivalence tests rely on
that determinism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.mapping import ServiceMapping, ServiceMappingPair
from repro.errors import AnalysisError, MappingError

__all__ = [
    "UserClass",
    "Population",
    "parse_user_classes",
    "mapping_for_user",
]


@dataclass(frozen=True)
class UserClass:
    """One class of users sharing a demand/device/mobility profile."""

    name: str
    weight: float = 1.0
    device_availability: Optional[float] = None
    jitter: float = 0.0
    demand: float = 1.0
    mobility: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise AnalysisError("user class needs a non-empty name")
        if not self.weight > 0.0:
            raise AnalysisError(
                f"user class {self.name!r}: weight must be > 0, "
                f"got {self.weight}"
            )
        if self.device_availability is not None and not (
            0.0 <= self.device_availability <= 1.0
        ):
            raise AnalysisError(
                f"user class {self.name!r}: device_availability must be in "
                f"[0, 1], got {self.device_availability}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise AnalysisError(
                f"user class {self.name!r}: jitter must be in [0, 1), "
                f"got {self.jitter}"
            )
        if not self.demand > 0.0:
            raise AnalysisError(
                f"user class {self.name!r}: demand must be > 0, "
                f"got {self.demand}"
            )
        if not 0.0 < self.mobility <= 1.0:
            raise AnalysisError(
                f"user class {self.name!r}: mobility must be in (0, 1], "
                f"got {self.mobility}"
            )


def parse_user_classes(spec: str) -> Tuple[UserClass, ...]:
    """Parse the CLI class spec ``NAME[:WEIGHT[:DEVICE_A[:JITTER]]],...``.

    Examples::

        parse_user_classes("std:1")
        parse_user_classes("gold:2:0.9999,std:8:0.98:0.05")
    """
    classes = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) > 4:
            raise AnalysisError(
                f"user-class spec {chunk!r}: expected "
                f"NAME[:WEIGHT[:DEVICE_A[:JITTER]]]"
            )
        name = parts[0]
        try:
            weight = float(parts[1]) if len(parts) > 1 else 1.0
            device = float(parts[2]) if len(parts) > 2 else None
            jitter = float(parts[3]) if len(parts) > 3 else 0.0
        except ValueError as exc:
            raise AnalysisError(
                f"user-class spec {chunk!r}: {exc}"
            ) from None
        classes.append(
            UserClass(name, weight=weight, device_availability=device, jitter=jitter)
        )
    if not classes:
        raise AnalysisError(f"user-class spec {spec!r} declares no classes")
    if len({c.name for c in classes}) != len(classes):
        raise AnalysisError(f"user-class spec {spec!r} repeats a class name")
    return tuple(classes)


class Population:
    """N users as contiguous numpy arrays — the evaluation-plane input.

    ``class_index[u]`` / ``attachment_index[u]`` locate user *u* in the
    class and attachment tables; ``jitter_unit[u]`` is their fixed
    ``[0, 1)`` degradation draw.  Arrays, not user objects: a million
    users cost ~20 MB and every plane operation stays vectorized.
    """

    def __init__(
        self,
        classes: Sequence[UserClass],
        attachments: Sequence[str],
        class_index: np.ndarray,
        attachment_index: np.ndarray,
        jitter_unit: Optional[np.ndarray] = None,
    ):
        self.classes = tuple(classes)
        self.attachments = tuple(attachments)
        if not self.classes:
            raise AnalysisError("population needs at least one user class")
        if not self.attachments:
            raise AnalysisError("population needs at least one attachment")
        if len(set(self.attachments)) != len(self.attachments):
            raise AnalysisError("population attachments repeat a component")
        self.class_index = np.ascontiguousarray(class_index, dtype=np.int32)
        self.attachment_index = np.ascontiguousarray(
            attachment_index, dtype=np.int32
        )
        n = len(self.class_index)
        if len(self.attachment_index) != n:
            raise AnalysisError(
                f"class_index ({n} users) and attachment_index "
                f"({len(self.attachment_index)} users) disagree"
            )
        if n and (
            self.class_index.min() < 0
            or self.class_index.max() >= len(self.classes)
        ):
            raise AnalysisError("class_index out of range")
        if n and (
            self.attachment_index.min() < 0
            or self.attachment_index.max() >= len(self.attachments)
        ):
            raise AnalysisError("attachment_index out of range")
        if jitter_unit is None:
            jitter_unit = np.zeros(n, dtype=np.float64)
        self.jitter_unit = np.ascontiguousarray(jitter_unit, dtype=np.float64)
        if len(self.jitter_unit) != n:
            raise AnalysisError("jitter_unit length disagrees with users")

    # -- construction -------------------------------------------------------

    @classmethod
    def generate(
        cls,
        n_users: int,
        classes: Sequence[UserClass],
        attachments: Sequence[str],
        *,
        seed: int = 0,
    ) -> "Population":
        """A deterministic population of *n_users* over *attachments*.

        Class membership is drawn by normalized class weight; each class
        then distributes its users uniformly over its *roaming set* — a
        class-rotated slice of the attachment list sized by the class's
        ``mobility`` fraction, so low-mobility classes concentrate.
        """
        if n_users < 1:
            raise AnalysisError(f"population size must be >= 1, got {n_users}")
        classes = tuple(classes)
        attachments = tuple(attachments)
        if not classes:
            raise AnalysisError("population needs at least one user class")
        if not attachments:
            raise AnalysisError("population needs at least one attachment")
        rng = np.random.default_rng(seed)
        weights = np.array([c.weight for c in classes], dtype=np.float64)
        class_index = rng.choice(
            len(classes), size=n_users, p=weights / weights.sum()
        ).astype(np.int32)
        attachment_index = np.empty(n_users, dtype=np.int32)
        n_attach = len(attachments)
        for ci, user_class in enumerate(classes):
            mask = class_index == ci
            count = int(mask.sum())
            if not count:
                continue
            roam = max(1, math.ceil(user_class.mobility * n_attach))
            # rotate the roaming window per class so low-mobility classes
            # do not all pile onto the same few attachment points
            start = (ci * roam) % n_attach
            window = np.arange(start, start + roam) % n_attach
            attachment_index[mask] = window[
                rng.integers(0, roam, size=count)
            ].astype(np.int32)
        jitter_unit = rng.random(n_users)
        return cls(classes, attachments, class_index, attachment_index, jitter_unit)

    # -- views --------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self.class_index)

    def class_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.class_index, minlength=len(self.classes))
        return {c.name: int(n) for c, n in zip(self.classes, counts)}

    def attachment_counts(self) -> Dict[str, int]:
        counts = np.bincount(
            self.attachment_index, minlength=len(self.attachments)
        )
        return {a: int(n) for a, n in zip(self.attachments, counts) if n}

    def device_availability(
        self, table: Mapping[str, float]
    ) -> np.ndarray:
        """Per-user perceived availability of their own access device.

        The class override (or, absent one, the Formula-1 value of the
        attachment component from *table*) degraded by the user's jitter
        draw — fully vectorized, clipped to ``[0, 1]``.  The scalar
        oracle and the vectorized plane both start from this array, so
        their inputs are bit-identical by construction.
        """
        try:
            attach_avail = np.array(
                [table[name] for name in self.attachments], dtype=np.float64
            )
        except KeyError as exc:
            raise AnalysisError(
                f"attachment component {exc.args[0]!r} has no availability "
                f"annotation in the model"
            ) from None
        base = attach_avail[self.attachment_index]
        for ci, user_class in enumerate(self.classes):
            if user_class.device_availability is None and not user_class.jitter:
                continue
            mask = self.class_index == ci
            if not mask.any():
                continue
            values = (
                np.full(int(mask.sum()), user_class.device_availability)
                if user_class.device_availability is not None
                else base[mask]
            )
            if user_class.jitter:
                values = values * (1.0 - user_class.jitter * self.jitter_unit[mask])
            base[mask] = values
        return np.clip(base, 0.0, 1.0)


def mapping_for_user(
    mapping: ServiceMapping, user_component: str
) -> Callable[[str], ServiceMapping]:
    """A mapping factory replacing *user_component* with each attachment.

    The pipeline's Step-9 bridge: the configured mapping is a template
    describing one perspective (say Table I's ``t1``); the returned
    factory produces the mapping of any other user position by
    substituting the user component — exactly the paper's "user mobility
    to an already-modeled position" update (Section V-A3).
    """
    mentioned = {
        name
        for pair in mapping.pairs
        for name in (pair.requester, pair.provider)
    }
    if user_component not in mentioned:
        raise MappingError(
            f"user component {user_component!r} does not appear in the mapping"
        )

    def factory(attachment: str) -> ServiceMapping:
        if attachment == user_component:
            return mapping
        return ServiceMapping(
            ServiceMappingPair(
                pair.atomic_service,
                attachment if pair.requester == user_component else pair.requester,
                attachment if pair.provider == user_component else pair.provider,
            )
            for pair in mapping.pairs
        )

    return factory
