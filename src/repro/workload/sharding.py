"""Shared-memory multicore sharding of population key batches.

For populations that exceed one core, the per-(attachment, service)
batches of :mod:`repro.workload.plane` fan out across ``multiprocessing``
workers.  The parent compiles every kernel (discovery and BDD caches stay
warm in one process), flattens all the linearized node arrays plus the
per-key base/annotation vectors into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment, and forks
workers that evaluate directly on views of that segment — no kernel is
ever re-compiled or pickled, and results land in a shared output region
the parent scatters from.

Segment layout (one block, two typed regions)::

    [ int64  | per task: var_ix | low | high          ]  node arrays
    [ float64| per task: base | values                ]  annotations
    [ float64| per task: out rows                     ]  results
    [ float64| one slot per shard: worker wall seconds]  timings

Workers are started with the **fork** method: the numpy views created by
the parent before forking are inherited (the shared mapping stays valid
in the child), so the child never attaches to the segment by name and
never registers with the resource tracker — the parent alone owns the
segment and unlinks it in a ``finally``, so ``/dev/shm`` is clean even
when a worker dies.  Platforms without fork (Windows, some macOS
configurations) report ``sharding_supported() == False`` and the plane
falls back to single-process batching.

Work distribution is greedy cost balancing: tasks sorted by estimated
cost (BDD nodes × annotation rows) are assigned to the least-loaded
shard, so one giant attachment group cannot serialize the fan-out.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

import numpy as np

from repro.dependability.bdd import AvailabilityKernel, evaluate_perturbed_arrays
from repro.errors import AnalysisError
from repro.obs import trace as _trace

__all__ = ["sharding_supported", "evaluate_sharded"]

#: one sharded task: (kernel, base vector, perturbed variable, row values)
Task = Tuple[AvailabilityKernel, np.ndarray, int, np.ndarray]

#: a packed task's shared-memory views, ready for :func:`_worker`:
#: (var_ix, low, high, root_pos, base, var, values, out)
_TaskViews = Tuple[
    np.ndarray, np.ndarray, np.ndarray, int, np.ndarray, int, np.ndarray, np.ndarray
]


def sharding_supported() -> bool:
    """Whether the shared-memory fork fan-out can run on this platform."""
    try:
        import multiprocessing
        import multiprocessing.shared_memory  # noqa: F401  (probe only)

        multiprocessing.get_context("fork")
    except (ImportError, ValueError, AttributeError):
        return False
    return True


def _balance(costs: Sequence[int], shards: int) -> List[List[int]]:
    """Greedy longest-processing-time assignment of task indices."""
    assignments: List[List[int]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for task_ix in sorted(range(len(costs)), key=lambda i: -costs[i]):
        shard = loads.index(min(loads))
        assignments[shard].append(task_ix)
        loads[shard] += costs[task_ix]
    return assignments


def _pack(
    shm, tasks: Sequence[Task], flats, int_bytes: int, float_count: int, shards: int
) -> Tuple[List[_TaskViews], List[np.ndarray], np.ndarray]:
    """Copy every task's arrays into the segment; return the typed views.

    All views into ``shm.buf`` are created (and the only references kept)
    here, so dropping the returned structures releases every buffer
    export before the parent closes the mapping.
    """

    def int_view(offset: int, count: int) -> np.ndarray:
        return np.frombuffer(
            shm.buf, dtype=np.int64, count=count, offset=offset * 8
        )

    def float_view(offset: int, count: int) -> np.ndarray:
        return np.frombuffer(
            shm.buf, dtype=np.float64, count=count, offset=int_bytes + offset * 8
        )

    task_views: List[_TaskViews] = []
    out_slices: List[np.ndarray] = []
    int_offset = 0
    float_offset = 0
    out_offset = float_count
    for (kernel, base, var, values), (var_ix, low, high, root_pos) in zip(
        tasks, flats
    ):
        n = len(var_ix)
        var_v = int_view(int_offset, n)
        low_v = int_view(int_offset + n, n)
        high_v = int_view(int_offset + 2 * n, n)
        var_v[:] = var_ix
        low_v[:] = low
        high_v[:] = high
        int_offset += 3 * n

        base_v = float_view(float_offset, len(base))
        base_v[:] = base
        float_offset += len(base)
        values_v = float_view(float_offset, len(values))
        values_v[:] = values
        float_offset += len(values)

        out_v = float_view(out_offset, len(values))
        out_offset += len(values)
        out_slices.append(out_v)
        task_views.append(
            (var_v, low_v, high_v, root_pos, base_v, var, values_v, out_v)
        )
    timings = float_view(out_offset, shards)
    timings[:] = 0.0
    return task_views, out_slices, timings


def _worker(
    shard_id: int,
    task_views: List[_TaskViews],
    assignment: List[int],
    timings: np.ndarray,
    batch_rows: int,
) -> None:
    """Evaluate this shard's tasks on the inherited shared-memory views.

    Runs the same :func:`repro.dependability.bdd.evaluate_perturbed_arrays`
    as the single-process path, writing straight into the shared output
    region — the arithmetic is identical, only the process differs.
    """
    started = time.perf_counter()
    for task_ix in assignment:
        var_ix, low, high, root_pos, base, var, values, out = task_views[task_ix]
        evaluate_perturbed_arrays(
            var_ix,
            low,
            high,
            root_pos,
            base,
            var,
            values,
            batch_rows=batch_rows,
            out=out,
        )
    timings[shard_id] = time.perf_counter() - started


def evaluate_sharded(
    tasks: Sequence[Task],
    *,
    shards: int,
    batch_rows: int = 65536,
    timeout: float = 600.0,
) -> Tuple[List[np.ndarray], List[float]]:
    """Evaluate population key batches across forked shard workers.

    Returns ``(per-task result arrays in input order, per-shard wall
    seconds)``.  Raises :class:`AnalysisError` when the platform cannot
    shard or any worker fails; the shared segment is released in every
    case.
    """
    if shards < 2:
        raise AnalysisError(f"sharding needs shards >= 2, got {shards}")
    if not sharding_supported():
        raise AnalysisError(
            "shared-memory sharding is not supported on this platform "
            "(no fork start method); use the single-process batched path"
        )
    if not tasks:
        return [], []

    import multiprocessing
    from multiprocessing import shared_memory

    ctx = multiprocessing.get_context("fork")
    shards = min(shards, len(tasks))

    # -- measure the packed layout -------------------------------------------
    flats = [kernel.flat_arrays() for kernel, _, _, _ in tasks]
    int_count = sum(3 * len(var_ix) for var_ix, _, _, _ in flats)
    float_count = sum(len(base) + len(values) for _, base, _, values in tasks)
    out_count = sum(len(values) for _, _, _, values in tasks)
    int_bytes = int_count * 8
    total_bytes = int_bytes + (float_count + out_count + shards) * 8

    shm = shared_memory.SharedMemory(create=True, size=max(total_bytes, 8))
    task_views: object = None
    out_slices: object = None
    timings: object = None
    try:
        task_views, out_slices, timings = _pack(
            shm, tasks, flats, int_bytes, float_count, shards
        )
        costs = [
            (len(var_ix) + 1) * max(len(values), 1)
            for (_, _, _, values), (var_ix, _, _, _) in zip(tasks, flats)
        ]
        assignments = _balance(costs, shards)

        with _trace.span(
            "workload.shards", shards=shards, segment_bytes=shm.size
        ):
            workers = [
                ctx.Process(
                    target=_worker,
                    args=(
                        shard_id,
                        task_views,
                        assignments[shard_id],
                        timings,
                        batch_rows,
                    ),
                )
                for shard_id in range(shards)
            ]
            for worker in workers:
                worker.start()
            failed: List[str] = []
            for shard_id, worker in enumerate(workers):
                worker.join(timeout)
                if worker.is_alive():
                    worker.terminate()
                    worker.join()
                    failed.append(f"shard {shard_id}: timed out after {timeout}s")
                elif worker.exitcode != 0:
                    failed.append(
                        f"shard {shard_id}: exit code {worker.exitcode}"
                    )
            if failed:
                raise AnalysisError(
                    "shared-memory shard worker(s) failed: " + "; ".join(failed)
                )

        results = [np.array(out_v, dtype=np.float64) for out_v in out_slices]
        shard_seconds = [float(s) for s in timings]
        return results, shard_seconds
    finally:
        # drop every exported view before closing the mapping, and unlink
        # unconditionally so /dev/shm never leaks — even on worker failure
        task_views = out_slices = timings = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a stray export survived
            pass
        shm.unlink()
