"""Shared-memory multicore sharding of population key batches.

For populations that exceed one core, the per-(attachment, service)
batches of :mod:`repro.workload.plane` fan out across ``multiprocessing``
workers.  The parent compiles every kernel (discovery and BDD caches stay
warm in one process), flattens all the linearized node arrays plus the
per-key base/annotation vectors into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment, and forks
workers that evaluate directly on views of that segment — no kernel is
ever re-compiled or pickled, and results land in a shared output region
the parent scatters from.

Segment layout (one block, two typed regions)::

    [ int64  | per task: var_ix | low | high          ]  node arrays
    [ float64| per task: base | values                ]  annotations
    [ float64| per task: out rows                     ]  results
    [ float64| one slot per shard: worker wall seconds]  timings

Workers are started with the **fork** method: the numpy views created by
the parent before forking are inherited (the shared mapping stays valid
in the child), so the child never attaches to the segment by name and
never registers with the resource tracker — the parent alone owns the
segment and unlinks it in a ``finally``, so ``/dev/shm`` is clean even
when a worker dies.

Platforms without fork (Windows, some macOS configurations) use the
**mmap** method instead: each task's kernel arrays and annotations are
written once as :mod:`repro.store` artifact files in a scratch
directory, and spawn-started workers map them read-only (zero copy, no
pickling of kernels, no fork-inherited state).  ``method="auto"`` (the
default, and what the evaluation plane passes) picks fork when
available and mmap otherwise, so sharding now works on every start
method; ``method="mmap"`` forces the artifact path — also useful to
keep worker memory at exactly the mapped pages instead of a full COW
heap.

Work distribution is greedy cost balancing: tasks sorted by estimated
cost (BDD nodes × annotation rows) are assigned to the least-loaded
shard, so one giant attachment group cannot serialize the fan-out.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import store as _store
from repro.dependability.bdd import AvailabilityKernel, evaluate_perturbed_arrays
from repro.errors import AnalysisError
from repro.obs import trace as _trace

__all__ = [
    "sharding_supported",
    "sharding_mmap_supported",
    "evaluate_sharded",
]

#: one sharded task: (kernel, base vector, perturbed variable, row values)
Task = Tuple[AvailabilityKernel, np.ndarray, int, np.ndarray]

#: a packed task's shared-memory views, ready for :func:`_worker`:
#: (var_ix, low, high, root_pos, base, var, values, out)
_TaskViews = Tuple[
    np.ndarray, np.ndarray, np.ndarray, int, np.ndarray, int, np.ndarray, np.ndarray
]


def sharding_supported() -> bool:
    """Whether the shared-memory fork fan-out can run on this platform."""
    try:
        import multiprocessing
        import multiprocessing.shared_memory  # noqa: F401  (probe only)

        multiprocessing.get_context("fork")
    except (ImportError, ValueError, AttributeError):
        return False
    return True


def sharding_mmap_supported() -> bool:
    """Whether the artifact-file (mmap attach) fan-out can run — any
    multiprocessing start method will do, fork included."""
    try:
        import multiprocessing

        return bool(multiprocessing.get_all_start_methods())
    except ImportError:
        return False


def _balance(costs: Sequence[int], shards: int) -> List[List[int]]:
    """Greedy longest-processing-time assignment of task indices."""
    assignments: List[List[int]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for task_ix in sorted(range(len(costs)), key=lambda i: -costs[i]):
        shard = loads.index(min(loads))
        assignments[shard].append(task_ix)
        loads[shard] += costs[task_ix]
    return assignments


def _pack(
    shm, tasks: Sequence[Task], flats, int_bytes: int, float_count: int, shards: int
) -> Tuple[List[_TaskViews], List[np.ndarray], np.ndarray]:
    """Copy every task's arrays into the segment; return the typed views.

    All views into ``shm.buf`` are created (and the only references kept)
    here, so dropping the returned structures releases every buffer
    export before the parent closes the mapping.
    """

    def int_view(offset: int, count: int) -> np.ndarray:
        return np.frombuffer(
            shm.buf, dtype=np.int64, count=count, offset=offset * 8
        )

    def float_view(offset: int, count: int) -> np.ndarray:
        return np.frombuffer(
            shm.buf, dtype=np.float64, count=count, offset=int_bytes + offset * 8
        )

    task_views: List[_TaskViews] = []
    out_slices: List[np.ndarray] = []
    int_offset = 0
    float_offset = 0
    out_offset = float_count
    for (kernel, base, var, values), (var_ix, low, high, root_pos) in zip(
        tasks, flats
    ):
        n = len(var_ix)
        var_v = int_view(int_offset, n)
        low_v = int_view(int_offset + n, n)
        high_v = int_view(int_offset + 2 * n, n)
        var_v[:] = var_ix
        low_v[:] = low
        high_v[:] = high
        int_offset += 3 * n

        base_v = float_view(float_offset, len(base))
        base_v[:] = base
        float_offset += len(base)
        values_v = float_view(float_offset, len(values))
        values_v[:] = values
        float_offset += len(values)

        out_v = float_view(out_offset, len(values))
        out_offset += len(values)
        out_slices.append(out_v)
        task_views.append(
            (var_v, low_v, high_v, root_pos, base_v, var, values_v, out_v)
        )
    timings = float_view(out_offset, shards)
    timings[:] = 0.0
    return task_views, out_slices, timings


def _worker(
    shard_id: int,
    task_views: List[_TaskViews],
    assignment: List[int],
    timings: np.ndarray,
    batch_rows: int,
) -> None:
    """Evaluate this shard's tasks on the inherited shared-memory views.

    Runs the same :func:`repro.dependability.bdd.evaluate_perturbed_arrays`
    as the single-process path, writing straight into the shared output
    region — the arithmetic is identical, only the process differs.
    """
    started = time.perf_counter()
    for task_ix in assignment:
        var_ix, low, high, root_pos, base, var, values, out = task_views[task_ix]
        evaluate_perturbed_arrays(
            var_ix,
            low,
            high,
            root_pos,
            base,
            var,
            values,
            batch_rows=batch_rows,
            out=out,
        )
    timings[shard_id] = time.perf_counter() - started


def _join_workers(workers, timeout: float) -> None:
    """Join every worker; terminate stragglers and raise one error that
    names each failed shard (shared by the fork and mmap paths)."""
    failed: List[str] = []
    for shard_id, worker in enumerate(workers):
        worker.join(timeout)
        if worker.is_alive():
            worker.terminate()
            worker.join()
            failed.append(f"shard {shard_id}: timed out after {timeout}s")
        elif worker.exitcode != 0:
            failed.append(f"shard {shard_id}: exit code {worker.exitcode}")
    if failed:
        raise AnalysisError(
            "shared-memory shard worker(s) failed: " + "; ".join(failed)
        )


def _mmap_worker(
    shard_id: int,
    task_paths: List[str],
    assignment: List[int],
    out_dir: str,
    batch_rows: int,
) -> None:
    """Evaluate this shard's tasks from mapped artifact files.

    Module-level and picklable-argument-only, so it runs under **any**
    start method (spawn re-imports this module in the child).  Each task
    artifact is mapped read-only — the kernel arrays are never copied or
    pickled — and results/timing land as plain ``.npy`` files the parent
    gathers.  The arithmetic is the same
    :func:`repro.dependability.bdd.evaluate_perturbed_arrays` as every
    other path, so results agree bit for bit.
    """
    started = time.perf_counter()
    for task_ix in assignment:
        artifact = _store.open_artifact(task_paths[task_ix])
        values = artifact.arrays["values"]
        out = np.empty(len(values), dtype=np.float64)
        evaluate_perturbed_arrays(
            artifact.arrays["var"],
            artifact.arrays["low"],
            artifact.arrays["high"],
            int(artifact.meta["root_pos"]),
            artifact.arrays["base"],
            int(artifact.meta["var"]),
            values,
            batch_rows=batch_rows,
            out=out,
        )
        np.save(os.path.join(out_dir, f"out-{task_ix}.npy"), out)
    np.save(
        os.path.join(out_dir, f"time-{shard_id}.npy"),
        np.array([time.perf_counter() - started]),
    )


def _evaluate_sharded_mmap(
    tasks: Sequence[Task],
    *,
    shards: int,
    batch_rows: int,
    timeout: float,
    start_method: Optional[str],
) -> Tuple[List[np.ndarray], List[float]]:
    """The artifact-file fan-out behind ``method="mmap"``."""
    import multiprocessing

    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "spawn" if "spawn" in methods else methods[0]
    ctx = multiprocessing.get_context(start_method)
    shards = min(shards, len(tasks))
    with tempfile.TemporaryDirectory(prefix="repro-shard-") as scratch:
        task_paths: List[str] = []
        costs: List[int] = []
        for i, (kernel, base, var, values) in enumerate(tasks):
            var_ix, low, high, root_pos = kernel.flat_arrays()
            path = os.path.join(scratch, f"task-{i}")
            _store.write_artifact_file(
                path,
                "shard-task",
                (str(i),),
                {
                    "var": np.asarray(var_ix, dtype=np.int64),
                    "low": np.asarray(low, dtype=np.int64),
                    "high": np.asarray(high, dtype=np.int64),
                    "base": np.asarray(base, dtype=np.float64),
                    "values": np.asarray(values, dtype=np.float64),
                },
                {"root_pos": int(root_pos), "var": int(var)},
            )
            task_paths.append(path)
            costs.append((len(var_ix) + 1) * max(len(values), 1))
        assignments = _balance(costs, shards)
        with _trace.span(
            "workload.shards", shards=shards, method=start_method
        ):
            workers = [
                ctx.Process(
                    target=_mmap_worker,
                    args=(
                        shard_id,
                        task_paths,
                        assignments[shard_id],
                        scratch,
                        batch_rows,
                    ),
                )
                for shard_id in range(shards)
            ]
            for worker in workers:
                worker.start()
            _join_workers(workers, timeout)
        try:
            results = [
                np.load(os.path.join(scratch, f"out-{i}.npy"))
                for i in range(len(tasks))
            ]
            shard_seconds = [
                float(
                    np.load(os.path.join(scratch, f"time-{shard_id}.npy"))[0]
                )
                for shard_id in range(shards)
            ]
        except OSError as exc:  # pragma: no cover - worker wrote nothing
            raise AnalysisError(
                f"shard worker produced no result file: {exc}"
            ) from exc
        return results, shard_seconds


def evaluate_sharded(
    tasks: Sequence[Task],
    *,
    shards: int,
    batch_rows: int = 65536,
    timeout: float = 600.0,
    method: str = "auto",
    start_method: Optional[str] = None,
) -> Tuple[List[np.ndarray], List[float]]:
    """Evaluate population key batches across shard worker processes.

    ``method`` picks the fan-out transport: ``"fork"`` is the shared-
    memory segment path (needs the fork start method), ``"mmap"`` writes
    per-task artifact files and lets workers map them — it runs under
    any start method (``start_method`` overrides the spawn-first
    default) and therefore unlocks spawn-only platforms.  ``"auto"``
    prefers fork and falls back to mmap.

    Returns ``(per-task result arrays in input order, per-shard wall
    seconds)``.  Raises :class:`AnalysisError` when the platform cannot
    shard or any worker fails; scratch state (the shared segment or the
    artifact directory) is released in every case.
    """
    if shards < 2:
        raise AnalysisError(f"sharding needs shards >= 2, got {shards}")
    if method not in ("auto", "fork", "mmap"):
        raise AnalysisError(
            f"unknown sharding method {method!r} "
            f"(expected auto, fork or mmap)"
        )
    if method == "auto":
        if sharding_supported():
            method = "fork"
        elif sharding_mmap_supported():
            method = "mmap"
    if method == "auto" or (method == "fork" and not sharding_supported()):
        raise AnalysisError(
            "shared-memory sharding is not supported on this platform "
            "(no fork start method); use the single-process batched path"
        )
    if method == "mmap" and not sharding_mmap_supported():
        raise AnalysisError(
            "mmap sharding is not supported on this platform "
            "(multiprocessing unavailable)"
        )
    if not tasks:
        return [], []
    if method == "mmap":
        return _evaluate_sharded_mmap(
            tasks,
            shards=shards,
            batch_rows=batch_rows,
            timeout=timeout,
            start_method=start_method,
        )

    import multiprocessing
    from multiprocessing import shared_memory

    ctx = multiprocessing.get_context("fork")
    shards = min(shards, len(tasks))

    # -- measure the packed layout -------------------------------------------
    flats = [kernel.flat_arrays() for kernel, _, _, _ in tasks]
    int_count = sum(3 * len(var_ix) for var_ix, _, _, _ in flats)
    float_count = sum(len(base) + len(values) for _, base, _, values in tasks)
    out_count = sum(len(values) for _, _, _, values in tasks)
    int_bytes = int_count * 8
    total_bytes = int_bytes + (float_count + out_count + shards) * 8

    shm = shared_memory.SharedMemory(create=True, size=max(total_bytes, 8))
    task_views: object = None
    out_slices: object = None
    timings: object = None
    try:
        task_views, out_slices, timings = _pack(
            shm, tasks, flats, int_bytes, float_count, shards
        )
        costs = [
            (len(var_ix) + 1) * max(len(values), 1)
            for (_, _, _, values), (var_ix, _, _, _) in zip(tasks, flats)
        ]
        assignments = _balance(costs, shards)

        with _trace.span(
            "workload.shards", shards=shards, segment_bytes=shm.size
        ):
            workers = [
                ctx.Process(
                    target=_worker,
                    args=(
                        shard_id,
                        task_views,
                        assignments[shard_id],
                        timings,
                        batch_rows,
                    ),
                )
                for shard_id in range(shards)
            ]
            for worker in workers:
                worker.start()
            _join_workers(workers, timeout)

        results = [np.array(out_v, dtype=np.float64) for out_v in out_slices]
        shard_seconds = [float(s) for s in timings]
        return results, shard_seconds
    finally:
        # drop every exported view before closing the mapping, and unlink
        # unconditionally so /dev/shm never leaks — even on worker failure
        task_views = out_slices = timings = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a stray export survived
            pass
        shm.unlink()
