"""The vectorized population evaluation plane: dedup → batch → shard.

``evaluate_population`` turns "availability as perceived by each of a
million users" into a handful of numpy sweeps:

1. **Structure dedup** — users sharing an attachment point and service
   collapse to one compiled structure query: per distinct attachment the
   service mapping is instantiated once, path discovery runs once (the
   engine's PathSet LRU shares the pairs that do not involve the user
   across attachments), and the path-set groups compile into one memoized
   :class:`~repro.dependability.bdd.AvailabilityKernel`.
2. **Row dedup + batch** — within an attachment group the only per-user
   annotation is the availability of the user's own access device
   (class override × jitter), so ``np.unique`` collapses the group to its
   distinct annotation rows and one
   :meth:`~repro.dependability.bdd.AvailabilityKernel.evaluate_perturbed`
   sweep evaluates them all, chunked over contiguous numpy arrays.
3. **Shard** — when ``shards > 1`` the per-key batches fan out across
   ``multiprocessing`` workers that read flattened BDD node arrays from a
   ``multiprocessing.shared_memory`` segment
   (:mod:`repro.workload.sharding`) — no kernel is re-compiled or
   pickled.

``evaluate_population_naive`` is the honest scalar oracle: a Python loop
over users, one availability table and one
:meth:`~repro.dependability.bdd.AvailabilityKernel.availability` call
each (kernels still reused per attachment — the baseline is "no
vectorization", not "no engine").  Both paths perform the same IEEE
double arithmetic, so they agree to the last bit; the equivalence tests
assert 1e-12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.transformations import pair_path_sets
from repro.core.engine import discover_many
from repro.core.mapping import ServiceMapping
from repro.dependability.bdd import (
    AvailabilityKernel,
    compile_many,
    order_from_topology,
)
from repro.errors import AnalysisError
from repro.network.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.services.composite import CompositeService
from repro.workload.population import Population

__all__ = [
    "ClassSummary",
    "WorstUser",
    "PopulationReport",
    "evaluate_population",
    "evaluate_population_naive",
]

_M_USERS = _metrics.counter(
    "repro_workload_users_evaluated_total",
    "Users served by the population evaluation plane",
)
_M_ROWS = _metrics.counter(
    "repro_workload_rows_evaluated_total",
    "Deduplicated annotation rows actually swept through BDD kernels",
)
_M_DEDUP = _metrics.gauge(
    "repro_workload_dedup_ratio",
    "users / deduplicated rows of the most recent population evaluation",
)
_M_BATCH_ROWS = _metrics.histogram(
    "repro_workload_batch_rows",
    "Deduplicated rows per (attachment, service) key batch",
)
_M_SHARD_SECONDS = _metrics.histogram(
    "repro_workload_shard_seconds",
    "Wall time of each shared-memory shard worker",
)


@dataclass(frozen=True)
class ClassSummary:
    """Availability distribution of one user class across its users.

    ``p50``/``p90``/``p99`` are *tail* values: the availability exceeded
    by 50% / 90% / 99% of the class's users (so ``p99 <= p90 <= p50`` —
    the deeper the tail, the worse the guaranteed experience).
    """

    name: str
    users: int
    mean: float
    minimum: float
    p50: float
    p90: float
    p99: float

    def to_row(self) -> str:
        return (
            f"{self.name:<12} {self.users:>9} {self.mean:>13.9f} "
            f"{self.p50:>13.9f} {self.p90:>13.9f} {self.p99:>13.9f} "
            f"{self.minimum:>13.9f}"
        )


@dataclass(frozen=True)
class WorstUser:
    """One row of the worst-served-user drilldown."""

    user: int
    user_class: str
    attachment: str
    availability: float


@dataclass
class PopulationReport:
    """End-to-end result of one population evaluation."""

    #: per-user availability, population order (length ``n_users``)
    availability: np.ndarray
    #: distinct (attachment, service) keys evaluated
    keys: int
    #: deduplicated annotation rows swept through the kernels
    rows: int
    #: shard workers used (0 = single-process batching)
    shards: int
    #: registered dimension the per-user values belong to
    #: (availability-shaped: mode ``bdd-prob``, ``prob_rule="root"``)
    dimension: str = "availability"
    #: wall seconds per shard (empty when unsharded)
    shard_seconds: List[float] = field(default_factory=list)
    class_summaries: List[ClassSummary] = field(default_factory=list)
    worst: List[WorstUser] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def n_users(self) -> int:
        return len(self.availability)

    @property
    def dedup_ratio(self) -> float:
        return self.n_users / self.rows if self.rows else float(self.n_users)

    def to_text(self) -> str:
        lines = [
            f"population: {self.n_users} users over {self.keys} "
            f"attachment key(s); {self.rows} deduplicated row(s) "
            f"(dedup {self.dedup_ratio:.1f}x); "
            + (
                f"{self.shards} shard(s)"
                if self.shards
                else "single-process batching"
            )
            + (
                f"; dimension {self.dimension}"
                if self.dimension != "availability"
                else ""
            )
            + f"; {self.seconds:.3f}s",
            "",
            f"{'class':<12} {'users':>9} {'mean':>13} {'p50':>13} "
            f"{'p90':>13} {'p99':>13} {'min':>13}",
        ]
        lines.append("-" * len(lines[-1]))
        for summary in self.class_summaries:
            lines.append(summary.to_row())
        if self.worst:
            lines.append("")
            lines.append("worst-served users:")
            for entry in self.worst:
                lines.append(
                    f"  user {entry.user} ({entry.user_class} @ "
                    f"{entry.attachment}): A = {entry.availability:.9f}"
                )
        return "\n".join(lines)


MappingFactory = Callable[[str], ServiceMapping]


def _dimension_table(
    topology: Topology,
    dimension: str,
    *,
    include_links: bool,
    formula: str,
) -> Dict[str, float]:
    """Resolve *dimension* to its validated per-component table.

    The plane's perturbed-sweep machinery assumes an availability-shaped
    dimension: a probability table folded through the BDD with the system
    root as the per-user value — registry mode ``"bdd-prob"`` with
    ``prob_rule="root"``.  ``"mean-groups"`` (performability) and the
    semiring/custom modes have no single root to perturb, so they are
    rejected rather than silently mis-evaluated.
    """
    from repro.dependability.cutsets import link_component_name
    from repro.dimensions import get_dimension

    dim = get_dimension(dimension)
    if dim.mode != "bdd-prob" or dim.prob_rule != "root":
        raise AnalysisError(
            f"evaluate_population requires an availability-shaped dimension "
            f"(mode='bdd-prob', prob_rule='root'); {dim.name!r} has "
            f"mode={dim.mode!r}, prob_rule={dim.prob_rule!r}"
        )
    model = topology.model
    names = [instance.name for instance in model.instances]
    if include_links:
        names.extend(
            link_component_name(link.end1.name, link.end2.name)
            for link in model.links
        )
    return dim.primary.resolve(
        topology, names, include_links=include_links, formula=formula
    )


def _kernels_for_attachments(
    topology: Topology,
    service: CompositeService,
    mapping_for: MappingFactory,
    attachments: Sequence[str],
    *,
    include_links: bool,
    jobs: Optional[int],
    compile_jobs: Optional[int] = None,
) -> Dict[str, AvailabilityKernel]:
    """One compiled kernel per attachment (the structure-dedup level).

    Path discovery is batched through :func:`discover_many` so duplicate
    pairs — the service legs that do not involve the user, identical for
    every attachment — enumerate once; kernels memoize by structure
    fingerprint in the shared LRU.  *compile_jobs* > 1 fans cold compiles
    out over the persistent :func:`compile_many` process pool (cached
    structures never reach it).
    """
    per_attachment_pairs: Dict[str, List[Tuple[str, str]]] = {}
    all_pairs: List[Tuple[str, str]] = []
    for attachment in attachments:
        mapping = mapping_for(attachment)
        seen: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for pair in mapping.pairs_for_service(service):
            key = tuple(sorted((pair.requester, pair.provider)))
            if key not in seen:
                seen[key] = (pair.requester, pair.provider)
        per_attachment_pairs[attachment] = list(seen.values())
        all_pairs.extend(seen.values())

    discovered = discover_many(topology, all_pairs, jobs=jobs)

    structures: List[List[List[FrozenSet[str]]]] = []
    orders: List[Tuple[str, ...]] = []
    for attachment in attachments:
        groups = [
            pair_path_sets(discovered[pair], include_links=include_links)
            for pair in per_attachment_pairs[attachment]
        ]
        components = {c for group in groups for path in group for c in path}
        structures.append(groups)
        orders.append(order_from_topology(topology, components))
    compiled = compile_many(structures, orders=orders, jobs=compile_jobs)
    return dict(zip(attachments, compiled))


def _summarize(
    population: Population,
    availability: np.ndarray,
    report: PopulationReport,
    top: int,
) -> None:
    """Fill per-class percentiles and the worst-served drilldown."""
    for ci, user_class in enumerate(population.classes):
        mask = population.class_index == ci
        count = int(mask.sum())
        if not count:
            continue
        values = availability[mask]
        p50, p90, p99 = np.percentile(values, (50.0, 10.0, 1.0))
        report.class_summaries.append(
            ClassSummary(
                name=user_class.name,
                users=count,
                mean=float(values.mean()),
                minimum=float(values.min()),
                p50=float(p50),
                p90=float(p90),
                p99=float(p99),
            )
        )
    if top > 0 and len(availability):
        worst_count = min(top, len(availability))
        worst_ix = np.argpartition(availability, worst_count - 1)[:worst_count]
        worst_ix = worst_ix[np.argsort(availability[worst_ix])]
        for user in worst_ix:
            report.worst.append(
                WorstUser(
                    user=int(user),
                    user_class=population.classes[
                        population.class_index[user]
                    ].name,
                    attachment=population.attachments[
                        population.attachment_index[user]
                    ],
                    availability=float(availability[user]),
                )
            )


def evaluate_population(
    topology: Topology,
    service: CompositeService,
    mapping_for: MappingFactory,
    population: Population,
    *,
    include_links: bool = True,
    formula: str = "paper",
    dimension: str = "availability",
    shards: Optional[int] = None,
    jobs: Optional[int] = None,
    compile_jobs: Optional[int] = None,
    batch_rows: int = 65536,
    top: int = 5,
) -> PopulationReport:
    """Per-user availability for a whole population, vectorized.

    *mapping_for* maps an attachment component name to the service
    mapping of a user at that position (build one from a template with
    :func:`repro.workload.mapping_for_user`).  *dimension* names any
    registered availability-shaped dimension (mode ``"bdd-prob"`` with
    ``prob_rule="root"``) from :mod:`repro.dimensions`; its annotation
    table replaces Formula 1 while the dedup/batch/shard machinery is
    reused unchanged.  ``shards`` > 1 fans the per-key batches out over
    shared-memory workers when the platform supports it
    (:func:`repro.workload.sharding.sharding_supported`); otherwise the
    single-process batched path runs.  ``top`` sizes the
    worst-served-user drilldown.
    """
    if shards is not None and shards < 1:
        raise AnalysisError(f"shards must be >= 1, got {shards}")
    if batch_rows < 1:
        raise AnalysisError(f"batch_rows must be >= 1, got {batch_rows}")
    started = time.perf_counter()
    with _trace.span(
        "workload.evaluate_population",
        users=population.n_users,
        shards=shards or 0,
    ) as span:
        table = _dimension_table(
            topology, dimension, include_links=include_links, formula=formula
        )
        device_avail = population.device_availability(table)

        present = np.unique(population.attachment_index)
        attachments = [population.attachments[i] for i in present]
        with _trace.span("workload.compile_keys", keys=len(attachments)):
            kernels = _kernels_for_attachments(
                topology,
                service,
                mapping_for,
                attachments,
                include_links=include_links,
                jobs=jobs,
                compile_jobs=compile_jobs,
            )

        # Row dedup per key: one perturbed sweep over the distinct
        # device-availability values of each attachment group.
        availability = np.empty(population.n_users, dtype=np.float64)
        tasks = []  # (kernel, base, var, values, user_rows, inverse)
        total_rows = 0
        for attachment_ix, attachment in zip(present, attachments):
            kernel = kernels[attachment]
            user_rows = np.flatnonzero(
                population.attachment_index == attachment_ix
            )
            base = kernel.probability_vector(table)
            var = kernel.index.get(attachment)
            if var is None:
                # the user's device is not part of the service structure:
                # every user at this key perceives the same availability
                # (perturbing variable 0 with its own base value is a no-op)
                var = 0
                unique_values = base[:1].copy()
                inverse = np.zeros(len(user_rows), dtype=np.intp)
            else:
                unique_values, inverse = np.unique(
                    device_avail[user_rows], return_inverse=True
                )
            _M_BATCH_ROWS.observe(len(unique_values))
            total_rows += len(unique_values)
            tasks.append((kernel, base, var, unique_values, user_rows, inverse))

        report = PopulationReport(
            availability=availability,
            keys=len(attachments),
            rows=total_rows,
            shards=0,
            dimension=dimension,
        )

        use_shards = shards is not None and shards > 1 and len(tasks) > 1
        if use_shards:
            from repro.workload.sharding import (
                evaluate_sharded,
                sharding_mmap_supported,
                sharding_supported,
            )

            # fork is the fast path; the mmap artifact fan-out covers
            # spawn-only platforms, so only bail to single-process when
            # neither transport exists
            if not (sharding_supported() or sharding_mmap_supported()):
                use_shards = False
        if use_shards:
            assert shards is not None
            with _trace.span(
                "workload.shard_fanout", shards=shards, keys=len(tasks)
            ):
                results, shard_seconds = evaluate_sharded(
                    [
                        (kernel, base, var, values)
                        for kernel, base, var, values, _, _ in tasks
                    ],
                    shards=shards,
                    batch_rows=batch_rows,
                    method="auto",
                )
            report.shards = shards
            report.shard_seconds = shard_seconds
            for seconds in shard_seconds:
                _M_SHARD_SECONDS.observe(seconds)
            for (kernel, base, var, values, user_rows, inverse), row_avail in zip(
                tasks, results
            ):
                availability[user_rows] = row_avail[inverse]
        else:
            for kernel, base, var, values, user_rows, inverse in tasks:
                row_avail = kernel.evaluate_perturbed(
                    base, var, values, batch_rows=batch_rows
                )
                availability[user_rows] = row_avail[inverse]

        _M_USERS.inc(population.n_users)
        _M_ROWS.inc(total_rows)
        _M_DEDUP.set(report.dedup_ratio)
        _summarize(population, availability, report, top)
        report.seconds = time.perf_counter() - started
        span.set(
            keys=report.keys,
            rows=report.rows,
            dedup_ratio=round(report.dedup_ratio, 3),
        )
        return report


def evaluate_population_naive(
    topology: Topology,
    service: CompositeService,
    mapping_for: MappingFactory,
    population: Population,
    *,
    include_links: bool = True,
    formula: str = "paper",
    dimension: str = "availability",
) -> np.ndarray:
    """The scalar oracle: one Python-loop evaluation per user.

    Kernels are still compiled once per attachment (the baseline measures
    the per-user loop, not redundant compilation), but every user builds
    their own availability table and runs their own scalar bottom-up
    pass — exactly what a pre-plane caller would write.
    """
    table = _dimension_table(
        topology, dimension, include_links=include_links, formula=formula
    )
    device_avail = population.device_availability(table)
    present = np.unique(population.attachment_index)
    attachments = [population.attachments[i] for i in present]
    kernels = _kernels_for_attachments(
        topology,
        service,
        mapping_for,
        attachments,
        include_links=include_links,
        jobs=None,
    )
    availability = np.empty(population.n_users, dtype=np.float64)
    for user in range(population.n_users):
        attachment = population.attachments[population.attachment_index[user]]
        kernel = kernels[attachment]
        user_table = dict(table)
        user_table[attachment] = float(device_avail[user])
        availability[user] = kernel.availability(user_table)
    return availability
