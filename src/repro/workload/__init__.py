"""Population-scale user workloads: millions of users, vectorized end-to-end.

The paper evaluates user-perceived properties for one requester/provider
pair at a time; this package serves whole user *populations*:

* :mod:`repro.workload.population` — the population model: user classes
  (weight, device-availability profile, per-user jitter, demand,
  mobility) distributed over attachment locations of the infrastructure;
* :mod:`repro.workload.plane` — the numpy-vectorized evaluation plane:
  users sharing an attachment point and service collapse to one compiled
  structure query, distinct annotation rows batch through the BDD
  kernel's vectorized sweep, and results scatter back per user;
* :mod:`repro.workload.sharding` — shared-memory multicore sharding:
  key-groups fan out over ``multiprocessing`` workers that evaluate the
  flattened BDD node arrays directly from
  ``multiprocessing.shared_memory`` segments, without re-compiling or
  pickling any kernel.

Quick start::

    from repro.casestudy import CLIENTS, printing_mapping, printing_service, usi_topology
    from repro.workload import Population, UserClass, evaluate_population

    pop = Population.generate(
        100_000,
        (UserClass("std"), UserClass("gold", weight=0.2, device_availability=0.9999)),
        CLIENTS,
        seed=7,
    )
    report = evaluate_population(
        usi_topology(),
        printing_service(),
        lambda client: printing_mapping(client, "p2"),
        pop,
    )
    print(report.to_text())
"""

from repro.workload.population import (
    Population,
    UserClass,
    mapping_for_user,
    parse_user_classes,
)
from repro.workload.plane import (
    ClassSummary,
    PopulationReport,
    WorstUser,
    evaluate_population,
    evaluate_population_naive,
)
from repro.workload.sharding import sharding_supported

__all__ = [
    "UserClass",
    "Population",
    "parse_user_classes",
    "mapping_for_user",
    "ClassSummary",
    "WorstUser",
    "PopulationReport",
    "evaluate_population",
    "evaluate_population_naive",
    "sharding_supported",
]
