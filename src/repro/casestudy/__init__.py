"""The USI case study (Section VI): network, services, mappings.

Reconstructs the University of Lugano campus network of Figures 5/8/9, the
printing service of Figure 10, and the Table I service mapping, plus the
backup service the paper names as a second composite.
"""

from repro.casestudy.printing import (
    PRINTING_ATOMIC_SERVICES,
    backup_mapping,
    backup_service,
    email_mapping,
    email_service,
    printing_mapping,
    printing_service,
    table1_mapping,
    usi_catalog,
)
from repro.casestudy.usi import (
    CLIENTS,
    DEVICE_SPECS,
    PRINTERS,
    SERVERS,
    USI_LINKS,
    USI_NODES,
    usi_builder,
    usi_network,
    usi_topology,
)

__all__ = [
    "DEVICE_SPECS",
    "USI_NODES",
    "USI_LINKS",
    "CLIENTS",
    "PRINTERS",
    "SERVERS",
    "usi_builder",
    "usi_network",
    "usi_topology",
    "PRINTING_ATOMIC_SERVICES",
    "printing_service",
    "printing_mapping",
    "table1_mapping",
    "backup_service",
    "backup_mapping",
    "email_service",
    "email_mapping",
    "usi_catalog",
]
