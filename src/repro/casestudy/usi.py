"""The USI campus network of the case study (Section VI, Figures 5/8/9).

The topology is reconstructed from the paper: "the network core,
consisting of the central switches with redundant connections, is nearly
identical to the real infrastructure while the tree-formed peripheral
parts connected to the core have been reduced for demonstration purposes."

Device classes and their dependability attributes are taken verbatim from
Figure 8:

==========  =========  ========  ======  =====================
Class       Kind       MTBF [h]  MTTR [h]  redundantComponents
==========  =========  ========  ======  =====================
Server      Server     60000     0.1     0
C6500       Switch     183498    0.5     0
C2960       Switch     61320     0.5     0
HP2650      Switch     199000    0.5     0
C3750       Switch     188575    0.5     0
Comp        Client     3000      24.0    0
Printer     Printer    2880      1.0     0
==========  =========  ========  ======  =====================

Link reconstruction.  The figures are partially illegible in the
available copy of the paper, but the printed evidence pins the structure
down almost completely:

* the §VI-G path listing for the pair (t1, printS) —
  ``t1—e1—d1—c1—d4—printS`` and ``t1—e1—d1—c1—c2—d4—printS`` — forces
  ``t1—e1``, ``e1—d1``, ``d1—c1`` (and *only* c1), ``c1—c2``, and ``d4``
  dual-homed to both core switches, with exactly two t1→printS paths;
* Figure 11 (UPSIM t1→p2) contains ``d2``, so the p2 side reaches the
  core through ``d2``: ``p2—e3—d2—c2``;
* Figure 12 (UPSIM t15→p3) contains *both* distribution switches and
  ``e4``; with ``t15—e4—d2`` this requires the p3 side to pass through
  ``d1``, hence ``p3—d1``.

Remaining free choices (peripheral placement of unobserved clients,
``p1``, the d3 server block) follow the Figure 9 layout and are symmetric
to the constrained parts; none of them affects any reproduced figure or
table.  ``d3`` must be single-homed (here: to ``c1``), otherwise a third
t1→printS path through ``c1—d3—c2`` would exist, contradicting the
§VI-G listing.  The connector (cable) MTBF/MTTR of Figure 8 is illegible; the
values here (1e6 h / 0.5 h) model a highly reliable passive cable and are
recorded as a reproduction assumption in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.builder import TopologyBuilder
from repro.network.components import DeviceSpec
from repro.network.topology import Topology
from repro.uml.objects import ObjectModel

__all__ = [
    "DEVICE_SPECS",
    "USI_LINKS",
    "usi_builder",
    "usi_network",
    "usi_topology",
    "CLIENTS",
    "PRINTERS",
    "SERVERS",
]

#: Figure 8: the predefined network element classes.
DEVICE_SPECS: Tuple[DeviceSpec, ...] = (
    DeviceSpec("Server", "Server", mtbf=60000.0, mttr=0.1),
    DeviceSpec("C6500", "Switch", mtbf=183498.0, mttr=0.5, manufacturer="Cisco", model="Catalyst 6500"),
    DeviceSpec("C2960", "Switch", mtbf=61320.0, mttr=0.5, manufacturer="Cisco", model="Catalyst 2960"),
    DeviceSpec("HP2650", "Switch", mtbf=199000.0, mttr=0.5, manufacturer="HP", model="ProCurve 2650"),
    DeviceSpec("C3750", "Switch", mtbf=188575.0, mttr=0.5, manufacturer="Cisco", model="Catalyst 3750"),
    DeviceSpec("Comp", "Client", mtbf=3000.0, mttr=24.0),
    DeviceSpec("Printer", "Printer", mtbf=2880.0, mttr=1.0),
)

#: Deployed nodes: name -> class (Figure 9).
USI_NODES: Dict[str, str] = {
    # core (redundant C6500 pair)
    "c1": "C6500",
    "c2": "C6500",
    # distribution (client side)
    "d1": "C3750",
    "d2": "C3750",
    # distribution (server side)
    "d3": "C2960",
    "d4": "C2960",
    # edge switches
    "e1": "HP2650",
    "e2": "HP2650",
    "e3": "HP2650",
    "e4": "HP2650",
    # clients
    **{f"t{i}": "Comp" for i in range(1, 16)},
    # printers
    "p1": "Printer",
    "p2": "Printer",
    "p3": "Printer",
    # servers
    "backup": "Server",
    "email": "Server",
    "db": "Server",
    "file1": "Server",
    "file2": "Server",
    "printS": "Server",
}

#: Deployed links (Figure 5/9 reconstruction, see module docstring).
USI_LINKS: Tuple[Tuple[str, str], ...] = (
    # redundant core
    ("c1", "c2"),
    # distribution to core
    ("d1", "c1"),
    ("d2", "c2"),
    ("d3", "c1"),
    ("d4", "c1"),
    ("d4", "c2"),
    # edge to distribution
    ("e1", "d1"),
    ("e2", "d1"),
    ("e3", "d2"),
    ("e4", "d2"),
    # clients to edge switches
    ("t1", "e1"),
    ("t2", "e1"),
    ("t3", "e1"),
    ("t4", "e1"),
    ("t5", "e1"),
    ("t6", "e2"),
    ("t7", "e2"),
    ("t8", "e2"),
    ("t9", "e3"),
    ("t10", "e3"),
    ("t11", "e3"),
    ("t12", "e3"),
    ("t13", "e4"),
    ("t14", "e4"),
    ("t15", "e4"),
    # printers
    ("p1", "e2"),
    ("p2", "e3"),
    ("p3", "d1"),
    # servers
    ("backup", "d3"),
    ("email", "d3"),
    ("db", "d3"),
    ("file1", "d4"),
    ("file2", "d4"),
    ("printS", "d4"),
)

CLIENTS: Tuple[str, ...] = tuple(f"t{i}" for i in range(1, 16))
PRINTERS: Tuple[str, ...] = ("p1", "p2", "p3")
SERVERS: Tuple[str, ...] = ("backup", "email", "db", "file1", "file2", "printS")


def usi_builder() -> TopologyBuilder:
    """A :class:`TopologyBuilder` populated with the USI network."""
    builder = TopologyBuilder("usi")
    for spec in DEVICE_SPECS:
        builder.device_type(spec)
    for name, type_name in USI_NODES.items():
        builder.add(name, type_name)
    for a, b in USI_LINKS:
        builder.connect(a, b)
    return builder


def usi_network() -> ObjectModel:
    """The validated USI infrastructure object model (Figure 9)."""
    return usi_builder().build()


def usi_topology() -> Topology:
    """Graph view of the USI infrastructure (Figure 5)."""
    return Topology(usi_network())
